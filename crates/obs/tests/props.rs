//! Property tests for the histogram and exposition layers (seeded, in-tree
//! harness; replay with `IBFS_PROP_SEED`/`IBFS_PROP_CASES`).

use ibfs_obs::{Histogram, Registry, Snapshot};
use ibfs_util::prop::Prop;
use ibfs_util::rng::Rng;
use ibfs_util::{FromJson, Json, ToJson};

/// Draws a latency-like value spanning many octaves (µs to minutes).
fn sample_value(rng: &mut Rng) -> f64 {
    let exponent = rng.gen_range(-20.0f64..8.0);
    2.0f64.powf(exponent)
}

fn in_order(order: &[usize], shards: &[Histogram]) -> Histogram {
    let merged = Histogram::new();
    for &i in order {
        merged.merge(&shards[i]);
    }
    merged
}

fn shuffled(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0usize..=i));
    }
    order
}

#[test]
fn quantiles_bounded_and_merge_order_invariant() {
    Prop::new("obs_merge_order_invariant").cases(64).run(|rng| {
        // Record a random value set across several shards, as the per-device
        // worker threads do, then merge the shards in two random orders.
        let n_shards = rng.gen_range(1usize..=6);
        let shards: Vec<Histogram> = (0..n_shards).map(|_| Histogram::new()).collect();
        let n_values = rng.gen_range(1usize..=400);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..n_values {
            let v = sample_value(rng);
            min = min.min(v);
            max = max.max(v);
            shards[rng.gen_range(0usize..n_shards)].record(v);
        }

        let a = in_order(&shuffled(rng, n_shards), &shards).snapshot();
        let b = in_order(&shuffled(rng, n_shards), &shards).snapshot();
        // Bucket counts are integers, so everything derived from them is
        // exactly merge-order invariant; only the f64 `sum` accumulates in a
        // different order and may differ in its last bits.
        assert_eq!(
            (a.count, a.min, a.max, a.p50, a.p90, a.p99),
            (b.count, b.min, b.max, b.p50, b.p90, b.p99),
            "merge result depends on merge order"
        );
        assert!((a.sum - b.sum).abs() <= a.sum.abs() * 1e-9);

        assert_eq!(a.count, n_values as u64);
        assert_eq!(a.min, min);
        assert_eq!(a.max, max);
        // Quantiles are monotone and never leave the recorded range.
        assert!(a.is_well_formed(), "malformed snapshot: {a:?}");
        for q in [a.p50, a.p90, a.p99] {
            assert!((min..=max).contains(&q), "quantile {q} outside [{min}, {max}]");
        }
    });
}

#[test]
fn exposition_is_locale_stable_and_round_trips() {
    Prop::new("obs_exposition_round_trip").cases(32).run(|rng| {
        let registry = Registry::new();
        registry.counter("ibfs_test_events_total").add(rng.gen_range(0u64..1_000_000));
        registry.gauge("ibfs_test_depth").set(sample_value(rng));
        let hist = registry.histogram("ibfs_test_latency_seconds");
        for _ in 0..rng.gen_range(0usize..200) {
            hist.record(sample_value(rng));
        }

        // JSON form decodes back to an identical snapshot.
        let snap = registry.snapshot();
        let text = snap.to_json().to_string();
        let back = Snapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);

        // Every Prometheus sample line ends in a machine-parseable number
        // with a `.` decimal separator (never a locale-dependent comma).
        for line in snap.render_prometheus().lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(!value.contains(','), "locale-tainted value: {line}");
            assert!(
                value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN"),
                "unparseable sample value: {line}"
            );
        }
    });
}
