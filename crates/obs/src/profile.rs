//! The engine profiler: per-lane, per-level phase records with a versioned
//! JSON report and a Chrome trace-event exporter.
//!
//! The CPU engines and the sharded exchange report only end-of-run
//! aggregates; when a level is slow there is no way to see *where* it went
//! (expand? barrier? steal storm? wire time?). This module adds the lens
//! the distributed-BFS literature attributes everything to: a per-phase
//! computation/communication breakdown.
//!
//! Overhead budget: recording happens once per `(track, lane, level,
//! phase)` — a handful of `Instant` reads and one short mutex push per
//! phase, never per vertex or per edge. A disabled profiler is an
//! `Option::None` at every hook site, so the un-profiled hot path pays one
//! branch. The CI gate holds the measured overhead on the seeded
//! `cpu-bench` under 5%.
//!
//! Phase taxonomy (see [`ProfPhase`]): engine compute phases (top-down
//! expand, bottom-up sweep, dirty-chunk repair, identification, status
//! sweeps, cleanup), synchronization ([`ProfPhase::BarrierWait`] records
//! are *synthesized* — for every lane, phase wall time minus that lane's
//! body time), work stealing (chunk claims from `ChunkCursor`/`ClaimTally`
//! as counts on the traversal records), the async engine's FIFO drain, the
//! sharded exchange (encode / exchange / apply, with bytes and messages),
//! and serve-batch dispatch.
//!
//! The [`ProfileReport`] JSON document is versioned
//! ([`PROFILE_SCHEMA_VERSION`], future versions rejected on decode, like
//! the trace and snapshot schemas) and exports to the Chrome trace-event
//! array format (`chrome://tracing`, Perfetto): one complete (`"ph":"X"`)
//! event per record, `pid` = track (engine run or shard group), `tid` =
//! lane (worker lane or shard).

use crate::registry::{labeled, Registry};
use ibfs_util::json::{field, FromJson, Json, JsonError, ToJson};
use ibfs_util::{json_enum, json_struct};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version stamped into every profile report document.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// What a [`PhaseRecord`] measured.
///
/// `counter_a` / `counter_b` on the record carry the phase-specific pair
/// listed per variant (0 when a phase has nothing to count).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfPhase {
    /// Top-down frontier expansion (tiled or queue-walk). Counters:
    /// chunks/tiles claimed by this lane, total claims this phase.
    TopDownExpand,
    /// Bottom-up unvisited sweep. Counters: chunks claimed by this lane,
    /// total claims this phase.
    BottomUpSweep,
    /// Time a lane spent blocked on the phase barrier (synthesized: phase
    /// wall minus lane body).
    BarrierWait,
    /// Dirty-chunk repair of stale status words. Counters: chunks
    /// repaired by this lane, total.
    Repair,
    /// Async-engine FIFO drain. Counters: items drained, relaxed
    /// (re-improved) items.
    AsyncDrain,
    /// Per-level status reset / direction-switch full sweep.
    StatusSweep,
    /// Depth identification of newly visited vertices.
    Identify,
    /// Next-frontier queue assembly.
    QueueBuild,
    /// End-of-group arena cleanup.
    Cleanup,
    /// Sharded exchange: frontier/candidate payload encode. Counters:
    /// bytes, messages.
    CommEncode,
    /// Sharded exchange: simulated wire time. Counters: bytes, messages.
    CommExchange,
    /// Sharded exchange: applying received payloads. Counters: bytes,
    /// messages.
    CommApply,
    /// One serve batch from dispatch to depths. Counters: requests,
    /// distinct sources.
    ServeBatch,
    /// Reordered service: mapping a group's sources into permuted space.
    /// Counters: sources mapped, 0.
    MapIn,
    /// Reordered service: mapping a group's depth table back to original
    /// vertex ids. Counters: depth cells mapped, instances.
    MapOut,
    /// One α/β autotuner adjustment. Counters: new α in milli-units, new
    /// β in milli-units.
    Retune,
}

json_enum!(ProfPhase {
    TopDownExpand,
    BottomUpSweep,
    BarrierWait,
    Repair,
    AsyncDrain,
    StatusSweep,
    Identify,
    QueueBuild,
    Cleanup,
    CommEncode,
    CommExchange,
    CommApply,
    ServeBatch,
    MapIn,
    MapOut,
    Retune,
});

impl ProfPhase {
    /// Every phase, for eager metric registration and exhaustive tests.
    pub const ALL: [ProfPhase; 16] = [
        ProfPhase::TopDownExpand,
        ProfPhase::BottomUpSweep,
        ProfPhase::BarrierWait,
        ProfPhase::Repair,
        ProfPhase::AsyncDrain,
        ProfPhase::StatusSweep,
        ProfPhase::Identify,
        ProfPhase::QueueBuild,
        ProfPhase::Cleanup,
        ProfPhase::CommEncode,
        ProfPhase::CommExchange,
        ProfPhase::CommApply,
        ProfPhase::ServeBatch,
        ProfPhase::MapIn,
        ProfPhase::MapOut,
        ProfPhase::Retune,
    ];

    /// Stable snake_case name (Chrome trace event name, metric label).
    pub fn name(self) -> &'static str {
        match self {
            ProfPhase::TopDownExpand => "top_down_expand",
            ProfPhase::BottomUpSweep => "bottom_up_sweep",
            ProfPhase::BarrierWait => "barrier_wait",
            ProfPhase::Repair => "repair",
            ProfPhase::AsyncDrain => "async_drain",
            ProfPhase::StatusSweep => "status_sweep",
            ProfPhase::Identify => "identify",
            ProfPhase::QueueBuild => "queue_build",
            ProfPhase::Cleanup => "cleanup",
            ProfPhase::CommEncode => "comm_encode",
            ProfPhase::CommExchange => "comm_exchange",
            ProfPhase::CommApply => "comm_apply",
            ProfPhase::ServeBatch => "serve_batch",
            ProfPhase::MapIn => "map_in",
            ProfPhase::MapOut => "map_out",
            ProfPhase::Retune => "retune",
        }
    }

    /// Chrome trace category: groups the timeline rows by subsystem.
    pub fn category(self) -> &'static str {
        match self {
            ProfPhase::BarrierWait => "sync",
            ProfPhase::CommEncode | ProfPhase::CommExchange | ProfPhase::CommApply => "comm",
            ProfPhase::ServeBatch => "serve",
            ProfPhase::Retune => "tune",
            _ => "engine",
        }
    }
}

/// One timed phase on one lane at one level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseRecord {
    /// Timeline track (Chrome `pid`): one per engine run / shard group,
    /// allocated by [`EngineProfiler::open_track`].
    pub track: u64,
    /// Worker lane or shard index (Chrome `tid`).
    pub lane: u64,
    /// BFS level (batch sequence number for serve records).
    pub level: u64,
    /// What was measured.
    pub phase: ProfPhase,
    /// Seconds since the profiler epoch at phase start.
    pub start_s: f64,
    /// Measured duration in seconds.
    pub seconds: f64,
    /// Phase-specific count (see [`ProfPhase`] docs).
    pub counter_a: u64,
    /// Phase-specific count (see [`ProfPhase`] docs).
    pub counter_b: u64,
}

json_struct!(PhaseRecord {
    track,
    lane,
    level,
    phase,
    start_s,
    seconds,
    counter_a,
    counter_b,
});

/// A started phase: holds the wall-clock start. Copy so closures can
/// capture it freely.
#[derive(Clone, Copy, Debug)]
pub struct PhaseStart {
    at: Instant,
    start_s: f64,
}

impl PhaseStart {
    /// Seconds from the profiler epoch to this phase start.
    pub fn start_s(&self) -> f64 {
        self.start_s
    }

    /// Seconds elapsed since this phase start.
    pub fn elapsed_s(&self) -> f64 {
        self.at.elapsed().as_secs_f64()
    }
}

/// Low-overhead recorder for [`PhaseRecord`]s.
///
/// Shared by `Arc`; every hook site does one `Instant::now()` pair and one
/// mutex-guarded push per phase per lane. Lanes record their own body
/// time; the coordinator then calls [`EngineProfiler::end_phase`], which
/// synthesizes one [`ProfPhase::BarrierWait`] record per lane from the
/// phase's wall time.
#[derive(Debug)]
pub struct EngineProfiler {
    epoch: Instant,
    records: Mutex<Vec<PhaseRecord>>,
    next_track: AtomicU64,
}

impl Default for EngineProfiler {
    fn default() -> Self {
        EngineProfiler {
            epoch: Instant::now(),
            records: Mutex::new(Vec::new()),
            next_track: AtomicU64::new(0),
        }
    }
}

impl EngineProfiler {
    /// A fresh profiler; its epoch (trace time zero) is now.
    pub fn new() -> Self {
        EngineProfiler::default()
    }

    /// A fresh shared profiler.
    pub fn shared() -> Arc<EngineProfiler> {
        Arc::new(EngineProfiler::new())
    }

    /// Seconds since the profiler epoch.
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Allocates a timeline track (Chrome `pid`): one per engine run,
    /// shard group, or serve worker pool.
    pub fn open_track(&self) -> u64 {
        self.next_track.fetch_add(1, Ordering::Relaxed)
    }

    /// Marks a phase start; pass the result to [`EngineProfiler::lane`]
    /// and [`EngineProfiler::end_phase`].
    pub fn begin(&self) -> PhaseStart {
        PhaseStart { at: Instant::now(), start_s: self.now_s() }
    }

    /// Records one lane's body time for the phase started at `start`.
    pub fn lane(
        &self,
        start: PhaseStart,
        track: u64,
        lane: usize,
        level: u64,
        phase: ProfPhase,
        counter_a: u64,
        counter_b: u64,
    ) {
        self.push(PhaseRecord {
            track,
            lane: lane as u64,
            level,
            phase,
            start_s: start.start_s,
            seconds: start.at.elapsed().as_secs_f64(),
            counter_a,
            counter_b,
        });
    }

    /// Ends a phase: for every lane that recorded a body for `(track,
    /// level, phase)` since `start`, synthesizes a
    /// [`ProfPhase::BarrierWait`] record of `wall - body` (clamped at 0),
    /// so each lane's records tile the phase wall exactly.
    pub fn end_phase(&self, start: PhaseStart, track: u64, level: u64, phase: ProfPhase) {
        let wall = start.at.elapsed().as_secs_f64();
        let mut records = self.records.lock().unwrap();
        let mut waits = Vec::new();
        // Lane bodies for this phase carry exactly `start.start_s` (the
        // copied PhaseStart), so exact f64 equality identifies them even
        // when other tracks interleave records concurrently.
        for r in records.iter().rev() {
            // A track's phases are sequential, so the first same-track
            // record from before this phase bounds the scan — without
            // this, every end_phase walks the whole history and the
            // profiler's cost grows quadratically over a long run.
            if r.track == track && r.start_s < start.start_s {
                break;
            }
            if r.track == track && r.level == level && r.phase == phase && r.start_s == start.start_s
            {
                waits.push(PhaseRecord {
                    track,
                    lane: r.lane,
                    level,
                    phase: ProfPhase::BarrierWait,
                    start_s: start.start_s + r.seconds.min(wall),
                    seconds: (wall - r.seconds).max(0.0),
                    counter_a: 0,
                    counter_b: 0,
                });
            }
        }
        records.extend(waits);
    }

    /// Records a fully-formed phase (used by the comm/serve hooks, where
    /// the caller measures its own interval).
    pub fn record(
        &self,
        track: u64,
        lane: usize,
        level: u64,
        phase: ProfPhase,
        start_s: f64,
        seconds: f64,
        counter_a: u64,
        counter_b: u64,
    ) {
        self.push(PhaseRecord {
            track,
            lane: lane as u64,
            level,
            phase,
            start_s,
            seconds,
            counter_a,
            counter_b,
        });
    }

    fn push(&self, r: PhaseRecord) {
        self.records.lock().unwrap().push(r);
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the recorded phases into a versioned report. `source` names
    /// the producing command (`"bfs"`, `"cpu-bench"`, ...).
    pub fn report(&self, source: &str) -> ProfileReport {
        let mut records = self.records.lock().unwrap().clone();
        records.sort_by(|a, b| {
            (a.track, a.lane, a.start_s)
                .partial_cmp(&(b.track, b.lane, b.start_s))
                .expect("record start times are finite")
        });
        ProfileReport {
            schema_version: PROFILE_SCHEMA_VERSION,
            source: source.to_string(),
            wall_seconds: self.now_s(),
            records,
        }
    }

    /// Publishes per-phase aggregates into `registry` under the
    /// `ibfs_prof_*` families [`register_prof_metrics`] pre-registers.
    pub fn record_metrics(&self, registry: &Registry) {
        let records = self.records.lock().unwrap();
        registry.counter("ibfs_prof_records_total").add(records.len() as u64);
        let mut by_phase = [0.0f64; ProfPhase::ALL.len()];
        let mut total = 0.0;
        for r in records.iter() {
            let idx = ProfPhase::ALL.iter().position(|p| *p == r.phase).unwrap();
            by_phase[idx] += r.seconds;
            total += r.seconds;
        }
        for (phase, seconds) in ProfPhase::ALL.iter().zip(by_phase) {
            registry.gauge(&prof_phase_gauge(*phase)).set(seconds);
        }
        let barrier = by_phase[ProfPhase::ALL
            .iter()
            .position(|p| *p == ProfPhase::BarrierWait)
            .unwrap()];
        let share = if total > 0.0 { barrier / total } else { 0.0 };
        registry.gauge("ibfs_prof_barrier_share").set(share);
    }
}

/// Name of the per-phase seconds gauge:
/// `ibfs_prof_phase_seconds{phase="top_down_expand"}`.
pub fn prof_phase_gauge(phase: ProfPhase) -> String {
    labeled("ibfs_prof_phase_seconds", &[("phase", phase.name())])
}

/// Eagerly registers every `ibfs_prof_*` family so idle snapshots still
/// carry them (the metrics-check gate validates presence, not activity).
pub fn register_prof_metrics(registry: &Registry) {
    registry.counter("ibfs_prof_records_total");
    registry.gauge("ibfs_prof_barrier_share");
    for phase in ProfPhase::ALL {
        registry.gauge(&prof_phase_gauge(phase));
    }
}

/// A frozen, versioned profile: everything an [`EngineProfiler`] recorded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// JSON schema version ([`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Producing command (`"bfs"`, `"cpu-bench"`, `"serve-bench"`, ...).
    pub source: String,
    /// Profiler wall clock at freeze time (seconds since its epoch).
    pub wall_seconds: f64,
    /// All phase records, sorted by `(track, lane, start_s)`.
    pub records: Vec<PhaseRecord>,
}

impl ToJson for ProfileReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("profile_version".to_string(), Json::UInt(self.schema_version)),
            ("source".to_string(), Json::Str(self.source.clone())),
            ("wall_seconds".to_string(), self.wall_seconds.to_json()),
            ("records".to_string(), self.records.to_json()),
        ])
    }
}

impl FromJson for ProfileReport {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema_version: u64 = field(j, "profile_version")?;
        if schema_version > PROFILE_SCHEMA_VERSION {
            return Err(JsonError {
                msg: format!(
                    "profile version {schema_version} is newer than supported \
                     {PROFILE_SCHEMA_VERSION}"
                ),
                at: 0,
            });
        }
        Ok(ProfileReport {
            schema_version,
            source: field(j, "source")?,
            wall_seconds: field(j, "wall_seconds")?,
            records: field(j, "records")?,
        })
    }
}

impl ProfileReport {
    /// The structural invariants every emitted report satisfies: exact
    /// schema version, at least one record, and finite non-negative times
    /// contained in the report's wall clock.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != PROFILE_SCHEMA_VERSION {
            return Err(format!(
                "profile version {} != supported {PROFILE_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.records.is_empty() {
            return Err("profile has no phase records".to_string());
        }
        if !(self.wall_seconds.is_finite() && self.wall_seconds > 0.0) {
            return Err(format!("wall_seconds {} is not positive", self.wall_seconds));
        }
        for r in &self.records {
            if !(r.start_s.is_finite() && r.start_s >= 0.0) {
                return Err(format!("record start_s {} is not finite/non-negative", r.start_s));
            }
            if !(r.seconds.is_finite() && r.seconds >= 0.0) {
                return Err(format!("record seconds {} is not finite/non-negative", r.seconds));
            }
            if r.start_s > self.wall_seconds {
                return Err(format!(
                    "record starts at {} beyond the report wall clock {}",
                    r.start_s, self.wall_seconds
                ));
            }
        }
        Ok(())
    }

    /// Total seconds recorded for `phase` across all tracks and lanes.
    pub fn phase_seconds(&self, phase: ProfPhase) -> f64 {
        self.records.iter().filter(|r| r.phase == phase).map(|r| r.seconds).sum()
    }

    /// Distinct phases present in the report.
    pub fn phases(&self) -> Vec<ProfPhase> {
        let mut out: Vec<ProfPhase> = Vec::new();
        for r in &self.records {
            if !out.contains(&r.phase) {
                out.push(r.phase);
            }
        }
        out
    }

    /// Distinct `(track, lane)` timeline rows present in the report.
    pub fn lanes(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for r in &self.records {
            if !out.contains(&(r.track, r.lane)) {
                out.push((r.track, r.lane));
            }
        }
        out
    }

    /// Exports the Chrome trace-event array format (load in
    /// `chrome://tracing` or Perfetto): one complete `"ph":"X"` event per
    /// record, timestamps and durations in microseconds, `pid` = track,
    /// `tid` = lane, with level and the phase counters in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(r.phase.name().to_string())),
                    ("cat".to_string(), Json::Str(r.phase.category().to_string())),
                    ("ph".to_string(), Json::Str("X".to_string())),
                    ("ts".to_string(), (r.start_s * 1e6).to_json()),
                    ("dur".to_string(), (r.seconds * 1e6).to_json()),
                    ("pid".to_string(), Json::UInt(r.track)),
                    ("tid".to_string(), Json::UInt(r.lane)),
                    (
                        "args".to_string(),
                        Json::Obj(vec![
                            ("level".to_string(), Json::UInt(r.level)),
                            ("counter_a".to_string(), Json::UInt(r.counter_a)),
                            ("counter_b".to_string(), Json::UInt(r.counter_b)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Arr(events).to_string()
    }

    /// One-line-per-phase text summary (what `bfs --profile -` prints to
    /// stderr alongside the JSON).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} records on {} lanes over {:.3}s",
            self.records.len(),
            self.lanes().len(),
            self.wall_seconds
        );
        for phase in ProfPhase::ALL {
            let s = self.phase_seconds(phase);
            if s > 0.0 || self.records.iter().any(|r| r.phase == phase) {
                let _ = writeln!(out, "  {:<16} {s:.6}s", phase.name());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfileReport {
        let prof = EngineProfiler::new();
        let track = prof.open_track();
        let start = prof.begin();
        prof.lane(start, track, 0, 1, ProfPhase::TopDownExpand, 3, 5);
        prof.lane(start, track, 1, 1, ProfPhase::TopDownExpand, 2, 5);
        prof.end_phase(start, track, 1, ProfPhase::TopDownExpand);
        prof.record(track, 0, 1, ProfPhase::CommExchange, prof.now_s(), 0.25, 4096, 3);
        prof.report("test")
    }

    #[test]
    fn lanes_record_and_barrier_is_synthesized() {
        let r = sample_report();
        assert_eq!(r.schema_version, PROFILE_SCHEMA_VERSION);
        // 2 body records + 2 synthesized barrier records + 1 comm record.
        assert_eq!(r.records.len(), 5);
        let barriers: Vec<_> =
            r.records.iter().filter(|x| x.phase == ProfPhase::BarrierWait).collect();
        assert_eq!(barriers.len(), 2);
        assert!(barriers.iter().all(|b| b.seconds >= 0.0));
        assert!(r.validate().is_ok());
        assert_eq!(r.lanes(), vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let text = r.to_json().to_string();
        let back = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn future_profile_versions_are_rejected() {
        let mut j = sample_report().to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::UInt(PROFILE_SCHEMA_VERSION + 1);
        }
        let err = ProfileReport::from_json(&j).unwrap_err();
        assert!(err.msg.contains("newer than supported"));
    }

    #[test]
    fn validate_rejects_degenerate_reports() {
        let mut r = sample_report();
        r.records.clear();
        assert!(r.validate().unwrap_err().contains("no phase records"));

        let mut r = sample_report();
        r.records[0].seconds = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.records[0].start_s = r.wall_seconds + 1.0;
        assert!(r.validate().unwrap_err().contains("beyond the report wall clock"));

        let mut r = sample_report();
        r.schema_version = 0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let r = sample_report();
        let trace = r.to_chrome_trace();
        let parsed = Json::parse(&trace).unwrap();
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), r.records.len());
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
            assert!(e.get("args").unwrap().get("level").is_some());
        }
        // The comm record keeps its byte/message counters.
        let comm = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("comm_exchange"))
            .unwrap();
        assert_eq!(comm.get("args").unwrap().get("counter_a").unwrap().as_u64(), Some(4096));
    }

    #[test]
    fn prof_metrics_register_eagerly_and_record() {
        let reg = Registry::new();
        register_prof_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ibfs_prof_records_total"), Some(0));
        assert!(snap.gauge("ibfs_prof_barrier_share").is_some());
        for phase in ProfPhase::ALL {
            assert!(snap.gauge(&prof_phase_gauge(phase)).is_some(), "{}", phase.name());
        }

        let prof = EngineProfiler::new();
        let track = prof.open_track();
        prof.record(track, 0, 0, ProfPhase::AsyncDrain, 0.0, 0.5, 10, 2);
        prof.record_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ibfs_prof_records_total"), Some(1));
        assert!(snap.gauge(&prof_phase_gauge(ProfPhase::AsyncDrain)).unwrap() > 0.4);
    }

    #[test]
    fn phase_names_are_unique_and_stable() {
        let mut names: Vec<&str> = ProfPhase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProfPhase::ALL.len());
        // Every phase round-trips through its JSON tag.
        for p in ProfPhase::ALL {
            let back = ProfPhase::from_json(&p.to_json()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn empty_profiler_reports_validate_as_empty() {
        let prof = EngineProfiler::new();
        assert!(prof.is_empty());
        let r = prof.report("idle");
        assert!(r.validate().is_err(), "empty profiles must not validate");
    }
}
