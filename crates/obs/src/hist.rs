//! Log-linear latency/value histograms with a lock-free hot path.
//!
//! The value axis is covered by power-of-two octaves `[2^e, 2^(e+1))`, each
//! split into [`SUB_BUCKETS`] equal-width linear sub-buckets (the classic
//! HdrHistogram shape): relative resolution is bounded by `1/SUB_BUCKETS`
//! everywhere, while 64 octaves span from sub-nanosecond latencies to
//! billions of edges with a fixed, allocation-free bucket array.
//!
//! Recording is wait-free in the common case: one atomic add on a bucket,
//! one on the count, a CAS loop each for the running sum and the exact
//! min/max. Histograms merge by bucket addition, so per-thread instances
//! can be combined in any order with an identical result (the property
//! suite pins this: quantiles are merge-order invariant and always fall
//! within `[min, max]`).

use ibfs_util::json_struct;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 8;
/// Smallest distinguishable exponent: values at or below `2^MIN_EXP` land
/// in the underflow bucket (this covers zero and negatives too).
pub const MIN_EXP: i32 = -30;
/// One past the largest octave: values at or above `2^MAX_EXP` land in the
/// overflow bucket.
pub const MAX_EXP: i32 = 34;

const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
/// Underflow + log-linear grid + overflow.
const NUM_BUCKETS: usize = OCTAVES * SUB_BUCKETS + 2;

fn bucket_index(v: f64) -> usize {
    let floor = (MIN_EXP as f64).exp2();
    if !(v > floor) {
        // Zero, negatives, NaN, and anything below the grid floor.
        return 0;
    }
    if v >= (MAX_EXP as f64).exp2() {
        return NUM_BUCKETS - 1;
    }
    let e = (v.log2().floor() as i32).clamp(MIN_EXP, MAX_EXP - 1);
    let lo = (e as f64).exp2();
    let width = lo / SUB_BUCKETS as f64;
    let sub = (((v - lo) / width) as usize).min(SUB_BUCKETS - 1);
    1 + (e - MIN_EXP) as usize * SUB_BUCKETS + sub
}

/// Inclusive upper bound reported for bucket `i` (the quantile estimate).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        return (MIN_EXP as f64).exp2();
    }
    if i == NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let j = i - 1;
    let e = MIN_EXP + (j / SUB_BUCKETS) as i32;
    let lo = (e as f64).exp2();
    lo + (j % SUB_BUCKETS + 1) as f64 * lo / SUB_BUCKETS as f64
}

/// A mergeable log-linear histogram. Shareable across threads by reference;
/// every operation is atomic.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Bit pattern of the running f64 sum (CAS-updated).
    sum_bits: AtomicU64,
    /// Bit pattern of the exact minimum (starts at +inf).
    min_bits: AtomicU64,
    /// Bit pattern of the exact maximum (starts at -inf).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, min={}, max={})", s.count, s.min, s.max)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one value. NaN is ignored; negatives count into the
    /// underflow bucket but still update the exact min.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        fold_bits(&self.sum_bits, |s| s + v);
        fold_bits(&self.min_bits, |m| m.min(v));
        fold_bits(&self.max_bits, |m| m.max(v));
    }

    /// Records a duration in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every recorded value of `other` into `self` (bucket-wise, so the
    /// result is independent of merge order up to f64 summation of `sum`).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        let other_sum = f64::from_bits(other.sum_bits.load(Ordering::Relaxed));
        fold_bits(&self.sum_bits, |s| s + other_sum);
        let other_min = f64::from_bits(other.min_bits.load(Ordering::Relaxed));
        fold_bits(&self.min_bits, |m| m.min(other_min));
        let other_max = f64::from_bits(other.max_bits.load(Ordering::Relaxed));
        fold_bits(&self.max_bits, |m| m.max(other_max));
    }

    /// Point-in-time summary with quantile estimates. An empty histogram
    /// follows the workspace's zero conventions: every field is 0.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let q = |q: f64| quantile(&counts, count, q, min, max);
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min,
            max,
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
        }
    }
}

/// CAS-folds an f64 stored as bits.
fn fold_bits(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The value at rank `ceil(q * count)`: the upper bound of the bucket the
/// rank falls in, clamped into the exact `[min, max]` envelope (which also
/// gives the under/overflow buckets a finite report).
fn quantile(counts: &[u64], count: u64, q: f64, min: f64, max: f64) -> f64 {
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        cum += n;
        if cum >= rank {
            return bucket_upper(i).clamp(min, max);
        }
    }
    max
}

/// Frozen summary of a [`Histogram`], the form that snapshots, JSON, and
/// the Prometheus rendering carry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Exact minimum recorded value.
    pub min: f64,
    /// Exact maximum recorded value.
    pub max: f64,
    /// Estimated 50th percentile (within one sub-bucket of exact).
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

json_struct!(HistogramSnapshot { count, sum, min, max, p50, p90, p99 });

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty, by the zero conventions).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The invariants every well-formed summary satisfies: quantiles are
    /// monotone and bracketed by the exact min/max.
    pub fn is_well_formed(&self) -> bool {
        if self.count == 0 {
            return *self == HistogramSnapshot::default();
        }
        self.min <= self.p50
            && self.p50 <= self.p90
            && self.p90 <= self.p99
            && self.p99 <= self.max
            && self.min <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        assert!(h.snapshot().is_well_formed());
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn single_value_pins_every_statistic() {
        let h = Histogram::new();
        h.record(0.125);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 0.125);
        assert_eq!(s.max, 0.125);
        // All quantiles clamp onto the single value.
        assert_eq!(s.p50, 0.125);
        assert_eq!(s.p99, 0.125);
        assert!((s.sum - 0.125).abs() < 1e-15);
        assert!(s.is_well_formed());
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        // Log-linear resolution: within one sub-bucket (12.5%) of exact.
        assert!((s.p50 - 500.0).abs() / 500.0 < 0.15, "p50 = {}", s.p50);
        assert!((s.p90 - 900.0).abs() / 900.0 < 0.15, "p90 = {}", s.p90);
        assert!((s.p99 - 990.0).abs() / 990.0 < 0.15, "p99 = {}", s.p99);
        assert!(s.is_well_formed());
    }

    #[test]
    fn out_of_grid_values_stay_within_min_max() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(1e-12); // below the grid floor
        h.record(1e12); // above the grid ceiling
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1e12);
        assert!(s.is_well_formed());
    }

    #[test]
    fn nan_is_ignored() {
        let h = Histogram::new();
        h.record(f64::NAN);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().min, 2.0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..100 {
            let v = (i as f64) * 0.37 + 0.001;
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
            all.record(v);
        }
        let merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        let (m, w) = (merged.snapshot(), all.snapshot());
        assert_eq!(m.count, w.count);
        assert_eq!(m.min, w.min);
        assert_eq!(m.max, w.max);
        assert_eq!(m.p50, w.p50);
        assert_eq!(m.p90, w.p90);
        assert_eq!(m.p99, w.p99);
        assert!((m.sum - w.sum).abs() < 1e-9 * w.sum.abs().max(1.0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 + 0.5);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 3999.5);
        assert!(s.is_well_formed());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        use ibfs_util::{FromJson, Json, ToJson};
        let h = Histogram::new();
        for v in [0.001, 0.002, 0.5, 3.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let text = s.to_json().to_string();
        let back = HistogramSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
