//! `ibfs-obs` — the workspace's observability substrate.
//!
//! The paper's entire argument is quantitative (sharing degree, per-level
//! frontier counts, early-termination rates), and the serving stack built on
//! top of it is only debuggable through the same kind of numbers: per-phase
//! counters and latency breakdowns. This crate is the single metrics path
//! every layer records into, kept hermetic (std-only, like the rest of the
//! workspace):
//!
//! * [`registry`] — a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and
//!   [`Histogram`]s. Recording is lock-free (plain atomics on handles the
//!   caller keeps); registration takes a mutex once per instrument.
//! * [`hist`] — log-linear histograms: fixed power-of-two octaves split into
//!   linear sub-buckets, mergeable across worker threads, with exact
//!   min/max and p50/p90/p99 quantile estimates clamped into `[min, max]`.
//! * [`snapshot`] — a point-in-time [`Snapshot`] of a registry with a
//!   versioned JSON encoding and a Prometheus-style text rendering, plus
//!   the validation predicate (`Snapshot::validate`) the CI telemetry gate
//!   runs against `bfs serve-bench --metrics-out` output.
//! * [`span`] — request-scoped tracing: [`RequestId`]s allocated at serve
//!   admission and [`SpanEvent`]s recording each lifecycle stage (admitted,
//!   batched, dispatched, completed/errored) so one request can be followed
//!   from its submission to the device worker and per-level traversal that
//!   answered it.
//! * [`profile`] — the engine profiler: an [`EngineProfiler`] collecting
//!   per-lane, per-level [`PhaseRecord`]s (expand, sweep, barrier wait,
//!   steal, async drain, repair, sharded exchange) into a versioned
//!   [`ProfileReport`] that exports to the Chrome trace-event timeline
//!   format.
//!
//! Metric names follow the convention `ibfs_<layer>_<name>` (e.g.
//! `ibfs_serve_latency_seconds`, `ibfs_cluster_routed_total`); per-device
//! instruments append Prometheus-style labels via [`labeled`].

pub mod hist;
pub mod profile;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use hist::{Histogram, HistogramSnapshot};
pub use profile::{
    prof_phase_gauge, register_prof_metrics, EngineProfiler, PhaseRecord, PhaseStart, ProfPhase,
    ProfileReport, PROFILE_SCHEMA_VERSION,
};
pub use registry::{labeled, Counter, Gauge, Registry};
pub use snapshot::{MetricKind, MetricSnapshot, MetricValue, Snapshot, SNAPSHOT_SCHEMA_VERSION};
pub use span::{IdGen, RequestId, SpanEvent, SpanStage, NO_CORRELATION, TRACE_SCHEMA_VERSION};
