//! Frozen registry snapshots: versioned JSON and Prometheus-style text.
//!
//! A [`Snapshot`] is what `bfs stats` renders, `bfs serve-bench
//! --metrics-out` dumps, and the CI telemetry gate validates. The JSON
//! encoding is versioned (`snapshot_version`) and hand-written rather than
//! macro-generated because a metric row is a tagged union (counter / gauge /
//! histogram). All number formatting goes through Rust's `std::fmt`, which
//! is locale-independent by construction — `1.5` never becomes `1,5`.

use crate::hist::HistogramSnapshot;
use ibfs_util::json::{field, FromJson, Json, JsonError, ToJson};
use std::fmt::Write as _;

/// Version stamped into every snapshot JSON document.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// What kind of instrument a row describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-linear histogram summary.
    Histogram,
}

impl MetricKind {
    /// The lowercase tag used in JSON and Prometheus `# TYPE` lines.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A snapshot row's value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// One named instrument at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Full metric name (may carry `{label="value"}` suffixes).
    pub name: String,
    /// The reading.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The row's kind tag.
    pub fn kind(&self) -> MetricKind {
        match self.value {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

impl ToJson for MetricSnapshot {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("kind".to_string(), Json::Str(self.kind().as_str().to_string())),
        ];
        match &self.value {
            MetricValue::Counter(v) => fields.push(("value".to_string(), Json::UInt(*v))),
            MetricValue::Gauge(v) => fields.push(("value".to_string(), v.to_json())),
            MetricValue::Histogram(h) => {
                if let Json::Obj(hf) = h.to_json() {
                    fields.extend(hf);
                }
            }
        }
        Json::Obj(fields)
    }
}

impl FromJson for MetricSnapshot {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let name: String = field(j, "name")?;
        let kind: String = field(j, "kind")?;
        let value = match kind.as_str() {
            "counter" => MetricValue::Counter(field(j, "value")?),
            "gauge" => MetricValue::Gauge(field(j, "value")?),
            "histogram" => MetricValue::Histogram(HistogramSnapshot::from_json(j)?),
            other => {
                return Err(JsonError { msg: format!("unknown metric kind `{other}`"), at: 0 })
            }
        };
        Ok(MetricSnapshot { name, value })
    }
}

/// A point-in-time view of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// JSON schema version ([`SNAPSHOT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// All rows, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("snapshot_version".to_string(), Json::UInt(self.schema_version)),
            ("metrics".to_string(), self.metrics.to_json()),
        ])
    }
}

impl FromJson for Snapshot {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema_version: u64 = field(j, "snapshot_version")?;
        if schema_version > SNAPSHOT_SCHEMA_VERSION {
            return Err(JsonError {
                msg: format!(
                    "snapshot version {schema_version} is newer than supported \
                     {SNAPSHOT_SCHEMA_VERSION}"
                ),
                at: 0,
            });
        }
        Ok(Snapshot { schema_version, metrics: field(j, "metrics")? })
    }
}

impl Snapshot {
    /// Looks up a row by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Counter reading by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge reading by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Rows whose name starts with `prefix` (label-suffixed families).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a MetricSnapshot> {
        self.metrics.iter().filter(move |m| m.name.starts_with(prefix))
    }

    /// Prometheus-style text exposition: `# TYPE` comments, one sample line
    /// per counter/gauge, and summary-style `quantile` lines plus
    /// `_count`/`_sum`/`_min`/`_max` for histograms.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            // `# TYPE` names the family: strip any label suffix.
            let family = m.name.split('{').next().unwrap_or(&m.name);
            let _ = writeln!(out, "# TYPE {family} {}", m.kind().as_str());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", m.name, fmt_value(*v));
                }
                MetricValue::Histogram(h) => {
                    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        let _ = writeln!(
                            out,
                            "{family}{{quantile=\"{q}\"}} {}",
                            fmt_value(v)
                        );
                    }
                    let _ = writeln!(out, "{family}_sum {}", fmt_value(h.sum));
                    let _ = writeln!(out, "{family}_count {}", h.count);
                    let _ = writeln!(out, "{family}_min {}", fmt_value(h.min));
                    let _ = writeln!(out, "{family}_max {}", fmt_value(h.max));
                }
            }
        }
        out
    }

    /// The CI gate's predicate: every `required` name is present (a name
    /// ending in `*` matches as a prefix, for label families), every gauge
    /// reads a finite non-negative value (our gauges are depths, counts,
    /// ratios and seconds — NaN or a negative reading means a recording
    /// bug, not a valid state), and every histogram is well formed:
    /// quantiles monotone within `[min, max]`, a finite sum, and the
    /// count/total consistency `count*min <= sum <= count*max`.
    pub fn validate(&self, required: &[&str]) -> Result<(), String> {
        for want in required {
            let found = if let Some(prefix) = want.strip_suffix('*') {
                self.metrics.iter().any(|m| m.name.starts_with(prefix))
            } else {
                self.get(want).is_some()
            };
            if !found {
                return Err(format!("required metric `{want}` missing from snapshot"));
            }
        }
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(_) => {}
                MetricValue::Gauge(v) => {
                    if v.is_nan() {
                        return Err(format!("gauge `{}` reads NaN", m.name));
                    }
                    if !v.is_finite() || *v < 0.0 {
                        return Err(format!("gauge `{}` reads {v}, not a finite value >= 0", m.name));
                    }
                }
                MetricValue::Histogram(h) => {
                    if !h.is_well_formed() {
                        return Err(format!(
                            "histogram `{}` is malformed: min {} p50 {} p90 {} p99 {} max {}",
                            m.name, h.min, h.p50, h.p90, h.p99, h.max
                        ));
                    }
                    if h.count > 0 {
                        if !h.sum.is_finite() {
                            return Err(format!(
                                "histogram `{}` has count {} but non-finite sum {}",
                                m.name, h.count, h.sum
                            ));
                        }
                        // Sum/count consistency: the total must be
                        // achievable from `count` observations inside
                        // [min, max] (tolerance covers f64 accumulation).
                        let n = h.count as f64;
                        let slack = 1e-9 * n * h.max.abs().max(h.min.abs()).max(1.0);
                        if h.sum < n * h.min - slack || h.sum > n * h.max + slack {
                            return Err(format!(
                                "histogram `{}` sum {} is inconsistent with count {} in \
                                 [{}, {}]",
                                m.name, h.sum, h.count, h.min, h.max
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Locale-stable sample formatting: finite values via `std::fmt` (always
/// `.`-decimal), non-finite as Prometheus spells them.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("ibfs_serve_accepted_total").add(12);
        r.gauge("ibfs_serve_queue_depth").set(3.0);
        let h = r.histogram("ibfs_serve_latency_seconds");
        for v in [0.001, 0.002, 0.004, 0.1] {
            h.record(v);
        }
        r.counter(&crate::registry::labeled("ibfs_cluster_routed_total", &[("device", "0")]))
            .inc();
        r.snapshot()
    }

    #[test]
    fn json_round_trips() {
        use ibfs_util::{FromJson, ToJson};
        let s = sample();
        let text = s.to_json().to_string();
        let back = Snapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Pretty form parses to the same document.
        let pretty = s.to_json().to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), s.to_json());
    }

    #[test]
    fn future_snapshot_versions_are_rejected() {
        let mut j = sample().to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::UInt(SNAPSHOT_SCHEMA_VERSION + 1);
        }
        assert!(Snapshot::from_json(&j).is_err());
    }

    #[test]
    fn prometheus_rendering_has_types_samples_and_quantiles() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE ibfs_serve_accepted_total counter"));
        assert!(text.contains("ibfs_serve_accepted_total 12"));
        assert!(text.contains("# TYPE ibfs_serve_latency_seconds histogram"));
        assert!(text.contains("ibfs_serve_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("ibfs_serve_latency_seconds_count 4"));
        assert!(text.contains("ibfs_cluster_routed_total{device=\"0\"} 1"));
        // Label suffix never leaks into the TYPE line.
        assert!(text.contains("# TYPE ibfs_cluster_routed_total counter"));
        // Every sample value re-parses as a float: locale-stable output.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN"),
                "unparseable sample value in line: {line}"
            );
        }
    }

    #[test]
    fn validate_checks_presence_and_shape() {
        let s = sample();
        assert!(s.validate(&["ibfs_serve_accepted_total", "ibfs_cluster_routed_total*"]).is_ok());
        let err = s.validate(&["ibfs_missing_total"]).unwrap_err();
        assert!(err.contains("ibfs_missing_total"));

        // A corrupted histogram fails validation.
        let mut bad = s.clone();
        for m in &mut bad.metrics {
            if let MetricValue::Histogram(h) = &mut m.value {
                h.p50 = h.max + 1.0;
            }
        }
        assert!(bad.validate(&[]).is_err());
    }

    #[test]
    fn validate_rejects_nan_and_negative_gauges() {
        let mut s = sample();
        for m in &mut s.metrics {
            if let MetricValue::Gauge(v) = &mut m.value {
                *v = f64::NAN;
            }
        }
        assert!(s.validate(&[]).unwrap_err().contains("NaN"));

        let mut s = sample();
        for m in &mut s.metrics {
            if let MetricValue::Gauge(v) = &mut m.value {
                *v = -1.0;
            }
        }
        assert!(s.validate(&[]).unwrap_err().contains("not a finite value >= 0"));

        let mut s = sample();
        for m in &mut s.metrics {
            if let MetricValue::Gauge(v) = &mut m.value {
                *v = f64::INFINITY;
            }
        }
        assert!(s.validate(&[]).is_err());
    }

    #[test]
    fn validate_rejects_histogram_count_total_mismatches() {
        // Sum larger than count*max: the total cannot have come from the
        // claimed number of observations.
        let mut s = sample();
        for m in &mut s.metrics {
            if let MetricValue::Histogram(h) = &mut m.value {
                h.sum = h.max * h.count as f64 + 1.0;
            }
        }
        assert!(s.validate(&[]).unwrap_err().contains("inconsistent with count"));

        // Sum smaller than count*min.
        let mut s = sample();
        for m in &mut s.metrics {
            if let MetricValue::Histogram(h) = &mut m.value {
                h.sum = h.min * h.count as f64 - 1.0;
            }
        }
        assert!(s.validate(&[]).is_err());

        // Non-finite sum with a positive count.
        let mut s = sample();
        for m in &mut s.metrics {
            if let MetricValue::Histogram(h) = &mut m.value {
                h.sum = f64::NAN;
            }
        }
        assert!(s.validate(&[]).unwrap_err().contains("non-finite sum"));
    }

    #[test]
    fn accessors_find_rows() {
        let s = sample();
        assert_eq!(s.counter("ibfs_serve_accepted_total"), Some(12));
        assert_eq!(s.gauge("ibfs_serve_queue_depth"), Some(3.0));
        assert_eq!(s.histogram("ibfs_serve_latency_seconds").unwrap().count, 4);
        assert_eq!(s.counter("nope"), None);
        assert_eq!(s.with_prefix("ibfs_cluster_").count(), 1);
    }
}
