//! The unified metrics registry: named counters, gauges, and histograms.
//!
//! Layers register instruments once (mutex-protected, cold) and keep the
//! returned [`Arc`] handles; recording through a handle is a plain atomic
//! operation, so the hot path never takes a lock. Registration is
//! get-or-create: two layers naming the same instrument share it, which is
//! what lets the serve collector and the CLI read one set of numbers.

use crate::hist::Histogram;
use crate::snapshot::{MetricSnapshot, MetricValue, Snapshot, SNAPSHOT_SCHEMA_VERSION};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (stored as f64 bits; set and delta-add are atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A set of named instruments. Shareable across threads (`Arc<Registry>`);
/// see the crate docs for the `ibfs_<layer>_<name>` naming convention.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A fresh shared registry.
    pub fn shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        metrics.push((name.to_string(), m.clone()));
        m
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind_name()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind_name()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind_name()),
        }
    }

    /// Point-in-time snapshot of every registered instrument, sorted by
    /// name so output is stable regardless of registration interleaving.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut rows: Vec<MetricSnapshot> = metrics
            .iter()
            .map(|(name, m)| MetricSnapshot {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { schema_version: SNAPSHOT_SCHEMA_VERSION, metrics: rows }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry({} metrics)", self.metrics.lock().unwrap().len())
    }
}

/// Appends Prometheus-style labels to a metric name:
/// `labeled("ibfs_cluster_routed_total", &[("device", "0")])` →
/// `ibfs_cluster_routed_total{device="0"}`.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share() {
        let r = Registry::new();
        let a = r.counter("ibfs_test_total");
        let b = r.counter("ibfs_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        let g = r.gauge("ibfs_test_depth");
        g.set(4.0);
        g.add(-1.5);
        assert!((r.gauge("ibfs_test_depth").value() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("ibfs_test_total");
        r.gauge("ibfs_test_total");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("ibfs_z_total").inc();
        r.histogram("ibfs_a_seconds").record(0.5);
        r.gauge("ibfs_m_depth").set(7.0);
        let s = r.snapshot();
        let names: Vec<&str> = s.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["ibfs_a_seconds", "ibfs_m_depth", "ibfs_z_total"]);
        assert_eq!(s.counter("ibfs_z_total"), Some(1));
        assert_eq!(s.gauge("ibfs_m_depth"), Some(7.0));
        assert_eq!(s.histogram("ibfs_a_seconds").unwrap().count, 1);
    }

    #[test]
    fn concurrent_registration_yields_one_instrument() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..100 {
                        r.counter("ibfs_contended_total").inc();
                    }
                });
            }
        });
        assert_eq!(r.counter("ibfs_contended_total").value(), 400);
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    fn labeled_names() {
        assert_eq!(labeled("x_total", &[]), "x_total");
        assert_eq!(labeled("x_total", &[("device", "3")]), "x_total{device=\"3\"}");
        assert_eq!(
            labeled("x", &[("a", "1"), ("b", "2")]),
            "x{a=\"1\",b=\"2\"}"
        );
    }
}
