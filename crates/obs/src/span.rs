//! Request-scoped tracing spans.
//!
//! A serve request gets a [`RequestId`] at admission; every lifecycle stage
//! after that emits a [`SpanEvent`] carrying the id plus whatever
//! correlation the stage knows (batch sequence number, device index). Core
//! traversal events are stamped with the same batch number, so one request
//! can be followed end to end: `Admitted(request)` → `Batched(request,
//! batch)` → `Dispatched(request, batch, device)` → per-level traversal
//! events tagged `batch` → `Completed(request, batch, device)`.
//!
//! Fields that have no meaning at a stage (e.g. `batch` at admission) hold
//! [`NO_CORRELATION`] and are omitted from the JSON encoding.

use ibfs_util::json::{field, FromJson, Json, JsonError, ToJson};
use ibfs_util::json_enum;
use std::sync::atomic::{AtomicU64, Ordering};

/// Correlation id allocated at serve admission.
pub type RequestId = u64;

/// Sentinel for "this correlation is not known at this stage".
///
/// Zero is deliberately *not* the sentinel: batch sequence numbers start at
/// 1 so that `batch == 0` on a traversal event means "ran outside the serve
/// stack", which is a distinct, meaningful state.
pub const NO_CORRELATION: u64 = u64::MAX;

/// Version stamped into every trace line (traversal and span events alike).
/// v1 was the pre-span schema without `schema_version`/`batch` fields.
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// Monotone id allocator. Ids start at 1 so 0 never names a real request.
#[derive(Debug)]
pub struct IdGen(AtomicU64);

impl Default for IdGen {
    fn default() -> Self {
        IdGen(AtomicU64::new(1))
    }
}

impl IdGen {
    /// A fresh allocator.
    pub fn new() -> Self {
        IdGen::default()
    }

    /// The next id (1, 2, 3, ...).
    pub fn next_id(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// Which lifecycle stage a span event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanStage {
    /// Request passed validation and entered the admission queue.
    Admitted,
    /// Request was pulled into a coalesced batch.
    Batched,
    /// The batch holding the request was handed to a device worker.
    Dispatched,
    /// Request resolved successfully.
    Completed,
    /// Request resolved with a deadline error.
    TimedOut,
    /// Request was rejected at admission: queue full.
    Overloaded,
    /// Request was resolved by server shutdown.
    Shutdown,
    /// Request was rejected at admission: server not accepting.
    Rejected,
    /// Request was rejected at admission: invalid sources.
    Invalid,
    /// Request was rejected at admission: tenant at its in-flight quota.
    QuotaExceeded,
    /// Request was answered from the result cache without traversal.
    CacheHit,
}

json_enum!(SpanStage {
    Admitted,
    Batched,
    Dispatched,
    Completed,
    TimedOut,
    Overloaded,
    Shutdown,
    Rejected,
    Invalid,
    QuotaExceeded,
    CacheHit,
});

impl SpanStage {
    /// True for stages that end a request's lifetime.
    pub fn is_terminal(self) -> bool {
        !matches!(self, SpanStage::Admitted | SpanStage::Batched | SpanStage::Dispatched)
    }
}

/// One lifecycle event for one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanEvent {
    /// The request this event belongs to.
    pub request: RequestId,
    /// Lifecycle stage.
    pub stage: SpanStage,
    /// The request's BFS source vertex.
    pub source: u64,
    /// Coalesced batch sequence number (1-based), or [`NO_CORRELATION`].
    pub batch: u64,
    /// Device index the batch ran on, or [`NO_CORRELATION`].
    pub device: u64,
    /// Seconds since the serve run started.
    pub t_s: f64,
}

impl SpanEvent {
    /// An event with no batch/device correlation yet (admission stages).
    pub fn admission(request: RequestId, stage: SpanStage, source: u64, t_s: f64) -> Self {
        SpanEvent {
            request,
            stage,
            source,
            batch: NO_CORRELATION,
            device: NO_CORRELATION,
            t_s,
        }
    }

    /// Fills in the batch correlation.
    pub fn with_batch(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Fills in the device correlation.
    pub fn with_device(mut self, device: u64) -> Self {
        self.device = device;
        self
    }
}

impl ToJson for SpanEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version".to_string(), Json::UInt(TRACE_SCHEMA_VERSION)),
            ("kind".to_string(), Json::Str("span".to_string())),
            ("request".to_string(), Json::UInt(self.request)),
            ("stage".to_string(), self.stage.to_json()),
            ("source".to_string(), Json::UInt(self.source)),
        ];
        if self.batch != NO_CORRELATION {
            fields.push(("batch".to_string(), Json::UInt(self.batch)));
        }
        if self.device != NO_CORRELATION {
            fields.push(("device".to_string(), Json::UInt(self.device)));
        }
        fields.push(("t_s".to_string(), self.t_s.to_json()));
        Json::Obj(fields)
    }
}

impl FromJson for SpanEvent {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let version = field::<u64>(j, "schema_version").unwrap_or(1);
        if version > TRACE_SCHEMA_VERSION {
            return Err(JsonError {
                msg: format!(
                    "trace version {version} is newer than supported {TRACE_SCHEMA_VERSION}"
                ),
                at: 0,
            });
        }
        Ok(SpanEvent {
            request: field(j, "request")?,
            stage: field(j, "stage")?,
            source: field(j, "source")?,
            batch: field(j, "batch").unwrap_or(NO_CORRELATION),
            device: field(j, "device").unwrap_or(NO_CORRELATION),
            t_s: field(j, "t_s")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_gen_starts_at_one_and_is_monotone() {
        let g = IdGen::new();
        assert_eq!(g.next_id(), 1);
        assert_eq!(g.next_id(), 2);
        assert_eq!(g.next_id(), 3);
    }

    #[test]
    fn admission_event_omits_unknown_correlation() {
        let e = SpanEvent::admission(7, SpanStage::Admitted, 42, 0.5);
        let j = e.to_json();
        assert!(j.get("batch").is_none());
        assert!(j.get("device").is_none());
        assert_eq!(SpanEvent::from_json(&j).unwrap(), e);
    }

    #[test]
    fn full_correlation_round_trips() {
        let e = SpanEvent::admission(9, SpanStage::Completed, 3, 1.25)
            .with_batch(4)
            .with_device(1);
        let text = e.to_json().to_string();
        assert!(text.contains("\"schema_version\":2"));
        assert!(text.contains("\"kind\":\"span\""));
        assert!(text.contains("\"stage\":\"Completed\""));
        let back = SpanEvent::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn missing_version_decodes_as_v1() {
        // A hand-built v1-style line (no schema_version) still decodes.
        let j = Json::parse(
            "{\"kind\":\"span\",\"request\":1,\"stage\":\"Admitted\",\"source\":0,\"t_s\":0.0}",
        )
        .unwrap();
        let e = SpanEvent::from_json(&j).unwrap();
        assert_eq!(e.request, 1);
        assert_eq!(e.batch, NO_CORRELATION);
    }

    #[test]
    fn future_versions_are_rejected() {
        let j = Json::parse(
            "{\"schema_version\":99,\"request\":1,\"stage\":\"Admitted\",\"source\":0,\"t_s\":0.0}",
        )
        .unwrap();
        assert!(SpanEvent::from_json(&j).is_err());
    }

    #[test]
    fn terminal_stages() {
        assert!(!SpanStage::Admitted.is_terminal());
        assert!(!SpanStage::Batched.is_terminal());
        assert!(!SpanStage::Dispatched.is_terminal());
        for s in [
            SpanStage::Completed,
            SpanStage::TimedOut,
            SpanStage::Overloaded,
            SpanStage::Shutdown,
            SpanStage::Rejected,
            SpanStage::Invalid,
            SpanStage::QuotaExceeded,
            SpanStage::CacheHit,
        ] {
            assert!(s.is_terminal());
        }
    }
}
