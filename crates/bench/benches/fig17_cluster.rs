//! Criterion bench mirroring Figure 17: cost of the multi-GPU cluster
//! simulation at different device counts.

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibfs::groupby::GroupingStrategy;
use ibfs_cluster::{run_cluster, ClusterConfig};
use ibfs_graph::suite;

fn bench_cluster_scaling(c: &mut Criterion) {
    let spec = suite::by_name("RD").unwrap();
    let g = spec.generate_scaled(2);
    let r = g.reverse();
    let sources: Vec<u32> = (0..128.min(g.num_vertices()) as u32).collect();

    let mut group = c.benchmark_group("fig17_cluster");
    for gpus in [1usize, 4, 16, 64] {
        let config = ClusterConfig {
            gpus,
            grouping: GroupingStrategy::Random { seed: 1, group_size: 16 },
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(gpus), &sources, |b, s| {
            b.iter(|| run_cluster(&g, &r, s, &config))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cluster_scaling
}
criterion_main!(benches);
