//! One criterion bench per reproduced table/figure: times each
//! regenerator end-to-end at reduced scale. The simulated results
//! themselves come from the `reproduce` binary; this tracks the harness's
//! own cost so regressions in the engines or the simulator show up in CI.

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibfs_bench::figures::{run_by_id, ALL_IDS};
use ibfs_bench::HarnessConfig;

fn bench_figures(c: &mut Criterion) {
    let cfg = HarnessConfig::tiny();
    // Warm the graph cache so generation cost doesn't pollute the numbers.
    for id in ALL_IDS {
        run_by_id(id, &cfg).unwrap();
    }
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in ALL_IDS {
        group.bench_with_input(BenchmarkId::from_parameter(id), &cfg, |b, cfg| {
            b.iter(|| run_by_id(id, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
