//! Criterion bench mirroring the CPU side of Figure 22: real wall-clock
//! throughput of CPU-iBFS vs CPU MS-BFS on a power-law graph, both through
//! a resident [`ibfs::cpu::CpuService`] so the pool and arena costs are
//! paid once, outside the measured loop.

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ibfs::cpu::{CpuIbfs, CpuMsBfs};
use ibfs_graph::suite;

fn bench_cpu_engines(c: &mut Criterion) {
    let spec = suite::by_name("LJ").unwrap();
    let g = spec.generate_scaled(1);
    let r = g.reverse();
    let sources: Vec<u32> = (0..64).collect();
    let edges_per_run = (g.num_edges() * sources.len()) as u64;

    let mut group = c.benchmark_group("fig22_cpu_engines");
    group.throughput(Throughput::Elements(edges_per_run));
    let mut ibfs_svc = CpuIbfs::default().service(&g, &r);
    group.bench_with_input(BenchmarkId::from_parameter("cpu-ibfs"), &sources, |b, s| {
        b.iter(|| ibfs_svc.run_group(s).unwrap())
    });
    let mut msbfs_svc = CpuMsBfs::default().service(&g, &r);
    group.bench_with_input(BenchmarkId::from_parameter("cpu-msbfs"), &sources, |b, s| {
        b.iter(|| msbfs_svc.run_group(s).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cpu_engines
}
criterion_main!(benches);
