//! Micro-benches of the substrate primitives: the coalescer, warp votes,
//! status-word operations, and graph generation.

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibfs::word::{StatusWord, W256};
use ibfs_gpu_sim::warp::{ballot, tree_or_reduce};
use ibfs_gpu_sim::{transactions_for_contiguous, transactions_for_warp};

fn bench_coalescer(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalescer");
    let contiguous: Vec<u64> = (0..32).map(|i| 4096 + i * 4).collect();
    let scattered: Vec<u64> = (0..32).map(|i| (i * 2654435761) % 1_000_000).collect();
    group.bench_function("warp_contiguous", |b| {
        b.iter(|| transactions_for_warp(contiguous.iter().copied(), 4, 32))
    });
    group.bench_function("warp_scattered", |b| {
        b.iter(|| transactions_for_warp(scattered.iter().copied(), 4, 32))
    });
    group.bench_function("contiguous_span", |b| {
        b.iter(|| transactions_for_contiguous(4096, 17, 1000, 4, 128))
    });
    group.finish();
}

fn bench_warp_votes(c: &mut Criterion) {
    let preds: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
    let words: Vec<u64> = (0..32).map(|i| 1u64 << (i % 64)).collect();
    let mut group = c.benchmark_group("warp_votes");
    group.bench_function("ballot", |b| b.iter(|| ballot(preds.iter().copied())));
    group.bench_function("tree_or_reduce", |b| b.iter(|| tree_or_reduce(&words)));
    group.finish();
}

fn bench_word_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("status_words");
    macro_rules! bench_w {
        ($name:literal, $w:ty) => {
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                let full = <$w as StatusWord>::low_mask(<$w as StatusWord>::BITS);
                let x = <$w as StatusWord>::bit(3);
                b.iter(|| {
                    let or = x.or(full);
                    let xor = or.xor(x);
                    (xor.count_ones(), or.and(xor).is_zero())
                })
            });
        };
    }
    bench_w!("u32", u32);
    bench_w!("u128", u128);
    bench_w!("w256", W256);
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    use ibfs_graph::generators::{rmat, uniform_random, RmatParams};
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("rmat_2^10x16", |b| {
        b.iter(|| rmat(10, 16, RmatParams::graph500(), 1))
    });
    group.bench_function("uniform_1024x16", |b| b.iter(|| uniform_random(1024, 16, 1)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_coalescer, bench_warp_votes, bench_word_ops, bench_generators
}
criterion_main!(benches);
