//! Criterion bench mirroring Figure 15: wall-clock cost of each engine
//! simulating one concurrent group (the simulation itself is the system
//! under test here; simulated TEPS come from the `reproduce` harness).

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibfs::engine::{EngineKind, GpuGraph};
use ibfs_graph::suite;
use ibfs_gpu_sim::{DeviceConfig, Profiler};

fn bench_engines(c: &mut Criterion) {
    let spec = suite::by_name("PK").unwrap();
    let g = spec.generate_scaled(2);
    let r = g.reverse();
    let sources: Vec<u32> = (0..64).collect();

    let mut group = c.benchmark_group("fig15_engines");
    for kind in EngineKind::all() {
        let engine = kind.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &sources,
            |b, sources| {
                b.iter(|| {
                    let mut prof = Profiler::new(DeviceConfig::k40());
                    let gg = GpuGraph::new(&g, &r, &mut prof);
                    engine.run_group(&gg, sources, &mut prof)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
}
criterion_main!(benches);
