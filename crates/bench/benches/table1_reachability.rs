//! Criterion bench mirroring Table 1: 3-hop reachability index
//! construction with each builder.

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibfs_apps::reachability::{IndexBuilder, ReachabilityIndex};
use ibfs_graph::suite;

fn bench_index_builders(c: &mut Criterion) {
    let spec = suite::by_name("KG0").unwrap();
    let g = spec.generate_scaled(2);
    let r = g.reverse();
    let sources: Vec<u32> = (0..64.min(g.num_vertices()) as u32).collect();

    let mut group = c.benchmark_group("table1_reachability");
    for builder in [
        IndexBuilder::CpuMsBfs,
        IndexBuilder::CpuIbfs,
        IndexBuilder::GpuB40c,
        IndexBuilder::GpuIbfs,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{builder:?}")),
            &sources,
            |b, sources| b.iter(|| ReachabilityIndex::build(&g, &r, sources, 3, builder, 64)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index_builders
}
criterion_main!(benches);
