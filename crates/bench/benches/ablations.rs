//! Ablation benches for the design choices called out in DESIGN.md §5:
//! status-word width (int/long/int4/long4), bottom-up early termination,
//! the CTA shared-memory adjacency cache, and the direction-switch policy.

use ibfs_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibfs::bitwise::{BitwiseEngine, BitwiseStyle};
use ibfs::direction::DirectionPolicy;
use ibfs::engine::{Engine, GpuGraph};
use ibfs::joint::JointEngine;
use ibfs::word::W256;
use ibfs_graph::generators::{rmat, RmatParams};
use ibfs_graph::Csr;
use ibfs_gpu_sim::{DeviceConfig, Profiler};

fn graph() -> Csr {
    rmat(10, 16, RmatParams::graph500(), 5)
}

/// Word-width ablation: same 24 instances through each CUDA-native word.
fn bench_word_width(c: &mut Criterion) {
    let g = graph();
    let r = g.reverse();
    let sources: Vec<u32> = (0..24).collect();
    let engine = BitwiseEngine::default();

    let mut group = c.benchmark_group("ablation_word_width");
    macro_rules! bench_w {
        ($name:literal, $w:ty) => {
            group.bench_with_input(BenchmarkId::from_parameter($name), &sources, |b, s| {
                b.iter(|| {
                    let mut prof = Profiler::new(DeviceConfig::k40());
                    let gg = GpuGraph::new(&g, &r, &mut prof);
                    engine.run_group_with_word::<$w>(&gg, s, &mut prof)
                })
            });
        };
    }
    bench_w!("u32-int", u32);
    bench_w!("u64-long", u64);
    bench_w!("u128-int4", u128);
    bench_w!("w256-long4", W256);
    group.finish();
}

/// Early-termination ablation: iBFS semantics vs per-level-reset MS-BFS
/// semantics on the same coherent group.
fn bench_early_termination(c: &mut Criterion) {
    let g = graph();
    let r = g.reverse();
    let sources: Vec<u32> = (0..64).collect();

    let mut group = c.benchmark_group("ablation_early_termination");
    for (name, style) in [("ibfs", BitwiseStyle::Ibfs), ("msbfs-reset", BitwiseStyle::MsBfs)] {
        let engine = BitwiseEngine { style, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &sources, |b, s| {
            b.iter(|| {
                let mut prof = Profiler::new(DeviceConfig::k40());
                let gg = GpuGraph::new(&g, &r, &mut prof);
                engine.run_group(&gg, s, &mut prof)
            })
        });
    }
    group.finish();
}

/// CTA shared-memory cache ablation on the joint engine.
fn bench_shared_cache(c: &mut Criterion) {
    let g = graph();
    let r = g.reverse();
    let sources: Vec<u32> = (0..64).collect();

    let mut group = c.benchmark_group("ablation_shared_cache");
    for (name, engine) in [
        ("cached", JointEngine::default()),
        ("uncached", JointEngine::without_shared_cache()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sources, |b, s| {
            b.iter(|| {
                let mut prof = Profiler::new(DeviceConfig::k40());
                let gg = GpuGraph::new(&g, &r, &mut prof);
                engine.run_group(&gg, s, &mut prof)
            })
        });
    }
    group.finish();
}

/// Direction-policy ablation: Beamer α/β vs top-down-only.
fn bench_direction_policy(c: &mut Criterion) {
    let g = graph();
    let r = g.reverse();
    let sources: Vec<u32> = (0..64).collect();

    let mut group = c.benchmark_group("ablation_direction_policy");
    for (name, policy) in [
        ("direction-optimizing", DirectionPolicy::beamer()),
        ("top-down-only", DirectionPolicy::top_down_only()),
    ] {
        let engine = BitwiseEngine { policy, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &sources, |b, s| {
            b.iter(|| {
                let mut prof = Profiler::new(DeviceConfig::k40());
                let gg = GpuGraph::new(&g, &r, &mut prof);
                engine.run_group(&gg, s, &mut prof)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_word_width, bench_early_termination, bench_shared_cache, bench_direction_policy
}
criterion_main!(benches);
