//! `bfs top`: a live terminal dashboard over metrics snapshots.
//!
//! The serve layer already exports everything an operator needs — SLO
//! gauges, admission counters, latency histograms, profiler phase gauges —
//! as a versioned [`Snapshot`]. This module renders one frame of that
//! surface as plain text; the `bfs top` subcommand polls a snapshot file
//! (e.g. one being rewritten by `serve-bench --metrics-out`) and redraws
//! between ticks. Rendering is pure (`&Snapshot -> String`) so the layout
//! is unit-testable without a terminal; counter *rates* come from the
//! previous frame's snapshot, which is why the renderer takes a pair.

use ibfs_obs::Snapshot;
use std::fmt::Write as _;

/// Extracts the `class="..."` label value from a metric name like
/// `ibfs_slo_availability{class="bulk"}`.
fn class_label(name: &str) -> &str {
    name.split("class=\"").nth(1).and_then(|s| s.split('"').next()).unwrap_or("?")
}

fn fmt_count(v: u64) -> String {
    v.to_string()
}

/// Renders one dashboard frame. `prev` (the previous tick's snapshot)
/// supplies counter deltas; with `None` the delta column shows `-`.
pub fn render_dashboard(prev: Option<&Snapshot>, cur: &Snapshot, tick: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ibfs top — tick {tick}, {} metrics", cur.metrics.len());

    // SLO surface: one row per class, then the overload flag.
    let _ = writeln!(out, "slo          {:>8} {:>8} {:>8}", "avail", "latency", "burn");
    for m in cur.with_prefix("ibfs_slo_availability{") {
        let class = class_label(&m.name);
        let avail = cur.gauge(&m.name).unwrap_or(f64::NAN);
        let att = cur
            .gauge(&format!("ibfs_slo_latency_attainment{{class=\"{class}\"}}"))
            .unwrap_or(f64::NAN);
        let burn =
            cur.gauge(&format!("ibfs_slo_burn_rate{{class=\"{class}\"}}")).unwrap_or(f64::NAN);
        let _ = writeln!(out, "  {class:<11}{avail:>8.4} {att:>8.4} {burn:>8.2}");
    }
    let overload = cur.gauge("ibfs_slo_overload").unwrap_or(0.0);
    let _ = writeln!(out, "  overload: {}", if overload > 0.0 { "YES" } else { "no" });

    // Admission counters with per-tick deltas.
    let _ = writeln!(out, "serve        {:>12} {:>10}", "total", "delta");
    for name in [
        "ibfs_serve_accepted_total",
        "ibfs_serve_completed_total",
        "ibfs_serve_timeout_total",
        "ibfs_serve_overload_total",
        "ibfs_serve_quota_rejected_total",
        "ibfs_serve_dedup_joined_total",
    ] {
        let Some(v) = cur.counter(name) else { continue };
        let short = name.trim_start_matches("ibfs_serve_");
        let delta = match prev.and_then(|p| p.counter(name)) {
            Some(p) => format!("+{}", v.saturating_sub(p)),
            None => "-".to_string(),
        };
        let _ = writeln!(out, "  {:<12} {:>11} {:>10}", short, fmt_count(v), delta);
    }

    // Latency quantiles per class (histograms carry absolutes, not rates).
    let _ = writeln!(out, "latency (s)  {:>9} {:>9} {:>9} {:>8}", "p50", "p90", "p99", "count");
    for m in cur.with_prefix("ibfs_serve_latency_seconds{") {
        if let Some(h) = cur.histogram(&m.name) {
            let _ = writeln!(
                out,
                "  {:<11}{:>9.4} {:>9.4} {:>9.4} {:>8}",
                class_label(&m.name),
                h.p50,
                h.p90,
                h.p99,
                h.count
            );
        }
    }

    // Engine profiler gauges: cumulative per-phase seconds, busiest first.
    let records = cur.counter("ibfs_prof_records_total").unwrap_or(0);
    let barrier = cur.gauge("ibfs_prof_barrier_share").unwrap_or(0.0);
    let _ = writeln!(out, "profiler     {records} records, barrier share {barrier:.3}");
    let mut phases: Vec<(String, f64)> = cur
        .with_prefix("ibfs_prof_phase_seconds{")
        .filter_map(|m| Some((class_phase(&m.name).to_string(), cur.gauge(&m.name)?)))
        .filter(|&(_, v)| v > 0.0)
        .collect();
    phases.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (phase, seconds) in phases {
        let _ = writeln!(out, "  {phase:<20} {seconds:>10.4}s");
    }
    out
}

/// Extracts the `phase="..."` label value.
fn class_phase(name: &str) -> &str {
    name.split("phase=\"").nth(1).and_then(|s| s.split('"').next()).unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_obs::Registry;
    use std::sync::Arc;

    fn snapshot_with_activity() -> (Snapshot, Snapshot) {
        let r = Arc::new(Registry::new());
        ibfs_serve::slo::register_slo_metrics(&r);
        ibfs_obs::register_prof_metrics(&r);
        let accepted = r.counter("ibfs_serve_accepted_total");
        let latency = r.histogram("ibfs_serve_latency_seconds{class=\"interactive\"}");
        accepted.add(10);
        latency.record(0.005);
        let first = r.snapshot();
        accepted.add(32);
        latency.record(0.020);
        r.gauge("ibfs_prof_phase_seconds{phase=\"top_down_expand\"}").set(1.25);
        r.gauge("ibfs_slo_overload").set(1.0);
        let second = r.snapshot();
        (first, second)
    }

    #[test]
    fn dashboard_renders_slo_serve_and_profiler_sections() {
        let (first, second) = snapshot_with_activity();
        let frame = render_dashboard(Some(&first), &second, 2);
        assert!(frame.contains("ibfs top — tick 2"));
        // Both SLO classes registered eagerly show up with healthy values.
        assert!(frame.contains("interactive"));
        assert!(frame.contains("bulk"));
        assert!(frame.contains("overload: YES"));
        // Counter delta against the previous frame.
        assert!(frame.contains("accepted_total"));
        assert!(frame.contains("+32"));
        // Histogram quantiles and the profiler phase gauge.
        assert!(frame.contains("latency (s)"));
        assert!(frame.contains("top_down_expand"));
    }

    #[test]
    fn first_frame_has_no_deltas_and_hides_idle_phases() {
        let (_, second) = snapshot_with_activity();
        let frame = render_dashboard(None, &second, 0);
        assert!(frame.contains(" -\n") || frame.contains(" -"));
        // Idle phases (gauge still 0) are filtered out of the hot list.
        assert!(!frame.contains("bottom_up_sweep"));
        assert!(frame.contains("top_down_expand"));
    }

    #[test]
    fn label_extractors_tolerate_unlabelled_names() {
        assert_eq!(class_label("ibfs_slo_availability{class=\"bulk\"}"), "bulk");
        assert_eq!(class_label("ibfs_slo_availability"), "?");
        assert_eq!(class_phase("x{phase=\"repair\"}"), "repair");
        assert_eq!(class_phase("x"), "?");
    }
}
