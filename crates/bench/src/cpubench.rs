//! `bfs cpu-bench`: the measured CPU-engine benchmark behind
//! `BENCH_cpu.json`.
//!
//! Runs a seeded fig22-style R-MAT workload through the frozen pre-pool
//! baseline ([`ibfs::cpu_baseline::run_cpu_baseline`]) and each requested
//! round-2 [`ibfs::cpu::CpuEngine`] (`pooled`, `tiled`, `async`) at each
//! requested thread count, and reports TEPS, per-level wall times, and the
//! per-engine speedup-over-baseline curve. With `check`, every engine's
//! depths are asserted equal to `reference_bfs`, and — when the tiled
//! engine is in the sweep — a hub-heavy side workload asserts that edge
//! tiling actually beats vertex-granular stealing where it matters (one
//! vertex owning most of the edges). The emitted JSON is the repo's perf
//! trajectory record: committed once per perf PR so regressions are
//! diffable.

use ibfs::cpu::{CpuEngine, CpuIbfs, CpuRun};
use ibfs::cpu_baseline::run_cpu_baseline;
use ibfs::direction::DirectionPolicy;
use ibfs::word::WordWidth;
use ibfs_graph::generators::{hub_heavy, rmat, RmatParams};
use ibfs_graph::reorder::ReorderKind;
use ibfs_graph::validate::reference_bfs;
use ibfs_graph::{Csr, VertexId, DEPTH_UNVISITED};
use ibfs_util::json::{FromJson, ToJson};
use ibfs_util::json_struct;

/// Schema version stamped into `BENCH_cpu.json`. v2: multi-engine runs
/// (`tiled`/`async` joined `baseline`/`pooled`) and per-engine speedups
/// (`engine`/`engine_teps` replaced the pooled-only fields). v3: the
/// `hub_gate` block records whether the tiling gate ran, whether its TEPS
/// ordering was *enforced* (multi-core hosts only), and the measured
/// rates — so `bfs perf-diff` can tell "gate passed" apart from "gate
/// not enforced on this host". v4: every run and speedup row carries the
/// vertex `reorder` ordering it was measured under (`"none"` for the
/// unreordered rows, which every reordered row must have as its in-report
/// baseline), and the `reorder_gate` block records the tiled-vs-
/// tiled+reordered locality gate the same way `hub_gate` records tiling.
pub const SCHEMA_VERSION: u64 = 4;

/// Workload configuration for the CPU benchmark.
#[derive(Clone, Debug)]
pub struct CpuBenchConfig {
    /// R-MAT scale (2^scale vertices).
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u32,
    /// Generator seed.
    pub seed: u64,
    /// Number of BFS sources (the first `sources` vertices).
    pub sources: usize,
    /// Concurrent group size.
    pub group_size: usize,
    /// Thread counts to sweep (the scaling curve).
    pub threads: Vec<usize>,
    /// Status-word width for the level-synchronous engines.
    pub width: WordWidth,
    /// Engines to measure against the baseline.
    pub engines: Vec<CpuEngine>,
    /// Edge-tile size for the tiled/async engines; 0 = autotuned.
    pub tile_size: usize,
    /// Vertex orderings to sweep: every engine runs once per ordering
    /// (the frozen baseline always runs unreordered). `None` is the
    /// unreordered row every reordered row is compared against.
    pub reorders: Vec<ReorderKind>,
    /// Verify every engine's depths against `reference_bfs` (and the
    /// baseline), and run the hub-heavy tiling gate when `tiled` is swept.
    /// When a non-`none` ordering is swept alongside the tiled engine,
    /// additionally runs the reorder locality gate ([`run_reorder_gate`]).
    pub check: bool,
    /// Wall-clock noise damping: run every engine × thread-count
    /// measurement this many times and report the best (highest-TEPS)
    /// pass, like the hub gate's best-of-5. 0 and 1 both mean one pass.
    /// TEPS outliers on a loaded host are always downward, so best-of is
    /// the stable estimator — `ci.sh` leans on this for its tight
    /// profiler-overhead band.
    pub repeat: usize,
    /// When set, every engine service records per-lane phase timings into
    /// this profiler (the baseline has no hooks and stays unprofiled).
    pub profiler: Option<std::sync::Arc<ibfs_obs::EngineProfiler>>,
}

impl Default for CpuBenchConfig {
    fn default() -> Self {
        CpuBenchConfig {
            scale: 12,
            edge_factor: 16,
            seed: 42,
            sources: 64,
            group_size: 64,
            threads: vec![1, 2, 4, 8],
            width: WordWidth::default(),
            engines: vec![CpuEngine::Pooled],
            tile_size: 0,
            reorders: vec![ReorderKind::None],
            check: false,
            repeat: 1,
            profiler: None,
        }
    }
}

/// One engine × thread-count measurement.
#[derive(Clone, Debug)]
pub struct CpuBenchRun {
    /// `"baseline"` (pre-pool `run_cpu`) or a [`CpuEngine::name`]
    /// (`"pooled"`, `"tiled"`, `"async"`).
    pub engine: String,
    /// Vertex ordering ([`ReorderKind::name`]) the service was built with:
    /// `"none"`, `"degree"`, `"hub"`, or `"rcm"`. The baseline is always
    /// `"none"`.
    pub reorder: String,
    /// Worker threads used.
    pub threads: u64,
    /// Total wall-clock seconds over all groups.
    pub wall_seconds: f64,
    /// Traversed directed edges over all groups.
    pub traversed_edges: u64,
    /// Traversal rate.
    pub teps: f64,
    /// Groups run.
    pub groups: u64,
    /// BFS levels run (summed over groups).
    pub levels: u64,
    /// Per-level wall seconds, element-wise summed across groups.
    pub level_seconds: Vec<f64>,
    /// Pool phases dispatched (0 for the baseline, which has no pool).
    pub pool_phases: u64,
}

json_struct!(CpuBenchRun {
    engine,
    reorder,
    threads,
    wall_seconds,
    traversed_edges,
    teps,
    groups,
    levels,
    level_seconds,
    pool_phases,
});

/// Engine-vs-baseline comparison at one thread count.
#[derive(Clone, Debug)]
pub struct CpuSpeedup {
    /// The measured engine ([`CpuEngine::name`]).
    pub engine: String,
    /// Vertex ordering the engine ran under ([`ReorderKind::name`]).
    pub reorder: String,
    /// Worker threads.
    pub threads: u64,
    /// Baseline TEPS.
    pub baseline_teps: f64,
    /// The engine's TEPS.
    pub engine_teps: f64,
    /// `engine_teps / baseline_teps`.
    pub speedup: f64,
}

json_struct!(CpuSpeedup { engine, reorder, threads, baseline_teps, engine_teps, speedup });

/// Outcome of the hub-heavy tiling gate as recorded in the report (schema
/// v3). A single-core host runs the gate but cannot express the parallel
/// win, so the TEPS ordering is reported without being enforced; the
/// three booleans let a consumer (and `bfs perf-diff`) distinguish
/// "passed" from "not enforced" from "never ran".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HubGateStatus {
    /// The gate executed (requires `check` and the tiled engine in the
    /// sweep).
    pub ran: bool,
    /// The TEPS ordering was asserted (multi-core hosts only).
    pub enforced: bool,
    /// `tiled_teps >= pooled_teps` held. Meaningful only when `ran`;
    /// reported (but not asserted) on single-core hosts.
    pub passed: bool,
    /// Threads the gate ran with (0 when it never ran).
    pub threads: u64,
    /// Best-of-N pooled TEPS (0 when the gate never ran).
    pub pooled_teps: f64,
    /// Best-of-N tiled TEPS (0 when the gate never ran).
    pub tiled_teps: f64,
}

json_struct!(HubGateStatus { ran, enforced, passed, threads, pooled_teps, tiled_teps });

/// Outcome of the reorder locality gate (schema v4): tiled unreordered vs
/// tiled + a reordered layout on the power-law workload where hub
/// clustering pays. Same three-state encoding as [`HubGateStatus`]:
/// single-core hosts run the gate and report the ordering without
/// asserting it (timeshared lanes cannot express a locality win), so
/// `ran`/`enforced`/`passed` disambiguate for `bfs perf-diff`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReorderGateStatus {
    /// The gate executed (requires `check`, the tiled engine, and a
    /// non-`none` ordering in the sweep).
    pub ran: bool,
    /// The TEPS ordering was asserted (multi-core hosts only).
    pub enforced: bool,
    /// `reordered_teps >= tiled_teps` held. Meaningful only when `ran`.
    pub passed: bool,
    /// The ordering measured ([`ReorderKind::name`]; `"none"` = never ran).
    pub reorder: String,
    /// Threads the gate ran with (0 when it never ran).
    pub threads: u64,
    /// Best-of-N unreordered tiled TEPS (0 when the gate never ran).
    pub tiled_teps: f64,
    /// Best-of-N reordered tiled TEPS (0 when the gate never ran).
    pub reordered_teps: f64,
}

json_struct!(ReorderGateStatus {
    ran,
    enforced,
    passed,
    reorder,
    threads,
    tiled_teps,
    reordered_teps,
});

impl ReorderGateStatus {
    fn never_ran() -> Self {
        ReorderGateStatus { reorder: ReorderKind::None.name().to_string(), ..Default::default() }
    }
}

/// The full `BENCH_cpu.json` document.
#[derive(Clone, Debug)]
pub struct CpuBenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Workload name (`"rmat"`).
    pub graph: String,
    /// R-MAT scale.
    pub scale: u64,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Generator seed.
    pub seed: u64,
    /// Vertices in the generated graph.
    pub num_vertices: u64,
    /// Directed edges in the generated graph.
    pub num_edges: u64,
    /// BFS sources.
    pub sources: u64,
    /// Concurrent group size.
    pub group_size: u64,
    /// Status-word width in bits (level-synchronous engines).
    pub width_bits: u64,
    /// Edge-tile size the tiled/async engines ran with (0 = autotuned).
    pub tile_size: u64,
    /// Every engine × thread-count measurement.
    pub runs: Vec<CpuBenchRun>,
    /// The per-engine thread-scaling speedup curve.
    pub speedups: Vec<CpuSpeedup>,
    /// Hub-heavy tiling gate outcome (all-default when it never ran).
    pub hub_gate: HubGateStatus,
    /// Reorder locality gate outcome (`ran: false` when it never ran).
    pub reorder_gate: ReorderGateStatus,
}

json_struct!(CpuBenchReport {
    schema_version,
    graph,
    scale,
    edge_factor,
    seed,
    num_vertices,
    num_edges,
    sources,
    group_size,
    width_bits,
    tile_size,
    runs,
    speedups,
    hub_gate,
    reorder_gate,
});

fn summarize(
    engine: &str,
    reorder: ReorderKind,
    threads: usize,
    runs: &[CpuRun],
    pool_phases: u64,
) -> CpuBenchRun {
    let wall: f64 = runs.iter().map(|r| r.wall_seconds).sum();
    let edges: u64 = runs.iter().map(|r| r.traversed_edges).sum();
    let mut level_seconds: Vec<f64> = Vec::new();
    for r in runs {
        if level_seconds.len() < r.level_seconds.len() {
            level_seconds.resize(r.level_seconds.len(), 0.0);
        }
        for (acc, &s) in level_seconds.iter_mut().zip(&r.level_seconds) {
            *acc += s;
        }
    }
    CpuBenchRun {
        engine: engine.to_string(),
        reorder: reorder.name().to_string(),
        threads: threads as u64,
        wall_seconds: wall,
        traversed_edges: edges,
        teps: edges as f64 / wall.max(1e-12),
        groups: runs.len() as u64,
        levels: runs.iter().map(|r| r.level_seconds.len() as u64).sum(),
        level_seconds,
        pool_phases,
    }
}

fn check_depths(graph: &Csr, sources: &[VertexId], runs: &[CpuRun], what: &str) {
    let mut idx = 0;
    for run in runs {
        for j in 0..run.num_instances {
            let s = sources[idx];
            let want = reference_bfs(graph, s);
            assert_eq!(
                run.instance_depths(j),
                &want[..],
                "{what}: depths diverge from reference_bfs at source {s}"
            );
            idx += 1;
        }
    }
    assert_eq!(idx, sources.len(), "{what}: runs cover every source");
}

/// Runs the benchmark and builds the report. With `cfg.check`, every
/// engine's depths are asserted equal to `reference_bfs` (and bit-identical
/// to the baseline — all engines converge to the same fixed point) at every
/// thread count; sweeping the tiled engine additionally runs
/// [`run_hub_gate`] and, on hosts with >= 2 cores, asserts tiled TEPS >=
/// pooled TEPS on the hub-heavy workload (single-core hosts report the
/// ratio without enforcing it — timesharing lanes can't express the win).
pub fn run_cpu_bench(cfg: &CpuBenchConfig) -> CpuBenchReport {
    let graph = rmat(cfg.scale, cfg.edge_factor as usize, RmatParams::graph500(), cfg.seed);
    let reverse = graph.reverse();
    let n = graph.num_vertices();
    let sources: Vec<VertexId> = (0..cfg.sources.min(n) as VertexId).collect();
    let group_size = cfg.group_size.min(cfg.width.bits() as usize).min(ibfs::cpu::CPU_GROUP);
    let flat = |rs: &[CpuRun]| -> Vec<ibfs_graph::Depth> {
        rs.iter().flat_map(|r| r.depths.iter().copied()).collect()
    };

    let repeat = cfg.repeat.max(1);
    // Best (highest-TEPS) pass out of `repeat`; outliers are downward.
    let best_of = |passes: &mut dyn FnMut() -> Vec<CpuRun>| -> Vec<CpuRun> {
        let teps_of = |rs: &[CpuRun]| -> f64 {
            let wall: f64 = rs.iter().map(|r| r.wall_seconds).sum();
            rs.iter().map(|r| r.traversed_edges).sum::<u64>() as f64 / wall.max(1e-12)
        };
        let mut best = passes();
        for _ in 1..repeat {
            let next = passes();
            if teps_of(&next) > teps_of(&best) {
                best = next;
            }
        }
        best
    };

    let mut runs = Vec::new();
    let mut speedups = Vec::new();
    for &threads in &cfg.threads {
        // Baseline: the frozen pre-pool path (64-wide u64 words).
        let baseline_runs = best_of(&mut || {
            sources
                .chunks(group_size.min(ibfs::cpu_baseline::BASELINE_GROUP))
                .map(|group| {
                    run_cpu_baseline(
                        &graph,
                        &reverse,
                        group,
                        DirectionPolicy::default(),
                        threads,
                        true,
                        false,
                        0,
                    )
                })
                .collect()
        });
        let b = summarize("baseline", ReorderKind::None, threads, &baseline_runs, 0);
        let baseline_teps = b.teps;
        runs.push(b);

        for &engine in &cfg.engines {
            for &reorder in &cfg.reorders {
                // One resident service per engine × ordering, pool + arena
                // (and the relabeled CSR) reused across the run's groups —
                // and across best-of repeats, which also warms the pool
                // before the counted passes. The relabel happens once at
                // build, so its cost is amortized exactly like a real
                // deployment's.
                let mut svc = CpuIbfs {
                    threads,
                    width: cfg.width,
                    engine,
                    tile_size: cfg.tile_size,
                    reorder,
                    ..Default::default()
                }
                .service(&graph, &reverse);
                if let Some(p) = &cfg.profiler {
                    svc.set_profiler(p.clone());
                }
                let mut pool_phases = 0;
                let engine_runs = best_of(&mut || {
                    let before = svc.stats().pool_phases;
                    let rs: Vec<CpuRun> = sources
                        .chunks(group_size)
                        .map(|group| {
                            svc.run_group(group).expect("bench groups are sized to capacity")
                        })
                        .collect();
                    // Phases per pass are identical across repeats (same
                    // plan, same groups), so the last pass's delta stands
                    // for all.
                    pool_phases = svc.stats().pool_phases - before;
                    rs
                });
                let what = format!("{engine}+{}", reorder.name());

                if cfg.check {
                    check_depths(&graph, &sources, &engine_runs, &what);
                    // With matching group boundaries the concatenated depth
                    // tables are comparable element-wise: all engines
                    // converge to the reference fixed point — and depths
                    // are invariant under relabeling, so the reordered rows
                    // must match the unreordered baseline bit for bit.
                    if group_size <= ibfs::cpu_baseline::BASELINE_GROUP {
                        assert_eq!(
                            flat(&baseline_runs),
                            flat(&engine_runs),
                            "{what} depths diverge from baseline at {threads} threads"
                        );
                    }
                }

                let e = summarize(engine.name(), reorder, threads, &engine_runs, pool_phases);
                speedups.push(CpuSpeedup {
                    engine: engine.name().to_string(),
                    reorder: reorder.name().to_string(),
                    threads: threads as u64,
                    baseline_teps,
                    engine_teps: e.teps,
                    speedup: e.teps / baseline_teps.max(1e-12),
                });
                runs.push(e);
            }
        }
    }

    let mut hub_gate = HubGateStatus::default();
    if cfg.check && cfg.engines.contains(&CpuEngine::Tiled) {
        let threads = cfg.threads.iter().copied().max().unwrap_or(2).max(2);
        // The gate always autotunes the tile size: it checks the tiling
        // *mechanism* under the plan a user would get by default, not the
        // experimental --tile-size override being swept above.
        let gate = run_hub_gate(threads, 0);
        eprintln!(
            "hub gate: pooled {:.0} TEPS, tiled {:.0} TEPS ({:.2}x) at {} threads",
            gate.pooled_teps,
            gate.tiled_teps,
            gate.tiled_teps / gate.pooled_teps.max(1e-12),
            gate.threads,
        );
        // Tiling wins by spreading one hub's edge list across lanes, which
        // needs lanes that actually run in parallel. On a single-core box
        // the lanes timeshare, the split buys nothing, and the per-tile
        // overhead shows up as a small loss — so the ordering is only
        // enforceable where the hardware can express it. Depth equality
        // (bit-identical results) is asserted inside the gate regardless.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        hub_gate = HubGateStatus {
            ran: true,
            enforced: cores >= 2,
            passed: gate.tiled_teps >= gate.pooled_teps,
            threads: gate.threads as u64,
            pooled_teps: gate.pooled_teps,
            tiled_teps: gate.tiled_teps,
        };
        if cores >= 2 {
            assert!(
                gate.tiled_teps >= gate.pooled_teps,
                "hub-heavy tiling gate: tiled {:.0} TEPS < pooled {:.0} TEPS at {} threads",
                gate.tiled_teps,
                gate.pooled_teps,
                gate.threads,
            );
        } else {
            eprintln!("hub gate: single-core host, TEPS ordering reported but not enforced");
        }
    }

    let mut reorder_gate = ReorderGateStatus::never_ran();
    let gate_kind = cfg
        .reorders
        .iter()
        .copied()
        .find(|&k| k == ReorderKind::HubCluster)
        .or_else(|| cfg.reorders.iter().copied().find(|&k| k != ReorderKind::None));
    if let (true, Some(kind)) =
        (cfg.check && cfg.engines.contains(&CpuEngine::Tiled), gate_kind)
    {
        let threads = cfg.threads.iter().copied().max().unwrap_or(2).max(2);
        let gate = run_reorder_gate(threads, kind);
        eprintln!(
            "reorder gate: tiled {:.0} TEPS, tiled+{} {:.0} TEPS ({:.2}x) at {} threads",
            gate.tiled_teps,
            kind.name(),
            gate.reordered_teps,
            gate.reordered_teps / gate.tiled_teps.max(1e-12),
            gate.threads,
        );
        // Reordering wins by turning scattered status-word and CSR probes
        // into sequential ones — a cache effect that only shows when lanes
        // genuinely contend for memory. Single-core timeshared lanes blur
        // it below the relabeling overhead, so (exactly like the hub gate)
        // the TEPS ordering is enforced only where the hardware can express
        // it; bit-identical depths are asserted inside the gate regardless.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        reorder_gate = ReorderGateStatus {
            ran: true,
            enforced: cores >= 2,
            passed: gate.reordered_teps >= gate.tiled_teps,
            reorder: kind.name().to_string(),
            threads: gate.threads as u64,
            tiled_teps: gate.tiled_teps,
            reordered_teps: gate.reordered_teps,
        };
        if cores >= 2 {
            assert!(
                gate.reordered_teps >= gate.tiled_teps,
                "reorder locality gate: tiled+{} {:.0} TEPS < tiled {:.0} TEPS at {} threads",
                kind.name(),
                gate.reordered_teps,
                gate.tiled_teps,
                gate.threads,
            );
        } else {
            eprintln!("reorder gate: single-core host, TEPS ordering reported but not enforced");
        }
    }

    CpuBenchReport {
        schema_version: SCHEMA_VERSION,
        graph: "rmat".to_string(),
        scale: cfg.scale as u64,
        edge_factor: cfg.edge_factor as u64,
        seed: cfg.seed,
        num_vertices: n as u64,
        num_edges: graph.num_edges() as u64,
        sources: sources.len() as u64,
        group_size: group_size as u64,
        width_bits: cfg.width.bits() as u64,
        tile_size: cfg.tile_size as u64,
        runs,
        speedups,
        hub_gate,
        reorder_gate,
    }
}

/// Result of the hub-heavy tiling gate (see [`run_hub_gate`]).
#[derive(Clone, Copy, Debug)]
pub struct HubGateResult {
    /// Threads both engines ran with.
    pub threads: usize,
    /// Best-of-N pooled TEPS.
    pub pooled_teps: f64,
    /// Best-of-N tiled TEPS.
    pub tiled_teps: f64,
}

/// The adversarial workload where edge tiling must win: a seeded hub-heavy
/// graph whose hub vertex owns the large majority of all directed edges.
/// Vertex-granular stealing serializes that edge list on one lane while
/// the others starve; tiles split it across the pool. The policy is pinned
/// to top-down (bottom-up is vertex-granular in both engines and would
/// dilute the signal into a coin flip). Both engines run the same group
/// best-of-5 (wall-clock noise damping) on a resident service; depths are
/// asserted identical before any timing is compared.
pub fn run_hub_gate(threads: usize, tile_size: usize) -> HubGateResult {
    // Hub degree 64*(n-1) vs ~3 per other vertex: the hub owns ~95% of
    // all edges, and it is itself a source, so the imbalanced scan happens
    // at level 0 while the other lanes have almost nothing. Keeping n
    // small makes the per-level O(n) costs (frontier rebuild, depth
    // recording) — identical in both engines — a sliver of the wall
    // time, so the gate measures the hub scan itself.
    let graph = hub_heavy(4_000, 64, 42);
    let reverse = graph.reverse();
    let sources: Vec<VertexId> = (0..32).collect();
    let mut best = [0.0f64; 2];
    let mut depths: [Option<Vec<ibfs_graph::Depth>>; 2] = [None, None];
    for (i, engine) in [CpuEngine::Pooled, CpuEngine::Tiled].into_iter().enumerate() {
        let mut svc = CpuIbfs {
            threads,
            engine,
            tile_size,
            policy: DirectionPolicy::top_down_only(),
            ..Default::default()
        }
        .service(&graph, &reverse);
        for _ in 0..5 {
            let run = svc.run_group(&sources).expect("gate group fits capacity");
            best[i] = best[i].max(run.teps());
            match &depths[i] {
                None => depths[i] = Some(run.depths),
                Some(d) => assert_eq!(d, &run.depths, "{engine}: unstable depths"),
            }
        }
    }
    assert_eq!(depths[0], depths[1], "hub gate: tiled depths diverge from pooled");
    HubGateResult { threads, pooled_teps: best[0], tiled_teps: best[1] }
}

/// Result of the reorder locality gate (see [`run_reorder_gate`]).
#[derive(Clone, Copy, Debug)]
pub struct ReorderGateResult {
    /// Threads both services ran with.
    pub threads: usize,
    /// Best-of-N unreordered tiled TEPS.
    pub tiled_teps: f64,
    /// Best-of-N reordered tiled TEPS.
    pub reordered_teps: f64,
}

/// The workload where vertex reordering must pay: a scale-12 power-law
/// R-MAT whose natural labeling scatters each hub's neighbors across the
/// whole status-word array, so every top-down expansion of a hub walks the
/// bitmap in a random-access pattern. Clustering hubs with their neighbors
/// ([`ReorderKind::HubCluster`], or whichever ordering the sweep selected)
/// turns those probes sequential. Both services are resident (relabel cost
/// amortized at build, exactly as deployed), run the same 64-source group
/// best-of-5, and their depths are asserted bit-identical before any
/// timing is compared — a reordered *win* bought with a wrong answer must
/// never pass the gate.
pub fn run_reorder_gate(threads: usize, kind: ReorderKind) -> ReorderGateResult {
    let graph = rmat(12, 8, RmatParams::graph500(), 42);
    let reverse = graph.reverse();
    let sources: Vec<VertexId> = (0..64).collect();
    let mut best = [0.0f64; 2];
    let mut depths: [Option<Vec<ibfs_graph::Depth>>; 2] = [None, None];
    for (i, reorder) in [ReorderKind::None, kind].into_iter().enumerate() {
        let mut svc = CpuIbfs {
            threads,
            width: WordWidth::W64,
            engine: CpuEngine::Tiled,
            reorder,
            ..Default::default()
        }
        .service(&graph, &reverse);
        for _ in 0..5 {
            let run = svc.run_group(&sources).expect("gate group fits capacity");
            best[i] = best[i].max(run.teps());
            match &depths[i] {
                None => depths[i] = Some(run.depths),
                Some(d) => assert_eq!(d, &run.depths, "reorder={reorder}: unstable depths"),
            }
        }
    }
    assert_eq!(
        depths[0], depths[1],
        "reorder gate: {kind} depths diverge from the unreordered run"
    );
    ReorderGateResult { threads, tiled_teps: best[0], reordered_teps: best[1] }
}

/// Validates a serialized report: parses it back through the in-tree JSON
/// codec and checks schema invariants. Returns a description of the first
/// violation.
pub fn validate_report_json(text: &str) -> Result<CpuBenchReport, String> {
    let json = ibfs_util::json::Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let report =
        CpuBenchReport::from_json(&json).map_err(|e| format!("schema mismatch: {e}"))?;
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    if report.runs.is_empty() {
        return Err("no runs recorded".to_string());
    }
    let mut baselines = 0usize;
    for run in &report.runs {
        if run.engine != "baseline" && CpuEngine::parse(&run.engine).is_none() {
            return Err(format!("unknown engine {:?}", run.engine));
        }
        if ReorderKind::parse(&run.reorder).is_none() {
            return Err(format!("unknown reorder {:?}", run.reorder));
        }
        if run.engine == "baseline" {
            if run.reorder != ReorderKind::None.name() {
                return Err(format!(
                    "baseline run claims reorder {:?} (the frozen baseline never reorders)",
                    run.reorder
                ));
            }
            baselines += 1;
        }
        // A reordered row is only interpretable against the same engine ×
        // thread-count row in its *natural* ordering — a report that ships
        // reordered TEPS without the unreordered control is unfalsifiable.
        if run.engine != "baseline" && run.reorder != ReorderKind::None.name() {
            let has_control = report.runs.iter().any(|r| {
                r.engine == run.engine
                    && r.threads == run.threads
                    && r.reorder == ReorderKind::None.name()
            });
            if !has_control {
                return Err(format!(
                    "reordered run {}+{}@{}t has no reorder=\"none\" control row",
                    run.engine, run.reorder, run.threads
                ));
            }
        }
        if run.threads == 0 || run.wall_seconds <= 0.0 || run.traversed_edges == 0 {
            return Err(format!(
                "degenerate run: engine={} threads={} wall={} edges={}",
                run.engine, run.threads, run.wall_seconds, run.traversed_edges
            ));
        }
        // `levels` sums across groups; `level_seconds` is element-wise
        // merged, so its length is the deepest group's level count. (The
        // async engine is a single phase: one entry per group.)
        let deepest = run.level_seconds.len() as u64;
        if deepest == 0 || deepest > run.levels || deepest * run.groups < run.levels {
            return Err(format!(
                "level_seconds has {} entries for {} levels over {} groups",
                run.level_seconds.len(),
                run.levels,
                run.groups
            ));
        }
    }
    if baselines == 0 {
        return Err("no baseline runs recorded".to_string());
    }
    // One baseline per thread count, one speedup per measured-engine run.
    if report.speedups.len() + baselines != report.runs.len() {
        return Err(format!(
            "{} speedups + {} baselines != {} runs (one speedup per engine run expected)",
            report.speedups.len(),
            baselines,
            report.runs.len()
        ));
    }
    for s in &report.speedups {
        if CpuEngine::parse(&s.engine).is_none() {
            return Err(format!("speedup for unknown engine {:?}", s.engine));
        }
        if ReorderKind::parse(&s.reorder).is_none() {
            return Err(format!("speedup for unknown reorder {:?}", s.reorder));
        }
    }
    let hg = &report.hub_gate;
    if hg.enforced && !hg.ran {
        return Err("hub_gate claims enforced without having run".to_string());
    }
    if hg.enforced && !hg.passed {
        return Err(format!(
            "hub_gate enforced but failed: tiled {:.0} TEPS < pooled {:.0} TEPS",
            hg.tiled_teps, hg.pooled_teps
        ));
    }
    if hg.ran && (hg.threads == 0 || hg.pooled_teps <= 0.0 || hg.tiled_teps <= 0.0) {
        return Err(format!(
            "hub_gate ran with degenerate measurements: threads={} pooled={} tiled={}",
            hg.threads, hg.pooled_teps, hg.tiled_teps
        ));
    }
    let rg = &report.reorder_gate;
    if ReorderKind::parse(&rg.reorder).is_none() {
        return Err(format!("reorder_gate names unknown reorder {:?}", rg.reorder));
    }
    if rg.enforced && !rg.ran {
        return Err("reorder_gate claims enforced without having run".to_string());
    }
    if rg.enforced && !rg.passed {
        return Err(format!(
            "reorder_gate enforced but failed: tiled+{} {:.0} TEPS < tiled {:.0} TEPS",
            rg.reorder, rg.reordered_teps, rg.tiled_teps
        ));
    }
    if rg.ran
        && (rg.threads == 0
            || rg.tiled_teps <= 0.0
            || rg.reordered_teps <= 0.0
            || rg.reorder == ReorderKind::None.name())
    {
        return Err(format!(
            "reorder_gate ran with degenerate measurements: reorder={} threads={} tiled={} reordered={}",
            rg.reorder, rg.threads, rg.tiled_teps, rg.reordered_teps
        ));
    }
    Ok(report)
}

/// Serializes the report as pretty JSON.
pub fn report_to_json(report: &CpuBenchReport) -> String {
    let mut s = report.to_json().to_string_pretty();
    s.push('\n');
    s
}

/// Quick human-readable summary printed after a run.
pub fn report_summary(report: &CpuBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cpu-bench: rmat scale={} ef={} seed={} | {} vertices, {} edges, {} sources, groups of {}, {}-bit words, tile {}",
        report.scale,
        report.edge_factor,
        report.seed,
        report.num_vertices,
        report.num_edges,
        report.sources,
        report.group_size,
        report.width_bits,
        if report.tile_size == 0 { "auto".to_string() } else { report.tile_size.to_string() },
    );
    for s in &report.speedups {
        let label = if s.reorder == "none" {
            s.engine.clone()
        } else {
            format!("{}+{}", s.engine, s.reorder)
        };
        let _ = writeln!(
            out,
            "  threads={:<2} baseline {:>12.0} TEPS | {:<10} {:>12.0} TEPS | speedup {:.2}x",
            s.threads, s.baseline_teps, label, s.engine_teps, s.speedup
        );
    }
    if report.reorder_gate.ran {
        let rg = &report.reorder_gate;
        let _ = writeln!(
            out,
            "  reorder gate [{}]: tiled {:.0} TEPS | tiled+{} {:.0} TEPS ({:.2}x, {})",
            if rg.enforced { "enforced" } else { "report-only" },
            rg.tiled_teps,
            rg.reorder,
            rg.reordered_teps,
            rg.reordered_teps / rg.tiled_teps.max(1e-12),
            if rg.passed { "passed" } else { "behind" },
        );
    }
    out
}

/// `DEPTH_UNVISITED` re-exported so binaries do not need ibfs-graph
/// directly for sanity checks.
pub const UNVISITED: ibfs_graph::Depth = DEPTH_UNVISITED;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CpuBenchConfig {
        CpuBenchConfig {
            scale: 8,
            edge_factor: 8,
            seed: 7,
            sources: 20,
            group_size: 16,
            threads: vec![1, 2],
            check: true,
            ..CpuBenchConfig::default()
        }
    }

    #[test]
    fn bench_report_round_trips_and_validates() {
        let report = run_cpu_bench(&tiny_config());
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.speedups.len(), 2);
        let text = report_to_json(&report);
        let parsed = validate_report_json(&text).expect("schema-valid");
        assert_eq!(parsed.num_vertices, report.num_vertices);
        assert_eq!(parsed.runs.len(), 4);
        assert!(report_summary(&parsed).contains("threads=1"));
        assert!(report_summary(&parsed).contains("pooled"));
    }

    #[test]
    fn multi_engine_sweep_checks_and_validates() {
        // All three round-2 engines against the baseline at two thread
        // counts, depths checked against reference_bfs inside the run.
        let report = run_cpu_bench(&CpuBenchConfig {
            engines: vec![CpuEngine::Pooled, CpuEngine::Tiled, CpuEngine::Async],
            tile_size: 64,
            ..tiny_config()
        });
        // 2 thread counts x (1 baseline + 3 engines).
        assert_eq!(report.runs.len(), 8);
        assert_eq!(report.speedups.len(), 6);
        for name in ["baseline", "pooled", "tiled", "async"] {
            assert!(report.runs.iter().any(|r| r.engine == name), "missing {name}");
        }
        let parsed = validate_report_json(&report_to_json(&report)).expect("schema-valid");
        assert_eq!(parsed.tile_size, 64);
        // Async runs are a single phase per group.
        let a = report.runs.iter().find(|r| r.engine == "async").unwrap();
        assert_eq!(a.levels, a.groups);
        // check + tiled in the sweep means the hub gate ran and recorded
        // live rates (enforcement depends on the host's core count).
        assert!(parsed.hub_gate.ran);
        assert!(parsed.hub_gate.pooled_teps > 0.0 && parsed.hub_gate.tiled_teps > 0.0);
        assert!(parsed.hub_gate.threads >= 2);
    }

    #[test]
    fn profiler_attaches_to_every_engine_service() {
        let prof = ibfs_obs::EngineProfiler::shared();
        let report = run_cpu_bench(&CpuBenchConfig {
            engines: vec![CpuEngine::Pooled, CpuEngine::Tiled, CpuEngine::Async],
            threads: vec![2],
            check: false,
            profiler: Some(prof.clone()),
            ..tiny_config()
        });
        assert_eq!(report.runs.len(), 4);
        let prof_report = prof.report("cpu-bench");
        prof_report.validate().expect("profile validates");
        let phases = prof_report.phases();
        use ibfs_obs::ProfPhase;
        for phase in [ProfPhase::TopDownExpand, ProfPhase::AsyncDrain, ProfPhase::QueueBuild] {
            assert!(phases.contains(&phase), "profiled bench missing {phase:?}");
        }
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let report = run_cpu_bench(&CpuBenchConfig {
            threads: vec![1],
            check: false,
            ..tiny_config()
        });
        let good = report_to_json(&report);
        assert!(validate_report_json(&good).is_ok());
        assert!(validate_report_json("{}").is_err());
        assert!(validate_report_json("not json").is_err());
        let wrong_version = good.replace("\"schema_version\": 4", "\"schema_version\": 99");
        assert!(validate_report_json(&wrong_version).unwrap_err().contains("schema_version"));
        let wrong_engine = good.replace("\"engine\": \"pooled\"", "\"engine\": \"cuda\"");
        assert!(validate_report_json(&wrong_engine).unwrap_err().contains("unknown engine"));
        // check:false means the gate never ran — claiming enforcement over
        // a gate that never ran is a forged document.
        let forged_gate = good.replace("\"enforced\": false", "\"enforced\": true");
        assert!(validate_report_json(&forged_gate).unwrap_err().contains("hub_gate"));
    }

    #[test]
    fn wide_width_runs_fewer_groups() {
        let cfg = CpuBenchConfig {
            scale: 8,
            edge_factor: 8,
            seed: 7,
            sources: 100,
            group_size: 256,
            threads: vec![1],
            width: WordWidth::W256,
            check: true,
            ..CpuBenchConfig::default()
        };
        let report = run_cpu_bench(&cfg);
        let pooled = report.runs.iter().find(|r| r.engine == "pooled").unwrap();
        // 100 sources in one 256-wide group; the 64-wide baseline needs 2.
        assert_eq!(pooled.groups, 1);
        let baseline = report.runs.iter().find(|r| r.engine == "baseline").unwrap();
        assert_eq!(baseline.groups, 2);
    }

    #[test]
    fn reorder_sweep_adds_rows_checks_depths_and_validates() {
        // Two engines × two orderings at one thread count: 1 baseline +
        // 2×2 engine rows, every reordered row checked bit-identical to
        // the baseline inside the run (check: true).
        let report = run_cpu_bench(&CpuBenchConfig {
            engines: vec![CpuEngine::Pooled, CpuEngine::Async],
            reorders: vec![ReorderKind::None, ReorderKind::HubCluster],
            threads: vec![2],
            ..tiny_config()
        });
        assert_eq!(report.runs.len(), 5);
        assert_eq!(report.speedups.len(), 4);
        for (engine, reorder) in
            [("pooled", "none"), ("pooled", "hub"), ("async", "none"), ("async", "hub")]
        {
            assert!(
                report.runs.iter().any(|r| r.engine == engine && r.reorder == reorder),
                "missing {engine}+{reorder}"
            );
        }
        assert!(report.runs.iter().all(|r| r.engine != "baseline" || r.reorder == "none"));
        // No tiled engine in the sweep: the locality gate stays idle.
        assert!(!report.reorder_gate.ran);
        let parsed = validate_report_json(&report_to_json(&report)).expect("schema-valid");
        assert!(report_summary(&parsed).contains("pooled+hub"));
    }

    #[test]
    fn reorder_gate_runs_with_tiled_and_a_live_ordering() {
        let report = run_cpu_bench(&CpuBenchConfig {
            engines: vec![CpuEngine::Tiled],
            reorders: vec![ReorderKind::None, ReorderKind::HubCluster],
            threads: vec![2],
            ..tiny_config()
        });
        let rg = &report.reorder_gate;
        assert!(rg.ran);
        assert_eq!(rg.reorder, "hub");
        assert!(rg.threads >= 2);
        assert!(rg.tiled_teps > 0.0 && rg.reordered_teps > 0.0);
        validate_report_json(&report_to_json(&report)).expect("schema-valid");
    }

    #[test]
    fn validator_rejects_reordered_rows_without_their_control() {
        let mut report = run_cpu_bench(&CpuBenchConfig {
            threads: vec![1],
            check: false,
            ..tiny_config()
        });
        // Relabel the only pooled row as a hub-reordered measurement: the
        // unreordered control disappears and the document is no longer
        // interpretable as a locality comparison.
        let row = report.runs.iter_mut().find(|r| r.engine == "pooled").unwrap();
        row.reorder = "hub".to_string();
        let err = validate_report_json(&report_to_json(&report)).unwrap_err();
        assert!(err.contains("control"), "got: {err}");
        // A baseline row claiming an ordering is equally forged.
        let mut report2 = run_cpu_bench(&CpuBenchConfig {
            threads: vec![1],
            check: false,
            ..tiny_config()
        });
        report2.runs.iter_mut().find(|r| r.engine == "baseline").unwrap().reorder =
            "rcm".to_string();
        let err2 = validate_report_json(&report_to_json(&report2)).unwrap_err();
        assert!(err2.contains("baseline"), "got: {err2}");
    }

    #[test]
    fn hub_gate_reports_positive_rates_and_identical_depths() {
        // The depth assertion lives inside run_hub_gate; here we only pin
        // that both rates are live. The TEPS ordering itself is enforced
        // under `cpu-bench --check` (ci.sh), not in unit tests, where
        // single-core CI boxes would make it flaky.
        let gate = run_hub_gate(2, 0);
        assert!(gate.pooled_teps > 0.0 && gate.tiled_teps > 0.0);
        assert_eq!(gate.threads, 2);
    }
}
