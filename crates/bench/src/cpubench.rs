//! `bfs cpu-bench`: the measured CPU-engine benchmark behind
//! `BENCH_cpu.json`.
//!
//! Runs a seeded fig22-style R-MAT workload through both the frozen
//! pre-pool baseline ([`ibfs::cpu_baseline::run_cpu_baseline`]) and the
//! pooled [`ibfs::cpu::CpuService`] at each requested thread count, and
//! reports TEPS, per-level wall times, and the pooled-vs-baseline speedup
//! curve. The emitted JSON is the repo's perf trajectory record: committed
//! once per perf PR so regressions are diffable.

use ibfs::cpu::{CpuIbfs, CpuRun};
use ibfs::cpu_baseline::run_cpu_baseline;
use ibfs::direction::DirectionPolicy;
use ibfs::word::WordWidth;
use ibfs_graph::generators::{rmat, RmatParams};
use ibfs_graph::validate::reference_bfs;
use ibfs_graph::{Csr, VertexId, DEPTH_UNVISITED};
use ibfs_util::json::{FromJson, ToJson};
use ibfs_util::json_struct;

/// Schema version stamped into `BENCH_cpu.json`.
pub const SCHEMA_VERSION: u64 = 1;

/// Workload configuration for the CPU benchmark.
#[derive(Clone, Debug)]
pub struct CpuBenchConfig {
    /// R-MAT scale (2^scale vertices).
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: u32,
    /// Generator seed.
    pub seed: u64,
    /// Number of BFS sources (the first `sources` vertices).
    pub sources: usize,
    /// Concurrent group size.
    pub group_size: usize,
    /// Thread counts to sweep (the scaling curve).
    pub threads: Vec<usize>,
    /// Pooled-engine status-word width.
    pub width: WordWidth,
    /// Verify pooled depths against `reference_bfs` and the baseline.
    pub check: bool,
}

impl Default for CpuBenchConfig {
    fn default() -> Self {
        CpuBenchConfig {
            scale: 12,
            edge_factor: 16,
            seed: 42,
            sources: 64,
            group_size: 64,
            threads: vec![1, 2, 4, 8],
            width: WordWidth::default(),
            check: false,
        }
    }
}

/// One engine × thread-count measurement.
#[derive(Clone, Debug)]
pub struct CpuBenchRun {
    /// `"baseline"` (pre-pool `run_cpu`) or `"pooled"` (`CpuService`).
    pub engine: String,
    /// Worker threads used.
    pub threads: u64,
    /// Total wall-clock seconds over all groups.
    pub wall_seconds: f64,
    /// Traversed directed edges over all groups.
    pub traversed_edges: u64,
    /// Traversal rate.
    pub teps: f64,
    /// Groups run.
    pub groups: u64,
    /// BFS levels run (summed over groups).
    pub levels: u64,
    /// Per-level wall seconds, element-wise summed across groups.
    pub level_seconds: Vec<f64>,
    /// Pool phases dispatched (0 for the baseline, which has no pool).
    pub pool_phases: u64,
}

json_struct!(CpuBenchRun {
    engine,
    threads,
    wall_seconds,
    traversed_edges,
    teps,
    groups,
    levels,
    level_seconds,
    pool_phases,
});

/// Pooled-vs-baseline comparison at one thread count.
#[derive(Clone, Debug)]
pub struct CpuSpeedup {
    /// Worker threads.
    pub threads: u64,
    /// Baseline TEPS.
    pub baseline_teps: f64,
    /// Pooled TEPS.
    pub pooled_teps: f64,
    /// `pooled_teps / baseline_teps`.
    pub speedup: f64,
}

json_struct!(CpuSpeedup { threads, baseline_teps, pooled_teps, speedup });

/// The full `BENCH_cpu.json` document.
#[derive(Clone, Debug)]
pub struct CpuBenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Workload name (`"rmat"`).
    pub graph: String,
    /// R-MAT scale.
    pub scale: u64,
    /// Edges per vertex.
    pub edge_factor: u64,
    /// Generator seed.
    pub seed: u64,
    /// Vertices in the generated graph.
    pub num_vertices: u64,
    /// Directed edges in the generated graph.
    pub num_edges: u64,
    /// BFS sources.
    pub sources: u64,
    /// Concurrent group size.
    pub group_size: u64,
    /// Pooled-engine status-word width in bits.
    pub width_bits: u64,
    /// Every engine × thread-count measurement.
    pub runs: Vec<CpuBenchRun>,
    /// The thread-scaling speedup curve.
    pub speedups: Vec<CpuSpeedup>,
}

json_struct!(CpuBenchReport {
    schema_version,
    graph,
    scale,
    edge_factor,
    seed,
    num_vertices,
    num_edges,
    sources,
    group_size,
    width_bits,
    runs,
    speedups,
});

fn summarize(engine: &str, threads: usize, runs: &[CpuRun], pool_phases: u64) -> CpuBenchRun {
    let wall: f64 = runs.iter().map(|r| r.wall_seconds).sum();
    let edges: u64 = runs.iter().map(|r| r.traversed_edges).sum();
    let mut level_seconds: Vec<f64> = Vec::new();
    for r in runs {
        if level_seconds.len() < r.level_seconds.len() {
            level_seconds.resize(r.level_seconds.len(), 0.0);
        }
        for (acc, &s) in level_seconds.iter_mut().zip(&r.level_seconds) {
            *acc += s;
        }
    }
    CpuBenchRun {
        engine: engine.to_string(),
        threads: threads as u64,
        wall_seconds: wall,
        traversed_edges: edges,
        teps: edges as f64 / wall.max(1e-12),
        groups: runs.len() as u64,
        levels: runs.iter().map(|r| r.level_seconds.len() as u64).sum(),
        level_seconds,
        pool_phases,
    }
}

fn check_depths(graph: &Csr, sources: &[VertexId], runs: &[CpuRun], what: &str) {
    let mut idx = 0;
    for run in runs {
        for j in 0..run.num_instances {
            let s = sources[idx];
            let want = reference_bfs(graph, s);
            assert_eq!(
                run.instance_depths(j),
                &want[..],
                "{what}: depths diverge from reference_bfs at source {s}"
            );
            idx += 1;
        }
    }
    assert_eq!(idx, sources.len(), "{what}: runs cover every source");
}

/// Runs the benchmark and builds the report. With `cfg.check`, pooled
/// depths are asserted bit-identical to both `reference_bfs` and the
/// baseline engine at every thread count.
pub fn run_cpu_bench(cfg: &CpuBenchConfig) -> CpuBenchReport {
    let graph = rmat(cfg.scale, cfg.edge_factor as usize, RmatParams::graph500(), cfg.seed);
    let reverse = graph.reverse();
    let n = graph.num_vertices();
    let sources: Vec<VertexId> = (0..cfg.sources.min(n) as VertexId).collect();
    let group_size = cfg.group_size.min(cfg.width.bits() as usize).min(ibfs::cpu::CPU_GROUP);

    let mut runs = Vec::new();
    let mut speedups = Vec::new();
    for &threads in &cfg.threads {
        // Baseline: the frozen pre-pool path (64-wide u64 words).
        let baseline_runs: Vec<CpuRun> = sources
            .chunks(group_size.min(ibfs::cpu_baseline::BASELINE_GROUP))
            .map(|group| {
                run_cpu_baseline(
                    &graph,
                    &reverse,
                    group,
                    DirectionPolicy::default(),
                    threads,
                    true,
                    false,
                    0,
                )
            })
            .collect();

        // Pooled: one resident service, pool + arena reused across groups.
        let mut svc = CpuIbfs { threads, width: cfg.width, ..Default::default() }
            .service(&graph, &reverse);
        let pooled_runs: Vec<CpuRun> = sources
            .chunks(group_size)
            .map(|group| svc.run_group(group).expect("bench groups are sized to capacity"))
            .collect();
        let pool_phases = svc.stats().pool_phases;

        if cfg.check {
            check_depths(&graph, &sources, &pooled_runs, "pooled");
            let flat = |rs: &[CpuRun]| -> Vec<ibfs_graph::Depth> {
                rs.iter().flat_map(|r| r.depths.iter().copied()).collect()
            };
            // With matching group boundaries the concatenated depth tables
            // are comparable element-wise.
            if group_size <= ibfs::cpu_baseline::BASELINE_GROUP {
                assert_eq!(
                    flat(&baseline_runs),
                    flat(&pooled_runs),
                    "pooled depths diverge from baseline at {threads} threads"
                );
            }
        }

        let b = summarize("baseline", threads, &baseline_runs, 0);
        let p = summarize("pooled", threads, &pooled_runs, pool_phases);
        speedups.push(CpuSpeedup {
            threads: threads as u64,
            baseline_teps: b.teps,
            pooled_teps: p.teps,
            speedup: p.teps / b.teps.max(1e-12),
        });
        runs.push(b);
        runs.push(p);
    }

    CpuBenchReport {
        schema_version: SCHEMA_VERSION,
        graph: "rmat".to_string(),
        scale: cfg.scale as u64,
        edge_factor: cfg.edge_factor as u64,
        seed: cfg.seed,
        num_vertices: n as u64,
        num_edges: graph.num_edges() as u64,
        sources: sources.len() as u64,
        group_size: group_size as u64,
        width_bits: cfg.width.bits() as u64,
        runs,
        speedups,
    }
}

/// Validates a serialized report: parses it back through the in-tree JSON
/// codec and checks schema invariants. Returns a description of the first
/// violation.
pub fn validate_report_json(text: &str) -> Result<CpuBenchReport, String> {
    let json = ibfs_util::json::Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let report =
        CpuBenchReport::from_json(&json).map_err(|e| format!("schema mismatch: {e}"))?;
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {} != {SCHEMA_VERSION}",
            report.schema_version
        ));
    }
    if report.runs.is_empty() {
        return Err("no runs recorded".to_string());
    }
    for run in &report.runs {
        if run.engine != "baseline" && run.engine != "pooled" {
            return Err(format!("unknown engine {:?}", run.engine));
        }
        if run.threads == 0 || run.wall_seconds <= 0.0 || run.traversed_edges == 0 {
            return Err(format!(
                "degenerate run: engine={} threads={} wall={} edges={}",
                run.engine, run.threads, run.wall_seconds, run.traversed_edges
            ));
        }
        // `levels` sums across groups; `level_seconds` is element-wise
        // merged, so its length is the deepest group's level count.
        let deepest = run.level_seconds.len() as u64;
        if deepest == 0 || deepest > run.levels || deepest * run.groups < run.levels {
            return Err(format!(
                "level_seconds has {} entries for {} levels over {} groups",
                run.level_seconds.len(),
                run.levels,
                run.groups
            ));
        }
    }
    if report.speedups.len() * 2 != report.runs.len() {
        return Err("one speedup entry per thread count expected".to_string());
    }
    Ok(report)
}

/// Serializes the report as pretty JSON.
pub fn report_to_json(report: &CpuBenchReport) -> String {
    let mut s = report.to_json().to_string_pretty();
    s.push('\n');
    s
}

/// Quick human-readable summary printed after a run.
pub fn report_summary(report: &CpuBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cpu-bench: rmat scale={} ef={} seed={} | {} vertices, {} edges, {} sources, groups of {}, {}-bit words",
        report.scale,
        report.edge_factor,
        report.seed,
        report.num_vertices,
        report.num_edges,
        report.sources,
        report.group_size,
        report.width_bits,
    );
    for s in &report.speedups {
        let _ = writeln!(
            out,
            "  threads={:<2} baseline {:>12.0} TEPS | pooled {:>12.0} TEPS | speedup {:.2}x",
            s.threads, s.baseline_teps, s.pooled_teps, s.speedup
        );
    }
    out
}

/// `DEPTH_UNVISITED` re-exported so binaries do not need ibfs-graph
/// directly for sanity checks.
pub const UNVISITED: ibfs_graph::Depth = DEPTH_UNVISITED;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CpuBenchConfig {
        CpuBenchConfig {
            scale: 8,
            edge_factor: 8,
            seed: 7,
            sources: 20,
            group_size: 16,
            threads: vec![1, 2],
            width: WordWidth::default(),
            check: true,
        }
    }

    #[test]
    fn bench_report_round_trips_and_validates() {
        let report = run_cpu_bench(&tiny_config());
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.speedups.len(), 2);
        let text = report_to_json(&report);
        let parsed = validate_report_json(&text).expect("schema-valid");
        assert_eq!(parsed.num_vertices, report.num_vertices);
        assert_eq!(parsed.runs.len(), 4);
        assert!(report_summary(&parsed).contains("threads=1"));
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let report = run_cpu_bench(&CpuBenchConfig {
            threads: vec![1],
            check: false,
            ..tiny_config()
        });
        let good = report_to_json(&report);
        assert!(validate_report_json(&good).is_ok());
        assert!(validate_report_json("{}").is_err());
        assert!(validate_report_json("not json").is_err());
        let wrong_version = good.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(validate_report_json(&wrong_version).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn wide_width_runs_fewer_groups() {
        let cfg = CpuBenchConfig {
            scale: 8,
            edge_factor: 8,
            seed: 7,
            sources: 100,
            group_size: 256,
            threads: vec![1],
            width: WordWidth::W256,
            check: true,
        };
        let report = run_cpu_bench(&cfg);
        let pooled = report.runs.iter().find(|r| r.engine == "pooled").unwrap();
        // 100 sources in one 256-wide group; the 64-wide baseline needs 2.
        assert_eq!(pooled.groups, 1);
        let baseline = report.runs.iter().find(|r| r.engine == "baseline").unwrap();
        assert_eq!(baseline.groups, 2);
    }
}
