//! Figure 19: global load transactions per warp request — naive private
//! traversal vs joint traversal.
//!
//! Paper shape: the joint status array coalesces contiguous threads'
//! status accesses, dropping from ~4 transactions per request to ~1.

use crate::result::f2;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// Runs the Figure 19 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig19",
        "Global load transactions per request: naive vs joint",
        &["graph", "naive", "joint"],
    );
    let grouping = GroupingStrategy::Random { seed: 23, group_size: cfg.group_size };
    let mut improved = 0usize;
    let mut graphs = 0usize;
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let tpr = |engine: EngineKind| {
            run_ibfs(&g, &r, &sources, &RunConfig {
                engine,
                grouping: grouping.clone(),
                ..Default::default()
            })
            .counters
            .load_transactions_per_request()
        };
        let naive = tpr(EngineKind::Naive);
        let joint = tpr(EngineKind::Joint);
        graphs += 1;
        if joint < naive {
            improved += 1;
        }
        out.push_row(vec![spec.name.to_string(), f2(naive), f2(joint)]);
    }
    out.note("paper: joint coalescing reduces ~4 loads per request to ~1".to_string());
    out.note(format!(
        "shape check (joint < naive on all but at most one graph): {} ({improved}/{graphs})",
        if improved + 1 >= graphs { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_coalesces_better() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
