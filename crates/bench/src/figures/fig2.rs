//! Figure 2: average frontier sharing percentage between two different BFS
//! instances, top-down vs bottom-up, for all 13 graphs.
//!
//! Paper shape: top-down sharing is small (≈4% on average), bottom-up
//! sharing is much larger (up to 48.6%).

use crate::result::f1;
use crate::{FigureResult, HarnessConfig};
use ibfs::sharing::average_pair_sharing;
use ibfs_graph::suite;

/// Number of random sources whose consecutive pairs are averaged.
const PAIR_SOURCES: usize = 16;

/// Runs the Figure 2 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig2",
        "Average frontier sharing percentage between two BFS instances",
        &["graph", "top-down %", "bottom-up %"],
    );
    let mut td_sum = 0.0;
    let mut bu_sum = 0.0;
    let mut count = 0usize;
    for spec in suite::suite() {
        let (g, _r) = cfg.load(&spec);
        // Deterministic pseudo-random sources spread over the id space.
        let n = g.num_vertices();
        let sources: Vec<_> = (0..PAIR_SOURCES.min(n))
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) % n as u64) as u32)
            .collect();
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.len() < 2 {
            continue;
        }
        let p = average_pair_sharing(&g, &dedup);
        td_sum += p.top_down_pct;
        bu_sum += p.bottom_up_pct;
        count += 1;
        out.push_row(vec![
            spec.name.to_string(),
            f1(p.top_down_pct),
            f1(p.bottom_up_pct),
        ]);
    }
    let td_avg = td_sum / count as f64;
    let bu_avg = bu_sum / count as f64;
    out.note(format!(
        "averages: top-down {:.1}%, bottom-up {:.1}% (paper: ~4% top-down, up to 48.6% bottom-up)",
        td_avg, bu_avg
    ));
    out.note(format!(
        "shape check (bottom-up >> top-down): {}",
        if bu_avg > td_avg { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_up_sharing_dominates() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")));
    }
}
