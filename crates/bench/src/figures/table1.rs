//! Table 1: runtime of 3-hop reachability-index construction on FB, KG0,
//! OR and TW — MS-BFS, CPU-iBFS, B40C and GPU-iBFS.
//!
//! Paper shape: GPU-iBFS is 21× faster than B40C, 3.3× than MS-BFS and
//! 2.2× than CPU-iBFS. CPU columns are wall-clock, GPU columns simulated;
//! the within-platform orderings are the reproduction target.

use crate::{FigureResult, HarnessConfig};
use ibfs_apps::reachability::{IndexBuilder, ReachabilityIndex};
use ibfs_graph::suite;

/// Hop bound of the index (the paper builds 3-hop reachability).
pub const K: u32 = 3;

/// Runs the Table 1 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "table1",
        "3-hop reachability index build time (milliseconds)",
        &["graph", "MS-BFS", "CPU-iBFS", "B40C", "GPU-iBFS"],
    );
    let fmt = |s: f64| format!("{:.3}", s * 1e3);
    let mut gpu_wins = 0usize;
    let mut graphs = 0usize;
    for name in ["FB", "KG0", "OR", "TW"] {
        let spec = suite::by_name(name).unwrap();
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let build = |builder: IndexBuilder| {
            ReachabilityIndex::build_with(
                &g,
                &r,
                &sources,
                K,
                builder,
                cfg.group_size,
                cfg.threads,
                cfg.width,
            )
            .seconds
        };
        let msbfs = build(IndexBuilder::CpuMsBfs);
        let cpu_ibfs = build(IndexBuilder::CpuIbfs);
        let b40c = build(IndexBuilder::GpuB40c);
        let gpu_ibfs = build(IndexBuilder::GpuIbfs);
        graphs += 1;
        if gpu_ibfs < b40c {
            gpu_wins += 1;
        }
        out.push_row(vec![
            name.to_string(),
            fmt(msbfs),
            fmt(cpu_ibfs),
            fmt(b40c),
            fmt(gpu_ibfs),
        ]);
    }
    out.note(
        "paper: GPU-iBFS 21x faster than B40C, 3.3x than MS-BFS, 2.2x than CPU-iBFS"
            .to_string(),
    );
    out.note(format!(
        "shape check (GPU-iBFS beats B40C on every graph): {} ({gpu_wins}/{graphs})",
        if gpu_wins == graphs { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_build_comparison_runs() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 4);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
