//! Figure 20: speedup of iBFS's bitwise operation over the MS-BFS-style
//! bitwise baseline ([26]), under random grouping and under GroupBy.
//!
//! Paper shape: ~1.4× with random groups, ~2.6× with GroupBy — the extra
//! improvement comes from early termination paying off when grouped
//! instances complete together.

use crate::result::f2;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// Runs the Figure 20 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig20",
        "Speedup of iBFS bitwise over MS-BFS-style bitwise [26]",
        &["graph", "random grouping", "GroupBy"],
    );
    let mut rnd_sum = 0.0;
    let mut grp_sum = 0.0;
    let mut graphs = 0usize;
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let seconds = |engine: EngineKind, strategy: &GroupingStrategy| {
            run_ibfs(&g, &r, &sources, &RunConfig {
                engine,
                grouping: strategy.clone(),
                ..Default::default()
            })
            .sim_seconds
        };
        let random = GroupingStrategy::Random { seed: 29, group_size: cfg.group_size };
        let grouped = GroupingStrategy::OutDegreeRules(
            GroupByConfig::default().with_group_size(cfg.group_size),
        );
        let speedup_random = seconds(EngineKind::BitwiseMsBfsStyle, &random)
            / seconds(EngineKind::Bitwise, &random);
        let speedup_grouped = seconds(EngineKind::BitwiseMsBfsStyle, &grouped)
            / seconds(EngineKind::Bitwise, &grouped);
        rnd_sum += speedup_random;
        grp_sum += speedup_grouped;
        graphs += 1;
        out.push_row(vec![
            spec.name.to_string(),
            f2(speedup_random),
            f2(speedup_grouped),
        ]);
    }
    let rnd = rnd_sum / graphs as f64;
    let grp = grp_sum / graphs as f64;
    out.note(format!(
        "mean speedup over MS-BFS style: random {rnd:.2}x (paper 1.4x), GroupBy {grp:.2}x \
         (paper up to 2.6x)"
    ));
    out.note(format!(
        "shape check (iBFS bitwise beats the [26] baseline on average): {}",
        if rnd > 1.0 && grp >= rnd * 0.95 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibfs_beats_msbfs_baseline() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
