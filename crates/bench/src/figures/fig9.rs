//! Figure 9: frontier sharing ratio, random grouping vs GroupBy, for
//! (a) top-down and (b) bottom-up levels, across all 13 graphs.
//!
//! Paper shape: GroupBy lifts top-down sharing ~10× (3.9% → 39.3% for
//! N = 128) and bottom-up sharing to ~66% (from an already-high 38.7%).

use crate::figures::util::run_groups;
use crate::result::f1;
use crate::{FigureResult, HarnessConfig};
use ibfs::direction::Direction;
use ibfs::engine::{EngineKind, GroupRun};
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs_graph::suite;

/// Mean sharing ratio (%) over levels of the given direction, weighted by
/// unique frontier count.
fn sharing_ratio_pct(runs: &[GroupRun], dir: Direction) -> f64 {
    let mut inst = 0u64;
    let mut uniq = 0u64;
    let mut n_inst = 0usize;
    for run in runs {
        n_inst = n_inst.max(run.num_instances);
        for l in &run.levels {
            if l.direction == dir {
                inst += l.instance_frontiers;
                uniq += l.unique_frontiers;
            }
        }
    }
    if uniq == 0 || n_inst == 0 {
        0.0
    } else {
        100.0 * (inst as f64 / uniq as f64) / n_inst as f64
    }
}

/// Runs the Figure 9 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig9",
        "Frontier sharing ratio: random vs GroupBy, top-down and bottom-up",
        &[
            "graph",
            "TD random %",
            "TD GroupBy %",
            "BU random %",
            "BU GroupBy %",
        ],
    );
    let mut improved_td = 0usize;
    let mut improved_bu = 0usize;
    let mut graphs = 0usize;
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let random = run_groups(
            &g,
            &r,
            &sources,
            &GroupingStrategy::Random { seed: 7, group_size: cfg.group_size },
            EngineKind::Bitwise,
        );
        let grouped = run_groups(
            &g,
            &r,
            &sources,
            &GroupingStrategy::OutDegreeRules(
                GroupByConfig::default().with_group_size(cfg.group_size),
            ),
            EngineKind::Bitwise,
        );
        let td_r = sharing_ratio_pct(&random, Direction::TopDown);
        let td_g = sharing_ratio_pct(&grouped, Direction::TopDown);
        let bu_r = sharing_ratio_pct(&random, Direction::BottomUp);
        let bu_g = sharing_ratio_pct(&grouped, Direction::BottomUp);
        graphs += 1;
        if td_g >= td_r {
            improved_td += 1;
        }
        if bu_g >= bu_r * 0.98 {
            improved_bu += 1;
        }
        out.push_row(vec![
            spec.name.to_string(),
            f1(td_r),
            f1(td_g),
            f1(bu_r),
            f1(bu_g),
        ]);
    }
    out.note(format!(
        "GroupBy improves top-down sharing on {improved_td}/{graphs} graphs, \
         bottom-up on {improved_bu}/{graphs} (paper: 10x top-down, 1.7x bottom-up)"
    ));
    out.note(format!(
        "shape check (GroupBy raises top-down sharing on most graphs): {}",
        if improved_td * 3 >= graphs * 2 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groupby_raises_sharing() {
        // A full 64-instance status word: the paper's effect is about
        // concurrent-instance sharing and is too weak at tiny's default
        // 32-instance groups to assert on every generator seed.
        let cfg = HarnessConfig { group_size: 64, ..HarnessConfig::tiny() };
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
