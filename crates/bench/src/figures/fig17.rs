//! Figure 17: scalability of bitwise iBFS from 1 to 112 GPUs on RD, FB,
//! OR, TW and RM.
//!
//! Paper shape: near-linear speedup (1.97× at 2 GPUs for RD, 85× average
//! at 112), with RD — the most balanced workload — scaling best, and
//! imbalance slowly eroding speedup as the device count approaches the
//! group count.

use crate::result::f1;
use crate::{FigureResult, HarnessConfig};
use ibfs_cluster::{run_cluster, ClusterConfig};
use ibfs_graph::suite;

/// GPU counts swept (the paper's x-axis ends at Stampede's 112 K20s).
pub const GPU_COUNTS: [usize; 6] = [1, 2, 4, 16, 64, 112];

/// Runs the Figure 17 scalability experiment.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let specs = suite::scalability_suite();
    let mut header = vec!["gpus".to_string()];
    header.extend(specs.iter().map(|s| format!("{} speedup", s.name)));
    let mut out = FigureResult::new(
        "fig17",
        "Multi-GPU speedup of bitwise iBFS (RD, FB, OR, TW, RM)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );

    let mut curves: Vec<Vec<f64>> = Vec::new();
    for spec in &specs {
        let (g, r) = cfg.load(spec);
        let sources = cfg.source_set(&g);
        let base = ClusterConfig {
            gpus: 1,
            grouping: ibfs::groupby::GroupingStrategy::Random {
                seed: 17,
                group_size: (cfg.group_size / 4).max(8),
            },
            ..Default::default()
        };
        let t1 = run_cluster(&g, &r, &sources, &base).makespan_seconds;
        let speedups: Vec<f64> = GPU_COUNTS
            .iter()
            .map(|&gpus| {
                let c = ClusterConfig { gpus, ..base.clone() };
                run_cluster(&g, &r, &sources, &c).speedup_vs(t1)
            })
            .collect();
        curves.push(speedups);
    }
    for (i, &gpus) in GPU_COUNTS.iter().enumerate() {
        let mut row = vec![gpus.to_string()];
        row.extend(curves.iter().map(|c| f1(c[i])));
        out.push_row(row);
    }
    // Shape checks: 2-GPU speedup near 2 for RD (curve 0), monotone
    // non-decreasing until saturation.
    let rd2 = curves[0][1];
    let avg_last: f64 = curves.iter().map(|c| c[GPU_COUNTS.len() - 1]).sum::<f64>()
        / curves.len() as f64;
    out.note(format!(
        "RD 2-GPU speedup {rd2:.2}x (paper 1.97x); mean speedup at {} GPUs {avg_last:.1}x",
        GPU_COUNTS[GPU_COUNTS.len() - 1]
    ));
    out.note(format!(
        "shape check (RD near-2x at 2 GPUs, speedup grows with GPUs): {}",
        if rd2 > 1.6 && avg_last > curves.iter().map(|c| c[1]).sum::<f64>() / curves.len() as f64 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_curves_produced() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), GPU_COUNTS.len());
        assert_eq!(r.rows[0].len(), 6);
    }
}
