//! Figure 6: per-level sharing degree of three groups on FB — a strong
//! GroupBy group (A), a weaker GroupBy group (B), and a random group.
//!
//! Paper shape (Theorem 1): the ordering of groups by early-level sharing
//! ratio persists across later levels; group A stays above B, B above
//! random.

use crate::figures::util::{run_groups, run_groups_with_grouping};
use crate::result::f2;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::{EngineKind, GroupRun};
use ibfs::groupby::GroupingStrategy;
use ibfs::sharing::per_level_sharing_degree;
use ibfs_graph::suite;

/// Sharing degree over "the first several levels" (Lemma 2): the best SD
/// among levels 2 and 3, where GroupBy's hub effect lands.
fn early_sd(run: &GroupRun) -> f64 {
    per_level_sharing_degree(run)
        .iter()
        .filter(|(level, _)| (2..=3).contains(level))
        .map(|&(_, sd)| sd)
        .fold(0.0, f64::max)
}

/// Runs the Figure 6 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let spec = suite::by_name("FB").unwrap();
    let (g, r) = cfg.load(&spec);
    let sources = cfg.source_set(&g);

    let strategy = GroupingStrategy::OutDegreeRules(
        ibfs::groupby::GroupByConfig::default().with_group_size(cfg.group_size),
    );
    let (grouping, mut grouped) = run_groups_with_grouping(&g, &r, &sources, &strategy, EngineKind::Bitwise);
    // Theorem 1's testable prediction: ranking same-size rule-formed groups
    // by their sharing degree over the first levels predicts their ranking
    // later (Lemma 2: and their speedups). A = best early SD, B = worst.
    grouped.truncate(grouping.rule_groups.max(1));
    grouped.retain(|run| run.num_instances == cfg.group_size);
    if grouped.len() < 2 {
        grouped = run_groups(&g, &r, &sources, &strategy, EngineKind::Bitwise);
    }
    grouped.sort_by(|a, b| early_sd(b).partial_cmp(&early_sd(a)).unwrap());
    assert!(!grouped.is_empty());
    let group_a = &grouped[0];
    let group_b = grouped.last().unwrap();

    // Lemma 1/2: a group's sharing degree equals its expected *speedup over
    // sequential execution of that same group*. Measure both speedups.
    let speedup_of = |run: &GroupRun| {
        let group: Vec<ibfs_graph::VertexId> = (0..run.num_instances)
            .map(|j| {
                // Recover the group's sources: depth-0 vertices.
                (0..run.num_vertices)
                    .find(|&v| run.depth_of(j, v as u32) == 0)
                    .unwrap() as u32
            })
            .collect();
        let engine = ibfs::sequential::SequentialEngine::default();
        let mut prof = ibfs_gpu_sim::Profiler::new(ibfs_gpu_sim::DeviceConfig::k40());
        let gg = ibfs::engine::GpuGraph::new(&g, &r, &mut prof);
        let seq = ibfs::engine::Engine::run_group(&engine, &gg, &group, &mut prof);
        seq.sim_seconds / run.sim_seconds
    };
    let speedup_a = speedup_of(group_a);
    let speedup_b = speedup_of(group_b);

    let random = run_groups(
        &g,
        &r,
        &sources,
        &GroupingStrategy::Random { seed: 11, group_size: cfg.group_size },
        EngineKind::Bitwise,
    );
    let group_r = &random[0];

    let series = [
        ("A", per_level_sharing_degree(group_a)),
        ("B", per_level_sharing_degree(group_b)),
        ("random", per_level_sharing_degree(group_r)),
    ];
    let max_level = series
        .iter()
        .flat_map(|(_, s)| s.iter().map(|&(l, _)| l))
        .max()
        .unwrap_or(0);

    let mut out = FigureResult::new(
        "fig6",
        "Sharing degree trend by level on FB (GroupBy groups A, B vs random)",
        &["level", "SD group A", "SD group B", "SD random"],
    );
    for level in 2..=max_level {
        let at = |s: &[(u32, f64)]| {
            s.iter()
                .find(|&&(l, _)| l == level)
                .map(|&(_, sd)| f2(sd))
                .unwrap_or_else(|| "-".into())
        };
        out.push_row(vec![
            level.to_string(),
            at(&series[0].1),
            at(&series[1].1),
            at(&series[2].1),
        ]);
    }
    let sd = |r: &GroupRun| r.sharing_degree();
    out.note(format!(
        "whole-run SD: A={:.2} B={:.2} random={:.2}; early SD: A={:.2} B={:.2}; \
         speedup over sequential: A={:.2}x B={:.2}x",
        sd(group_a),
        sd(group_b),
        sd(group_r),
        early_sd(group_a),
        early_sd(group_b),
        speedup_a,
        speedup_b
    ));
    // Lemma 1 models cost as edge inspections only; below ~2k vertices the
    // per-level scans and launch overheads it ignores dominate simulated
    // time, so the speedup clause is only meaningful at full scale.
    let speedup_meaningful = g.num_vertices() >= 2048;
    let holds = sd(group_a) >= sd(group_b) * 0.98
        && (!speedup_meaningful || speedup_a >= speedup_b * 0.95);
    out.note(format!(
        "shape check (Theorem 1 + Lemma 2: higher early SD => higher whole-run SD{}): {}",
        if speedup_meaningful {
            " and higher speedup over sequential"
        } else {
            "; speedup clause skipped at tiny scale"
        },
        if holds { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groupby_group_beats_random_group() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert!(!r.rows.is_empty());
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
