//! Sync-vs-async crossover: where the level barrier costs more than the
//! wasted relaxations (CPU engine round 2; no paper counterpart — this is
//! the repo's own ablation, see DESIGN.md "CPU engine round 2").
//!
//! The level-synchronous engines (pooled, tiled) pay three to four pool
//! barriers per BFS level; the asynchronous engine pays repeated
//! relaxations instead. On a DIMACS-style mesh — O(√n) levels of tiny
//! frontiers — barrier cost dominates and async should win. On an R-MAT
//! graph — a handful of fat levels where direction-optimizing bottom-up
//! does most of the work — the synchronous engines should win. Both
//! engines run the same sources through resident services; wall-clock
//! TEPS is the measure, and the expected ordering is reported as a shape
//! check, not asserted (single-core CI boxes invert wall-clock orderings).

use crate::result::gteps;
use crate::{FigureResult, HarnessConfig};
use ibfs::cpu::{run_cpu_many, CpuEngine, CpuIbfs};
use ibfs_graph::generators::{grid2d, rmat, RmatParams};
use ibfs_graph::Csr;

/// Runs the crossover comparison.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "crossover",
        "sync vs async CPU engines (GTEPS, wall-clock): mesh vs R-MAT",
        &["graph", "diameter-ish", "pooled", "tiled", "async", "fastest"],
    );
    // Mesh side and R-MAT scale track the harness shrink so the tiny
    // config stays test-sized while the default is a real measurement.
    let side = (360usize >> cfg.shrink).max(12);
    let scale = 14u32.saturating_sub(cfg.shrink).max(8);
    let graphs: Vec<(String, Csr)> = vec![
        (format!("mesh {side}x{side}"), grid2d(side, side)),
        (format!("rmat s{scale}"), rmat(scale, 8, RmatParams::graph500(), 42)),
    ];
    let cpu_group = cfg.group_size.min(cfg.width.bits() as usize).min(ibfs::cpu::CPU_GROUP);
    let mut async_wins_mesh = false;
    let mut sync_wins_rmat = false;
    for (i, (name, g)) in graphs.iter().enumerate() {
        let r = g.reverse();
        let sources = cfg.source_set(g);
        let teps_of = |engine: CpuEngine| {
            let mut svc = CpuIbfs {
                threads: cfg.threads,
                width: cfg.width,
                engine,
                ..Default::default()
            }
            .service(g, &r);
            let runs = run_cpu_many(&sources, cpu_group, |group| {
                svc.run_group(group).expect("crossover groups are sized to capacity")
            });
            let edges: u64 = runs.iter().map(|x| x.traversed_edges).sum();
            let secs: f64 = runs.iter().map(|x| x.wall_seconds).sum();
            edges as f64 / secs.max(1e-12)
        };
        let pooled = teps_of(CpuEngine::Pooled);
        let tiled = teps_of(CpuEngine::Tiled);
        let asynch = teps_of(CpuEngine::Async);
        let fastest = if asynch >= pooled.max(tiled) {
            "async"
        } else if tiled >= pooled {
            "tiled"
        } else {
            "pooled"
        };
        if i == 0 {
            async_wins_mesh = fastest == "async";
        } else {
            sync_wins_rmat = fastest != "async";
        }
        // Eccentricity of the group's first source stands in for diameter.
        let ecc = ibfs_graph::validate::reference_bfs(g, sources[0])
            .iter()
            .filter(|&&d| d != ibfs_graph::DEPTH_UNVISITED)
            .max()
            .copied()
            .unwrap_or(0);
        out.push_row(vec![
            name.clone(),
            ecc.to_string(),
            gteps(pooled),
            gteps(tiled),
            gteps(asynch),
            fastest.to_string(),
        ]);
    }
    out.note(format!(
        "expected crossover (async wins the high-diameter mesh, a level-synchronous \
         engine wins R-MAT): {}",
        if async_wins_mesh && sync_wins_rmat { "HOLDS" } else { "NOT OBSERVED AT THIS SCALE" }
    ));
    out.note(
        "methodology: same sources, resident service per engine, wall-clock TEPS; \
         the mesh pays O(sqrt n) barrier rounds synchronously, the async engine pays \
         re-relaxations instead (see EXPERIMENTS.md)"
            .to_string(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_produces_both_graphs() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows[0][0].starts_with("mesh"));
        assert!(r.rows[1][0].starts_with("rmat"));
        // A winner is declared per row from the measured engines.
        for row in &r.rows {
            assert!(["pooled", "tiled", "async"].contains(&row[5].as_str()));
        }
    }
}
