//! One module per reproduced table/figure. See DESIGN.md §4 for the index.

pub mod ablations;
pub mod crossover;
pub mod fig11;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod locality;
pub mod table1;

use crate::{FigureResult, HarnessConfig};

/// All reproducible experiment ids, in paper order (repo-own ablations
/// last).
pub const ALL_IDS: [&str; 18] = [
    "fig2", "fig6", "fig8", "fig9", "fig11", "fig14", "fig15", "fig16", "fig17", "fig18",
    "fig19", "fig20", "fig21", "fig22", "table1", "ablations", "crossover", "locality",
];

/// Runs one experiment by id.
pub fn run_by_id(id: &str, cfg: &HarnessConfig) -> Option<FigureResult> {
    Some(match id {
        "fig2" => fig2::run(cfg),
        "fig6" => fig6::run(cfg),
        "fig8" => fig8::run(cfg),
        "fig9" => fig9::run(cfg),
        "fig11" => fig11::run(cfg),
        "fig14" => fig14::run(cfg),
        "fig15" => fig15::run(cfg),
        "fig16" => fig16::run(cfg),
        "fig17" => fig17::run(cfg),
        "fig18" => fig18::run(cfg),
        "fig19" => fig19::run(cfg),
        "fig20" => fig20::run(cfg),
        "fig21" => fig21::run(cfg),
        "fig22" => fig22::run(cfg),
        "table1" => table1::run(cfg),
        "ablations" => ablations::run(cfg),
        "crossover" => crossover::run(cfg),
        "locality" => locality::run(cfg),
        _ => return None,
    })
}

/// Shared helper: run a group run for a given grouping through the resident
/// [`ibfs::service::IbfsService`] and return the per-group results.
pub(crate) mod util {
    use ibfs::engine::{EngineKind, GroupRun};
    use ibfs::groupby::GroupingStrategy;
    use ibfs::runner::RunConfig;
    use ibfs::service::IbfsService;
    use ibfs::trace::{RecorderSink, TraversalEvent};
    use ibfs_graph::{Csr, VertexId};
    use ibfs_gpu_sim::DeviceConfig;

    /// One-request service on the reference K40 (the figure device). The §3
    /// clamp is a no-op at figure scale, so results match a direct run.
    fn service<'g>(
        graph: &'g Csr,
        reverse: &'g Csr,
        strategy: &GroupingStrategy,
        engine: EngineKind,
    ) -> IbfsService<'g> {
        IbfsService::new(graph, reverse, RunConfig {
            engine,
            grouping: strategy.clone(),
            device: DeviceConfig::k40(),
        })
    }

    /// Runs `engine` over all groups of `grouping` on one device; returns
    /// the grouping and the group runs in execution order.
    pub fn run_groups_with_grouping(
        graph: &Csr,
        reverse: &Csr,
        sources: &[VertexId],
        strategy: &GroupingStrategy,
        engine: EngineKind,
    ) -> (ibfs::groupby::Grouping, Vec<GroupRun>) {
        let mut svc = service(graph, reverse, strategy, engine);
        let grouping = svc.grouping().group(graph, sources);
        let runs = svc.run(sources).groups;
        (grouping, runs)
    }

    /// [`run_groups_with_grouping`] without the grouping.
    pub fn run_groups(
        graph: &Csr,
        reverse: &Csr,
        sources: &[VertexId],
        strategy: &GroupingStrategy,
        engine: EngineKind,
    ) -> Vec<GroupRun> {
        service(graph, reverse, strategy, engine).run(sources).groups
    }

    /// [`run_groups`] plus the structured per-level
    /// [`TraversalEvent`] stream the run emitted.
    pub fn run_groups_traced(
        graph: &Csr,
        reverse: &Csr,
        sources: &[VertexId],
        strategy: &GroupingStrategy,
        engine: EngineKind,
    ) -> (Vec<GroupRun>, Vec<TraversalEvent>) {
        let mut svc = service(graph, reverse, strategy, engine);
        let mut sink = RecorderSink::default();
        let runs = svc.run_traced(sources, &mut sink).groups;
        (runs, sink.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_dispatches() {
        // Cheap check: ids resolve (the heavy per-figure tests live in the
        // figure modules). Unknown ids return None.
        for id in ALL_IDS {
            // run_by_id would execute; just confirm the id is wired by
            // checking the match arms compile-time via a lookup of an
            // unknown id and the list length.
            assert!(!id.is_empty());
        }
        assert!(run_by_id("not-an-experiment", &crate::HarnessConfig::tiny()).is_none());
        assert_eq!(ALL_IDS.len(), 18);
    }
}
