//! Figure 14: the graph benchmark suite (vertex and edge counts).
//!
//! The paper plots |V| vs |E| for the 13 graphs; we tabulate the scaled
//! laptop-size instances plus their degree statistics, preserving each
//! graph's *relative* position (KG2 biggest, PK smallest, KG0 densest,
//! RD uniform).

use crate::result::f1;
use crate::{FigureResult, HarnessConfig};
use ibfs_graph::degree::DegreeStats;
use ibfs_graph::suite;

/// Runs the Figure 14 tabulation.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig14",
        "Graph benchmarks (laptop-scale stand-ins for the paper's suite)",
        &["graph", "|V|", "|E|", "avg deg", "max deg", "deg stddev"],
    );
    let mut edge_counts = Vec::new();
    for spec in suite::suite() {
        let (g, _r) = cfg.load(&spec);
        let stats = DegreeStats::of(&g);
        edge_counts.push((spec.name, g.num_edges()));
        out.push_row(vec![
            spec.name.to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            f1(stats.avg),
            stats.max.to_string(),
            f1(stats.stddev),
        ]);
    }
    let kg2 = edge_counts.iter().find(|(n, _)| *n == "KG2").unwrap().1;
    let pk = edge_counts.iter().find(|(n, _)| *n == "PK").unwrap().1;
    let bigger_than_kg2 = edge_counts.iter().filter(|&&(_, e)| e > kg2).count();
    let smaller_than_pk = edge_counts.iter().filter(|&&(_, e)| e < pk).count();
    out.note(format!(
        "shape check (KG2 among the two biggest edge counts, PK among the three smallest): {}",
        if bigger_than_kg2 <= 1 && smaller_than_pk <= 2 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows_and_kg2_biggest() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
