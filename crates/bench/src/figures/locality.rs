//! Locality figure: vertex reordering vs TEPS on a power-law graph (CPU
//! cache-locality round; no paper counterpart — the repo's own ablation,
//! see DESIGN.md §10 "Locality & adaptivity").
//!
//! For each [`ReorderKind`] the tiled engine runs the same sources through
//! a resident service built over the relabeled CSR. Two columns carry the
//! story: the mean absolute neighbor gap `mean |u - v|` (the static
//! locality surrogate — how far apart a vertex's neighbors sit in the
//! status-word and depth arrays) and measured wall-clock GTEPS. The
//! orderings must shrink the gap (that is deterministic and asserted by
//! the unit test); whether the shrink becomes a TEPS win depends on the
//! host's cache hierarchy, so the speedup is reported as a shape check,
//! not asserted (the enforced version lives in `bfs cpu-bench --check`'s
//! reorder gate). Depths are asserted bit-identical across orderings
//! before any rate is reported — a locality win bought with a wrong
//! answer is not a win.

use crate::result::gteps;
use crate::{FigureResult, HarnessConfig};
use ibfs::cpu::{run_cpu_many, CpuEngine, CpuIbfs};
use ibfs_graph::generators::{rmat, RmatParams};
use ibfs_graph::reorder::{mean_neighbor_gap, ReorderKind, VertexPerm};

/// Runs the reordering-vs-locality comparison.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "locality",
        "vertex reordering: mean neighbor gap vs tiled-engine GTEPS (R-MAT)",
        &["reorder", "mean |u-v|", "gap vs none", "tiled", "speedup vs none"],
    );
    let scale = 14u32.saturating_sub(cfg.shrink).max(8);
    let g = rmat(scale, 8, RmatParams::graph500(), 42);
    let r = g.reverse();
    let sources = cfg.source_set(&g);
    let cpu_group = cfg.group_size.min(cfg.width.bits() as usize).min(ibfs::cpu::CPU_GROUP);

    let mut base_gap = 0.0f64;
    let mut base_teps = 0.0f64;
    let mut base_depths: Option<Vec<ibfs_graph::Depth>> = None;
    for kind in ReorderKind::all() {
        // The static surrogate, measured on the CSR the engine will walk.
        let gap = match VertexPerm::build(kind, &g, ibfs::cpu::REORDER_SEED) {
            None => mean_neighbor_gap(&g),
            Some(perm) => mean_neighbor_gap(&perm.apply(&g)),
        };
        let mut svc = CpuIbfs {
            threads: cfg.threads,
            width: cfg.width,
            engine: CpuEngine::Tiled,
            reorder: kind,
            ..Default::default()
        }
        .service(&g, &r);
        let runs = run_cpu_many(&sources, cpu_group, |group| {
            svc.run_group(group).expect("locality groups are sized to capacity")
        });
        let depths: Vec<ibfs_graph::Depth> =
            runs.iter().flat_map(|x| x.depths.iter().copied()).collect();
        match &base_depths {
            None => base_depths = Some(depths),
            Some(b) => assert_eq!(b, &depths, "{kind}: reordered depths diverge"),
        }
        let edges: u64 = runs.iter().map(|x| x.traversed_edges).sum();
        let secs: f64 = runs.iter().map(|x| x.wall_seconds).sum();
        let teps = edges as f64 / secs.max(1e-12);
        if kind == ReorderKind::None {
            base_gap = gap;
            base_teps = teps;
        }
        out.push_row(vec![
            kind.name().to_string(),
            format!("{gap:.1}"),
            format!("{:.2}x", gap / base_gap.max(1e-12)),
            gteps(teps),
            format!("{:.2}x", teps / base_teps.max(1e-12)),
        ]);
    }
    out.note(
        "methodology: same sources and tiled engine per ordering, resident service \
         (relabel amortized at build), depths asserted bit-identical across orderings; \
         the gap column is deterministic, the TEPS column is wall-clock (see \
         EXPERIMENTS.md)"
            .to_string(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_rows_cover_every_ordering_and_shrink_the_gap() {
        let cfg = HarnessConfig::tiny();
        let res = run(&cfg);
        assert_eq!(res.rows.len(), ReorderKind::all().len());
        let gap_of = |row: &Vec<String>| row[1].parse::<f64>().unwrap();
        let base = gap_of(&res.rows[0]);
        assert_eq!(res.rows[0][0], "none");
        for row in &res.rows[1..] {
            // Every real ordering must improve the static surrogate on a
            // power-law graph — this is the deterministic half of the
            // figure, so it is asserted even on noisy CI hosts.
            assert!(
                gap_of(row) < base,
                "{}: gap {} did not shrink vs natural {base}",
                row[0],
                gap_of(row)
            );
        }
    }
}
