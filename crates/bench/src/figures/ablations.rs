//! Ablation report for the design choices of DESIGN.md §5, in *simulated*
//! metrics (the criterion benches in `benches/ablations.rs` measure host
//! time of the simulator instead).
//!
//! Each row disables one design element and reports the change in
//! simulated time and global load transactions on a mid-size Kronecker
//! graph with a 64-instance group.

use crate::result::f2;
use crate::{FigureResult, HarnessConfig};
use ibfs::bitwise::{BitwiseEngine, BitwiseStyle};
use ibfs::direction::DirectionPolicy;
use ibfs::engine::{Engine, GpuGraph, GroupRun};
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::joint::JointEngine;
use ibfs::word::W256;
use ibfs_graph::suite;
use ibfs_gpu_sim::{DeviceConfig, Profiler};

/// Runs the ablation suite.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let spec = suite::by_name("KG1").unwrap();
    let (g, r) = cfg.load(&spec);
    let sources = cfg.source_set(&g);
    let group: Vec<u32> = sources
        .iter()
        .copied()
        .take(cfg.group_size.min(64))
        .collect();

    let run_engine = |engine: &dyn Engine, srcs: &[u32]| -> GroupRun {
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        engine.run_group(&gg, srcs, &mut prof)
    };

    let mut out = FigureResult::new(
        "ablations",
        "Design-choice ablations (simulated time and load transactions)",
        &["ablation", "baseline ms", "ablated ms", "slowdown", "load txns base", "load txns ablated"],
    );
    let ms = |x: f64| format!("{:.4}", x * 1e3);

    let mut record = |name: &str, base: &GroupRun, ablated: &GroupRun| {
        assert_eq!(base.depths, ablated.depths, "{name}: ablation changed results");
        out.push_row(vec![
            name.to_string(),
            ms(base.sim_seconds),
            ms(ablated.sim_seconds),
            f2(ablated.sim_seconds / base.sim_seconds),
            base.counters.global_load_transactions.to_string(),
            ablated.counters.global_load_transactions.to_string(),
        ]);
    };

    // 1. CTA shared-memory adjacency cache (joint engine).
    let base = run_engine(&JointEngine::default(), &group);
    let ablated = run_engine(&JointEngine::without_shared_cache(), &group);
    record("shared-memory adjacency cache", &base, &ablated);

    // 2. Early termination + accumulated bits (bitwise vs MS-BFS-style),
    //    on a GroupBy-coherent group where words actually fill.
    let grouped = GroupingStrategy::OutDegreeRules(
        GroupByConfig::default().with_group_size(group.len().max(1)),
    )
    .group(&g, &sources);
    let coherent = grouped.groups.first().cloned().unwrap_or_else(|| group.clone());
    let base = run_engine(&BitwiseEngine::default(), &coherent);
    let ablated = run_engine(
        &BitwiseEngine { style: BitwiseStyle::MsBfs, ..Default::default() },
        &coherent,
    );
    record("early termination (vs per-level reset)", &base, &ablated);

    // 3. Direction optimization (bitwise, top-down only). Bottom-up pays
    //    off only when the group is coherent enough for status words to
    //    fill (the GroupBy argument), so this ablation also runs on the
    //    GroupBy group.
    let base = run_engine(&BitwiseEngine::default(), &coherent);
    let ablated = run_engine(
        &BitwiseEngine { policy: DirectionPolicy::top_down_only(), ..Default::default() },
        &coherent,
    );
    record("direction-optimizing traversal", &base, &ablated);

    // 4. Status-word width: narrowest fitting word vs forced long4.
    let narrow: Vec<u32> = group.iter().copied().take(32).collect();
    let engine = BitwiseEngine::default();
    let base = {
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        engine.run_group_with_word::<u32>(&gg, &narrow, &mut prof)
    };
    let ablated = {
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        engine.run_group_with_word::<W256>(&gg, &narrow, &mut prof)
    };
    record("narrow status word (u32 vs forced long4)", &base, &ablated);

    let all_cost = out
        .rows
        .iter()
        .all(|row| row[3].parse::<f64>().map(|x| x >= 0.99).unwrap_or(false));
    out.note(format!(
        "shape check (every ablation costs time or is neutral): {}",
        if all_cost { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_all_cost_something() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 4);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
