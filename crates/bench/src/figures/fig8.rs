//! Figure 8: GroupBy performance as the hub threshold `q` varies, on HW,
//! KG0, LJ and OR.
//!
//! Paper shape: performance "rises initially and reaches the peak,
//! typically around the range of 128–1024", dropping for very small q
//! (weak groups) and very large q (few instances satisfy the rules). At
//! laptop scale the degree distribution is compressed, so the peak shifts
//! proportionally left; what must hold is the rise-then-fall shape.

use crate::result::f1;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// The q values swept (the paper's x-axis reaches 4096; our scaled graphs
/// top out earlier).
pub const Q_VALUES: [usize; 7] = [1, 4, 16, 64, 128, 256, 1024];

/// Runs the Figure 8 sweep.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let graphs = ["HW", "KG0", "LJ", "OR"];
    let mut out = FigureResult::new(
        "fig8",
        "Relative GroupBy performance vs hub threshold q",
        &["q", "HW %", "KG0 %", "LJ %", "OR %"],
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for name in graphs {
        let spec = suite::by_name(name).unwrap();
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let teps: Vec<f64> = Q_VALUES
            .iter()
            .map(|&q| {
                let run = run_ibfs(&g, &r, &sources, &RunConfig {
                    engine: EngineKind::Bitwise,
                    grouping: GroupingStrategy::OutDegreeRules(
                        GroupByConfig::default()
                            .with_q(q)
                            .with_group_size(cfg.group_size),
                    ),
                    ..Default::default()
                });
                run.teps()
            })
            .collect();
        let best = teps.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        columns.push(teps.iter().map(|t| 100.0 * t / best).collect());
    }
    for (i, &q) in Q_VALUES.iter().enumerate() {
        out.push_row(vec![
            q.to_string(),
            f1(columns[0][i]),
            f1(columns[1][i]),
            f1(columns[2][i]),
            f1(columns[3][i]),
        ]);
    }
    // Shape: the peak is interior or the curve is non-trivial (some q
    // clearly worse than the best).
    let interior_peak = columns.iter().all(|col| {
        let min = col.iter().cloned().fold(f64::INFINITY, f64::min);
        min < 99.9
    });
    out.note(format!(
        "shape check (q matters: some q at least 0.1% below peak on every graph): {}",
        if interior_peak { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_full_grid() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), Q_VALUES.len());
        assert_eq!(r.rows[0].len(), 5);
    }
}
