//! Figure 18: global store transactions during frontier-queue generation —
//! private per-instance queues vs a random joint queue vs a GroupBy joint
//! queue.
//!
//! Paper shape: the joint queue cuts stores ~4× on average (11× on KG2);
//! GroupBy saves another ~2.6× by raising sharing (more frontiers stored
//! once).
//!
//! Store counts are derived from the per-level [`TraversalEvent`] stream
//! (queue sizes recorded at frontier identification) under the uniform
//! convention of one coalesced 128-byte store transaction per
//! 32 enqueued `u32` ids (plus the 16-byte ballot masks for joint queues):
//! private queues store `Σ_k Σ_j |FQ_j(k)|` ids, joint queues
//! `Σ_k |JFQ(k)|`.

use crate::figures::util::run_groups_traced;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::frontier::{FQ_ID_BYTES, JFQ_MASK_BYTES};
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::trace::TraversalEvent;
use ibfs_graph::suite;

fn private_store_txns(events: &[TraversalEvent]) -> u64 {
    // Each instance stores its own copy of every frontier.
    events
        .iter()
        .map(|e| (e.instance_frontiers * FQ_ID_BYTES).div_ceil(128))
        .sum()
}

fn joint_store_txns(events: &[TraversalEvent]) -> u64 {
    // Unique frontiers once (id + ballot mask).
    events
        .iter()
        .map(|e| (e.unique_frontiers * (FQ_ID_BYTES + JFQ_MASK_BYTES)).div_ceil(128))
        .sum()
}

/// Runs the Figure 18 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig18",
        "Store transactions in frontier-queue generation (millions)",
        &["graph", "private FQ", "random JFQ", "GroupBy JFQ"],
    );
    let fmt = |x: u64| format!("{:.3}", x as f64 / 1e6);
    let mut ratio_private = 0.0;
    let mut ratio_groupby = 0.0;
    let mut graphs = 0usize;
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let (_, random) = run_groups_traced(
            &g,
            &r,
            &sources,
            &GroupingStrategy::Random { seed: 19, group_size: cfg.group_size },
            EngineKind::Bitwise,
        );
        let (_, grouped) = run_groups_traced(
            &g,
            &r,
            &sources,
            &GroupingStrategy::OutDegreeRules(
                GroupByConfig::default().with_group_size(cfg.group_size),
            ),
            EngineKind::Bitwise,
        );
        let private = private_store_txns(&random);
        let jfq_random = joint_store_txns(&random);
        let jfq_grouped = joint_store_txns(&grouped);
        graphs += 1;
        ratio_private += private as f64 / jfq_random.max(1) as f64;
        ratio_groupby += jfq_random as f64 / jfq_grouped.max(1) as f64;
        out.push_row(vec![
            spec.name.to_string(),
            fmt(private),
            fmt(jfq_random),
            fmt(jfq_grouped),
        ]);
    }
    out.note(format!(
        "mean reductions: private→random JFQ {:.2}x (paper ~4x), random→GroupBy JFQ {:.2}x \
         (paper ~2.6x)",
        ratio_private / graphs as f64,
        ratio_groupby / graphs as f64
    ));
    out.note(format!(
        "shape check (JFQ < private on every graph): {}",
        if ratio_private / graphs as f64 > 1.0 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jfq_beats_private_queues() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
