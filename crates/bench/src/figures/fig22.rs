//! Figure 22: CPU and GPU implementation comparison — MS-BFS and CPU-iBFS
//! (real wall-clock) vs B40C, SpMM-BC and GPU-iBFS (simulated) on FB, HW,
//! KG0, LJ, OR, TW.
//!
//! Paper shape: CPU-iBFS beats MS-BFS (45% average, 3.3× on KG0); on the
//! GPU side iBFS beats SpMM-BC ~2× and B40C ~19×. CPU wall-clock and
//! simulated GPU TEPS are not directly comparable in absolute terms at
//! laptop scale — the within-platform orderings are the reproduction
//! target.

use crate::result::gteps;
use crate::{FigureResult, HarnessConfig};
use ibfs::cpu::{run_cpu_many, CpuIbfs, CpuMsBfs};
use ibfs::engine::EngineKind;
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// Runs the Figure 22 comparison.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig22",
        "CPU vs GPU implementations (GTEPS; CPU wall-clock, GPU simulated)",
        &["graph", "MS-BFS", "CPU iBFS", "B40C", "SpMM-BC", "GPU iBFS"],
    );
    let cpu_group = cfg.group_size.min(cfg.width.bits() as usize).min(ibfs::cpu::CPU_GROUP);
    let mut cpu_wins = 0usize;
    let mut gpu_wins = 0usize;
    let mut graphs = 0usize;
    for spec in suite::comparison_suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);

        // CPU engines: wall-clock TEPS through a resident service (pool +
        // arena reused across every group of the run).
        let cpu_teps = |msbfs: bool| {
            let mut svc = if msbfs {
                CpuMsBfs { threads: cfg.threads, width: cfg.width, ..Default::default() }
                    .service(&g, &r)
            } else {
                CpuIbfs { threads: cfg.threads, width: cfg.width, ..Default::default() }
                    .service(&g, &r)
            };
            let runs = run_cpu_many(&sources, cpu_group, |group| {
                svc.run_group(group).expect("fig22 groups are sized to capacity")
            });
            let edges: u64 = runs.iter().map(|x| x.traversed_edges).sum();
            let secs: f64 = runs.iter().map(|x| x.wall_seconds).sum();
            edges as f64 / secs.max(1e-12)
        };
        let msbfs = cpu_teps(true);
        let cpu_ibfs = cpu_teps(false);

        // GPU engines: simulated TEPS.
        let gpu_teps = |engine: EngineKind, strategy: GroupingStrategy| {
            run_ibfs(&g, &r, &sources, &RunConfig {
                engine,
                grouping: strategy,
                ..Default::default()
            })
            .teps()
        };
        let random = GroupingStrategy::Random { seed: 37, group_size: cfg.group_size };
        let grouped = GroupingStrategy::OutDegreeRules(
            GroupByConfig::default().with_group_size(cfg.group_size),
        );
        let b40c = gpu_teps(EngineKind::Sequential, random.clone());
        let spmm = gpu_teps(EngineKind::Spmm, random);
        let gpu_ibfs = gpu_teps(EngineKind::Bitwise, grouped);

        graphs += 1;
        if cpu_ibfs >= msbfs {
            cpu_wins += 1;
        }
        if gpu_ibfs > b40c && gpu_ibfs > spmm {
            gpu_wins += 1;
        }
        out.push_row(vec![
            spec.name.to_string(),
            gteps(msbfs),
            gteps(cpu_ibfs),
            gteps(b40c),
            gteps(spmm),
            gteps(gpu_ibfs),
        ]);
    }
    out.note(format!(
        "CPU-iBFS >= MS-BFS on {cpu_wins}/{graphs} graphs (paper: 45% average win); \
         GPU-iBFS fastest GPU implementation on {gpu_wins}/{graphs} (paper: 2x over \
         SpMM-BC, 19.3x over B40C)"
    ));
    out.note(format!(
        "shape check (GPU-iBFS fastest on-GPU everywhere, CPU-iBFS usually beats MS-BFS): {}",
        if gpu_wins == graphs && cpu_wins * 2 >= graphs { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_produces_six_graphs() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 6);
    }
}
