//! Figure 16: traversal rate as the number of BFS groups grows on HW,
//! GroupBy vs random grouping.
//!
//! Paper shape: with more instances to choose from, GroupBy forms better
//! groups, so the gap over random grouping *widens* with the group count
//! (random fluctuates 75–90 GTEPS while GroupBy reaches 288).

use crate::result::gteps;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// Group counts swept.
pub const GROUP_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Runs the Figure 16 sweep.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let spec = suite::by_name("HW").unwrap();
    let (g, r) = cfg.load(&spec);
    let n = g.num_vertices();
    let mut out = FigureResult::new(
        "fig16",
        "TEPS vs number of BFS groups on HW (GroupBy vs random)",
        &["groups", "instances", "GroupBy GTEPS", "random GTEPS"],
    );
    let mut gap_first = 0.0;
    let mut gap_last = 0.0;
    for (i, &groups) in GROUP_COUNTS.iter().enumerate() {
        let total = (groups * cfg.group_size).min(n);
        let sources: Vec<u32> = (0..total as u32).collect();
        let teps = |strategy: GroupingStrategy| {
            run_ibfs(&g, &r, &sources, &RunConfig {
                engine: EngineKind::Bitwise,
                grouping: strategy,
                ..Default::default()
            })
            .teps()
        };
        let by = teps(GroupingStrategy::OutDegreeRules(
            GroupByConfig::default().with_group_size(cfg.group_size),
        ));
        let rnd = teps(GroupingStrategy::Random { seed: 5, group_size: cfg.group_size });
        let gap = by / rnd.max(1e-12);
        if i == 0 {
            gap_first = gap;
        }
        gap_last = gap;
        out.push_row(vec![
            groups.to_string(),
            total.to_string(),
            gteps(by),
            gteps(rnd),
        ]);
    }
    out.note(format!(
        "GroupBy/random gap grows from {gap_first:.2}x (1 group) to {gap_last:.2}x \
         ({} groups) (paper: gap widens with more groups)",
        GROUP_COUNTS[GROUP_COUNTS.len() - 1]
    ));
    out.note(format!(
        "shape check (GroupBy >= random at the largest group count): {}",
        if gap_last >= 1.0 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), GROUP_COUNTS.len());
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
