//! Figure 11: standard deviation of per-instance bottom-up inspection
//! counts, random grouping vs GroupBy.
//!
//! Paper shape: GroupBy lowers the standard deviation (13× on average,
//! 66× on TW) — grouped instances find their parents after similar scan
//! lengths, balancing the bottom-up workload.

use crate::figures::util::run_groups;
use crate::result::f1;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::metrics::bottom_up_balance;
use ibfs_graph::suite;

/// Runs the Figure 11 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig11",
        "Stddev of bottom-up inspection counts: random vs GroupBy",
        &["graph", "random stddev", "GroupBy stddev"],
    );
    let mut improved = 0usize;
    let mut graphs = 0usize;
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        // Average the stddev over groups (the paper reports a per-graph
        // number for 128-instance groups).
        let stddev_of = |strategy: &GroupingStrategy| {
            let runs = run_groups(&g, &r, &sources, strategy, EngineKind::Bitwise);
            let full: Vec<_> = runs
                .iter()
                .filter(|x| x.num_instances == cfg.group_size)
                .collect();
            let considered: Vec<_> = if full.is_empty() {
                runs.iter().collect()
            } else {
                full
            };
            let sum: f64 = considered
                .iter()
                .map(|x| bottom_up_balance(&r, x).stddev)
                .sum();
            sum / considered.len() as f64
        };
        let rnd = stddev_of(&GroupingStrategy::Random { seed: 13, group_size: cfg.group_size });
        let grp = stddev_of(&GroupingStrategy::OutDegreeRules(
            GroupByConfig::default().with_group_size(cfg.group_size),
        ));
        graphs += 1;
        if grp <= rnd * 1.02 {
            improved += 1;
        }
        out.push_row(vec![spec.name.to_string(), f1(rnd), f1(grp)]);
    }
    out.note(format!(
        "GroupBy lowers (or matches) the bottom-up inspection stddev on \
         {improved}/{graphs} graphs (paper: 13x average reduction)"
    ));
    out.note(format!(
        "shape check (balanced workload on most graphs): {}",
        if improved * 3 >= graphs * 2 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_all_rows() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
    }
}
