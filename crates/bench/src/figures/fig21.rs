//! Figure 21: total global load transactions — joint traversal vs bitwise
//! operation.
//!
//! Paper shape: consolidating 128 one-byte statuses into one status word
//! cuts total loads by ~40% (53M → 38M for 1024 instances).

use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// Runs the Figure 21 measurement.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig21",
        "Total global load transactions (millions): joint vs bitwise",
        &["graph", "joint", "bitwise"],
    );
    let grouping = GroupingStrategy::Random { seed: 31, group_size: cfg.group_size };
    let fmt = |x: u64| format!("{:.3}", x as f64 / 1e6);
    let mut improved = 0usize;
    let mut ratio_sum = 0.0;
    let mut graphs = 0usize;
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let loads = |engine: EngineKind| {
            run_ibfs(&g, &r, &sources, &RunConfig {
                engine,
                grouping: grouping.clone(),
                ..Default::default()
            })
            .counters
            .global_load_transactions
        };
        let joint = loads(EngineKind::Joint);
        let bitwise = loads(EngineKind::Bitwise);
        graphs += 1;
        if bitwise < joint {
            improved += 1;
        }
        ratio_sum += bitwise as f64 / joint.max(1) as f64;
        out.push_row(vec![spec.name.to_string(), fmt(joint), fmt(bitwise)]);
    }
    out.note(format!(
        "bitwise loads are {:.0}% of joint's on average (paper: ~60-70%, a ~40% cut)",
        100.0 * ratio_sum / graphs as f64
    ));
    out.note(format!(
        "shape check (bitwise < joint on most graphs): {} ({improved}/{graphs})",
        if improved * 3 >= graphs * 2 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwise_cuts_loads() {
        // A full 64-instance status word: the paper's effect is about
        // concurrent-instance sharing and is too weak at tiny's default
        // 32-instance groups to assert on every generator seed.
        let cfg = HarnessConfig { group_size: 64, ..HarnessConfig::tiny() };
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
