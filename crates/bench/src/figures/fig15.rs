//! Figure 15: traversal rate of Sequential, Naive, Joint traversal,
//! Bitwise operation, and GroupBy across all 13 graphs.
//!
//! Paper shape: sequential ≈ naive; joint ≈ 1.4× sequential; bitwise ≈ 11×
//! on top; GroupBy another ≈ 2×. Absolute TEPS differ (simulated device,
//! scaled graphs); the bar ordering is what must reproduce.

use crate::result::gteps;
use crate::{FigureResult, HarnessConfig};
use ibfs::engine::EngineKind;
use ibfs::groupby::{GroupByConfig, GroupingStrategy};
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::suite;

/// Runs the Figure 15 comparison.
pub fn run(cfg: &HarnessConfig) -> FigureResult {
    let mut out = FigureResult::new(
        "fig15",
        "Traversal rate (GTEPS, simulated): engine comparison",
        &["graph", "sequential", "naive", "joint", "bitwise", "groupby"],
    );
    let random = GroupingStrategy::Random { seed: 3, group_size: cfg.group_size };
    let grouped = GroupingStrategy::OutDegreeRules(
        GroupByConfig::default().with_group_size(cfg.group_size),
    );
    let mut ordering_holds = 0usize;
    let mut graphs = 0usize;
    let mut speedups = [0.0f64; 4]; // joint/seq, bitwise/joint, groupby/bitwise, naive/seq
    for spec in suite::suite() {
        let (g, r) = cfg.load(&spec);
        let sources = cfg.source_set(&g);
        let teps = |engine: EngineKind, grouping: &GroupingStrategy| {
            run_ibfs(&g, &r, &sources, &RunConfig {
                engine,
                grouping: grouping.clone(),
                ..Default::default()
            })
            .teps()
        };
        let seq = teps(EngineKind::Sequential, &random);
        let naive = teps(EngineKind::Naive, &random);
        let joint = teps(EngineKind::Joint, &random);
        let bitwise = teps(EngineKind::Bitwise, &random);
        let groupby = teps(EngineKind::Bitwise, &grouped);
        graphs += 1;
        if joint > seq && bitwise > joint * 0.9 && groupby > bitwise * 0.9 {
            ordering_holds += 1;
        }
        speedups[0] += joint / seq;
        speedups[1] += bitwise / joint;
        speedups[2] += groupby / bitwise;
        speedups[3] += naive / seq;
        out.push_row(vec![
            spec.name.to_string(),
            gteps(seq),
            gteps(naive),
            gteps(joint),
            gteps(bitwise),
            gteps(groupby),
        ]);
    }
    let gf = graphs as f64;
    out.note(format!(
        "mean speedups: naive/seq {:.2}x (paper ~1.05x), joint/seq {:.2}x (paper 1.4x), \
         bitwise/joint {:.2}x (paper ~8x), groupby/bitwise {:.2}x (paper 2x)",
        speedups[3] / gf,
        speedups[0] / gf,
        speedups[1] / gf,
        speedups[2] / gf
    ));
    out.note(format!(
        "shape check (seq≈naive < joint <= bitwise <= groupby) on {ordering_holds}/{graphs} graphs: {}",
        if ordering_holds * 4 >= graphs * 3 { "HOLDS" } else { "VIOLATED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_ordering_reproduces() {
        let cfg = HarnessConfig::tiny();
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 13);
        assert!(r.notes.iter().any(|n| n.contains("HOLDS")), "{:?}", r.notes);
    }
}
