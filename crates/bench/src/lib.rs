//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§8).
//!
//! Each `figN`/`table1` module exposes `run(&HarnessConfig) -> FigureResult`;
//! the `reproduce` binary prints the results as text tables and can dump
//! them as JSON. Criterion micro-benches in `benches/` reuse the same
//! modules at reduced scale.

pub mod cpubench;
pub mod figures;
pub mod loadgen;
pub mod perfdiff;
pub mod result;
pub mod shardbench;
pub mod top;

use ibfs::word::WordWidth;
use ibfs_graph::suite::GraphSpec;
use ibfs_graph::Csr;
use std::path::PathBuf;

pub use result::FigureResult;

/// Scale and workload knobs shared by all figures.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Shrink factor applied to every suite graph (vertex count divided by
    /// `2^shrink`). 0 reproduces at the default laptop scale.
    pub shrink: u32,
    /// Cap on the number of BFS sources per graph (the paper runs APSP; we
    /// run the first `sources` vertices, which exercises identical code).
    pub sources: usize,
    /// Concurrent group size `N`.
    pub group_size: usize,
    /// CPU worker threads; 0 = all available.
    pub threads: usize,
    /// CPU status-word width.
    pub width: WordWidth,
    /// Cache directory for generated graphs (`None` = no caching).
    pub cache_dir: Option<PathBuf>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            shrink: 0,
            sources: 512,
            group_size: 64,
            threads: 0,
            width: WordWidth::default(),
            cache_dir: default_cache_dir(),
        }
    }
}

impl HarnessConfig {
    /// A configuration small enough for unit tests and criterion benches.
    pub fn tiny() -> Self {
        HarnessConfig {
            shrink: 4,
            sources: 64,
            group_size: 32,
            threads: 0,
            width: WordWidth::default(),
            cache_dir: default_cache_dir(),
        }
    }

    /// Loads (generating and caching if needed) a suite graph and its
    /// reverse at this configuration's scale.
    pub fn load(&self, spec: &GraphSpec) -> (Csr, Csr) {
        let graph = match &self.cache_dir {
            Some(dir) => {
                let path = dir.join(format!("{}-s{}.ibfs", spec.name, self.shrink));
                if let Ok(g) = ibfs_graph::io::load(&path) {
                    g
                } else {
                    let g = spec.generate_scaled(self.shrink);
                    let _ = std::fs::create_dir_all(dir);
                    let _ = ibfs_graph::io::save(&g, &path);
                    g
                }
            }
            None => spec.generate_scaled(self.shrink),
        };
        let reverse = graph.reverse();
        (graph, reverse)
    }

    /// The first `sources` vertices of `graph` (the paper's APSP restricted
    /// to a prefix at laptop scale).
    pub fn source_set(&self, graph: &Csr) -> Vec<ibfs_graph::VertexId> {
        (0..graph.num_vertices().min(self.sources) as ibfs_graph::VertexId).collect()
    }
}

fn default_cache_dir() -> Option<PathBuf> {
    Some(
        std::env::var_os("IBFS_GRAPH_CACHE")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("ibfs-graph-cache")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite;

    #[test]
    fn load_caches_and_reuses() {
        let mut cfg = HarnessConfig::tiny();
        cfg.cache_dir = Some(std::env::temp_dir().join("ibfs-cache-test"));
        let spec = suite::by_name("PK").unwrap();
        let (g1, r1) = cfg.load(&spec);
        let (g2, _) = cfg.load(&spec);
        assert_eq!(g1, g2);
        assert_eq!(r1.num_edges(), g1.num_edges());
    }

    #[test]
    fn source_set_respects_cap() {
        let cfg = HarnessConfig::tiny();
        let spec = suite::by_name("PK").unwrap();
        let (g, _) = cfg.load(&spec);
        let s = cfg.source_set(&g);
        assert_eq!(s.len(), 64.min(g.num_vertices()));
        assert_eq!(s[0], 0);
    }
}
