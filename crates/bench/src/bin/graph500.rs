//! `graph500` — a Graph 500-style benchmark run on the simulated device.
//!
//! Follows the reference benchmark flow the paper's KG graphs come from:
//! generate a Kronecker graph with `(A,B,C) = (0.57, 0.19, 0.19)`, pick 64
//! search keys, run BFS from each (here: concurrently, through iBFS),
//! validate every result, and report the TEPS statistics the official
//! output format requires (min/quartiles/max, harmonic mean).
//!
//! ```text
//! graph500 [--scale N] [--edge-factor N] [--keys N] [--seed N] [--groupby]
//! ```

use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::{run_ibfs, RunConfig};
use ibfs_graph::generators::{rmat, RmatParams};
use ibfs_graph::validate::{check_depths, traversed_edges};
use ibfs_graph::VertexId;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = 12u32;
    let mut edge_factor = 16usize;
    let mut keys = 64usize;
    let mut seed = 1u64;
    let mut groupby = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse(it.next()),
            "--edge-factor" => edge_factor = parse(it.next()),
            "--keys" => keys = parse(it.next()),
            "--seed" => seed = parse(it.next()),
            "--groupby" => groupby = true,
            other => {
                eprintln!("error: unknown option {other}");
                eprintln!(
                    "usage: graph500 [--scale N] [--edge-factor N] [--keys N] [--seed N] [--groupby]"
                );
                return ExitCode::from(2);
            }
        }
    }

    // --- Kernel 1: graph construction. ---
    let construct_start = std::time::Instant::now();
    let graph = rmat(scale, edge_factor, RmatParams::graph500(), seed);
    let reverse = graph.reverse();
    let construction_time = construct_start.elapsed().as_secs_f64();

    // Search keys: sampled deterministically, skipping degree-0 vertices as
    // the reference benchmark does.
    let n = graph.num_vertices();
    let mut search_keys: Vec<VertexId> = Vec::new();
    let mut cursor = seed;
    while search_keys.len() < keys.min(n) {
        cursor = cursor
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = (cursor >> 16) as usize % n;
        if graph.out_degree(v as VertexId) > 0 && !search_keys.contains(&(v as VertexId)) {
            search_keys.push(v as VertexId);
        }
        if search_keys.len() >= n {
            break;
        }
    }

    println!("SCALE: {scale}");
    println!("edgefactor: {edge_factor}");
    println!("NBFS: {}", search_keys.len());
    println!("num_vertices: {n}");
    println!("num_edges: {}", graph.num_edges());
    println!("construction_time: {construction_time:.6}");

    // --- Kernel 2: BFS from each key (concurrently through iBFS). ---
    let grouping = if groupby {
        GroupingStrategy::group_by()
    } else {
        GroupingStrategy::Random { seed, group_size: 64 }
    };
    let run = run_ibfs(&graph, &reverse, &search_keys, &RunConfig {
        engine: EngineKind::Bitwise,
        grouping: grouping.clone(),
        ..Default::default()
    });

    // --- Validation (the reference validator's structural checks). ---
    let grouping_struct = grouping.group(&graph, &search_keys);
    let mut teps_samples: Vec<f64> = Vec::new();
    for (gi, group) in grouping_struct.groups.iter().enumerate() {
        let gr = &run.groups[gi];
        // Apportion the group's simulated time per instance by inspected
        // work for per-BFS TEPS samples.
        for (j, &s) in group.iter().enumerate() {
            let depths = gr.instance_depths(j);
            if let Err(e) = check_depths(&graph, &reverse, s, depths) {
                eprintln!("VALIDATION FAILED for key {s}: {e:?}");
                return ExitCode::FAILURE;
            }
            // Per-search TEPS: this search's edges over the time its group
            // needed — concurrent searches share their group's runtime, so
            // a small search in a big group scores lower, as in multi-BFS
            // Graph 500 submissions.
            let edges = traversed_edges(&graph, depths) as f64;
            if gr.sim_seconds > 0.0 {
                teps_samples.push(edges / gr.sim_seconds * group.len() as f64);
            }
        }
    }
    println!("validation: PASSED ({} searches)", teps_samples.len());

    // --- Output: Graph 500 TEPS statistics. ---
    teps_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| teps_samples[(p * (teps_samples.len() - 1) as f64).round() as usize];
    let harmonic =
        teps_samples.len() as f64 / teps_samples.iter().map(|t| 1.0 / t).sum::<f64>();
    println!("min_TEPS:            {:.4e}", q(0.0));
    println!("firstquartile_TEPS:  {:.4e}", q(0.25));
    println!("median_TEPS:         {:.4e}", q(0.5));
    println!("thirdquartile_TEPS:  {:.4e}", q(0.75));
    println!("max_TEPS:            {:.4e}", q(1.0));
    println!("harmonic_mean_TEPS:  {harmonic:.4e}");
    println!("aggregate_TEPS:      {:.4e} (whole concurrent run)", run.teps());
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: expected a numeric value");
        std::process::exit(2)
    })
}
