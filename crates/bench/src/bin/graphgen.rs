//! `graphgen` — generate benchmark graphs to files.
//!
//! ```text
//! graphgen suite <NAME> [--shrink N] [--out PATH] [--format bin|edges|dimacs]
//! graphgen rmat --scale S --edge-factor F [--seed N] [--out PATH] [--format ...]
//! graphgen uniform --vertices N --degree D [--seed N] [--out PATH] [--format ...]
//! graphgen list
//! ```
//!
//! Formats: `bin` (the crate's compact binary CSR), `edges` (SNAP-style
//! text edge list), `dimacs` (DIMACS `.gr` with random weights 1..=100).

use ibfs_graph::generators::{rmat, uniform_random, RmatParams};
use ibfs_graph::weighted::WeightedCsr;
use ibfs_graph::{dimacs, io, suite, Csr, EdgeList};
use std::process::ExitCode;

struct Opts {
    out: Option<String>,
    format: String,
    seed: u64,
    shrink: u32,
    scale: u32,
    edge_factor: usize,
    vertices: usize,
    degree: usize,
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing subcommand");
    }
    let cmd = args.remove(0);
    let mut opts = Opts {
        out: None,
        format: "bin".into(),
        seed: 1,
        shrink: 0,
        scale: 10,
        edge_factor: 16,
        vertices: 1024,
        degree: 8,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => opts.out = it.next(),
            "--format" => opts.format = it.next().unwrap_or_default(),
            "--seed" => opts.seed = parse(it.next()),
            "--shrink" => opts.shrink = parse(it.next()),
            "--scale" => opts.scale = parse(it.next()),
            "--edge-factor" => opts.edge_factor = parse(it.next()),
            "--vertices" => opts.vertices = parse(it.next()),
            "--degree" => opts.degree = parse(it.next()),
            other if other.starts_with("--") => return usage(&format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }

    let graph: Csr = match cmd.as_str() {
        "list" => {
            for spec in suite::suite() {
                println!("{}\t{:?}", spec.name, spec.kind);
            }
            return ExitCode::SUCCESS;
        }
        "suite" => {
            let Some(name) = positional.first() else {
                return usage("suite needs a graph name (see `graphgen list`)");
            };
            let Some(spec) = suite::by_name(name) else {
                return usage(&format!("unknown suite graph `{name}`"));
            };
            spec.generate_scaled(opts.shrink)
        }
        "rmat" => rmat(opts.scale, opts.edge_factor, RmatParams::graph500(), opts.seed),
        "uniform" => uniform_random(opts.vertices, opts.degree, opts.seed),
        other => return usage(&format!("unknown subcommand `{other}`")),
    };

    eprintln!(
        "generated: {} vertices, {} edges (avg degree {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    let bytes: Vec<u8> = match opts.format.as_str() {
        "bin" => io::encode(&graph).to_vec(),
        "edges" => EdgeList::from(&graph).to_text().into_bytes(),
        "dimacs" => {
            let weighted = WeightedCsr::random_weights(graph, 100, opts.seed);
            dimacs::to_string(&weighted).into_bytes()
        }
        other => return usage(&format!("unknown format `{other}`")),
    };
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("error writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} bytes to {path}", bytes.len());
        }
        None => {
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            if stdout.write_all(&bytes).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: expected a numeric value");
        std::process::exit(2)
    })
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: graphgen suite <NAME> | rmat --scale S --edge-factor F | \
         uniform --vertices N --degree D | list   [--seed N] [--shrink N] \
         [--out PATH] [--format bin|edges|dimacs]"
    );
    ExitCode::from(2)
}
