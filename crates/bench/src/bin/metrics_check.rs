//! `metrics-check` — CI gate over a metrics snapshot.
//!
//! ```text
//! metrics-check <SNAPSHOT.json> [REQUIRED_NAME ...]
//! ```
//!
//! Parses the versioned JSON snapshot that `bfs serve-bench --metrics-out`
//! writes and validates it: the required metric names are present (a
//! trailing `*` matches any name with that prefix, covering labelled
//! families like `ibfs_cluster_routed_total{device="0"}`), every histogram
//! is well-formed (monotone p50 ≤ p90 ≤ p99 inside `[min, max]`, count and
//! sum consistent), and the Prometheus rendering re-parses as plain floats.
//! With no explicit names it checks the default serve/cluster/core set.
//! Exits non-zero with a message on the first violation, so `ci.sh` can
//! gate on telemetry without scraping anything.

use ibfs_obs::Snapshot;
use ibfs_util::{FromJson, Json};
use std::process::ExitCode;

/// The default required set: at least one metric from every layer the
/// serve-bench path is supposed to light up.
const DEFAULT_REQUIRED: &[&str] = &[
    "ibfs_serve_accepted_total",
    "ibfs_serve_completed_total",
    "ibfs_serve_latency_seconds",
    "ibfs_serve_latency_seconds{class=\"interactive\"}",
    "ibfs_serve_latency_seconds{class=\"bulk\"}",
    "ibfs_serve_queue_wait_seconds",
    "ibfs_serve_batch_occupancy",
    "ibfs_serve_quota_rejected_total",
    "ibfs_serve_dedup_joined_total",
    "ibfs_serve_cache_*",
    "ibfs_cluster_routed_total*",
    "ibfs_cluster_batch_weight",
    "ibfs_cluster_comm_*",
    "ibfs_core_levels_total",
    "ibfs_core_frontier_size",
    "ibfs_prof_records_total",
    "ibfs_prof_phase_seconds*",
    "ibfs_prof_barrier_share",
    "ibfs_slo_availability*",
    "ibfs_slo_latency_attainment*",
    "ibfs_slo_burn_rate*",
    "ibfs_slo_overload",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((path, names)) = args.split_first() else {
        eprintln!("usage: metrics-check <SNAPSHOT.json> [REQUIRED_NAME ...]");
        return ExitCode::from(2);
    };
    let required: Vec<&str> = if names.is_empty() {
        DEFAULT_REQUIRED.to_vec()
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("metrics-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("metrics-check: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match Snapshot::from_json(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("metrics-check: {path} is not a metrics snapshot: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(msg) = snapshot.validate(&required) {
        eprintln!("metrics-check: {path}: {msg}");
        return ExitCode::FAILURE;
    }
    // The text exposition must round-trip as locale-stable floats.
    for line in snapshot.render_prometheus().lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((_, value)) = line.rsplit_once(' ') else {
            eprintln!("metrics-check: malformed exposition line: {line}");
            return ExitCode::FAILURE;
        };
        if value.parse::<f64>().is_err() {
            eprintln!("metrics-check: non-numeric exposition value: {line}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "metrics-check: {path}: {} metrics ok ({} required names)",
        snapshot.metrics.len(),
        required.len()
    );
    ExitCode::SUCCESS
}
