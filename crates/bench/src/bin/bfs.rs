//! `bfs` — run concurrent BFS on a graph file and report statistics.
//!
//! ```text
//! bfs <GRAPH> [--engine ENGINE] [--sources N | --source-list a,b,c]
//!             [--group-size N] [--groupby] [--depths] [--trace PATH]
//!             [--profile PATH] [--profile-trace PATH]
//! bfs stats <GRAPH> [--engine ENGINE] [--sources N] [--group-size N]
//!             [--groupby] [--json] [--locality]
//! bfs serve-bench <GRAPH> [--clients N] [--requests N] [--workers N]
//!             [--max-batch N] [--window-us N] [--queue N] [--worker-queue N]
//!             [--deadline-ms N] [--seed N] [--policy arrival|groupby|bestof]
//!             [--router rr|lpt] [--scheduler b2b|hyperq] [--engine ENGINE]
//!             [--qos] [--profile uniform|powerlaw] [--bulk-clients N]
//!             [--burst N] [--cache N] [--bulk-quota N] [--check]
//!             [--json] [--metrics-out PATH] [--metrics-text PATH]
//!             [--trace PATH] [--profile-out PATH] [--profile-trace PATH]
//! bfs cpu-bench [--scale N] [--edge-factor N] [--seed N] [--sources N]
//!             [--group-size N] [--threads N[,N...]] [--width 32|64|128|256]
//!             [--engine pooled|tiled|async[,...]] [--tile-size N]
//!             [--reorder none|degree|hub|rcm[,...]] [--repeat N] [--check]
//!             [--out PATH] [--profile-out PATH] [--profile-trace PATH]
//! bfs shard-bench [--scale N] [--edge-factor N] [--seed N] [--sources N]
//!             [--shards N] [--layout contiguous|hash] [--check] [--json]
//!             [--out PATH] [--profile-out PATH] [--profile-trace PATH]
//! bfs perf-diff <BASE.json> <NEW.json> [--noise PCT] [--calibrate ENGINE] [--check]
//! bfs top <SNAPSHOT.json> [--ticks N] [--interval-ms N] [--no-clear]
//!
//! GRAPH    a binary CSR file from `graphgen --format bin`, or a suite
//!          name prefixed with `suite:` (e.g. `suite:FB`)
//! ENGINE   sequential | naive | joint | bitwise (default) | msbfs | spmm,
//!          or a measured CPU engine: pooled | tiled | async
//! PATH     output destination (`-` for stdout)
//!
//! `stats` runs one traversal and prints the metrics registry
//! (Prometheus text, or a versioned JSON snapshot with `--json`);
//! `stats --locality` skips the traversal and instead prints the graph's
//! degree histogram and, for each vertex ordering (`none`, `degree`,
//! `hub`, `rcm`), the mean |u - v| neighbor gap of the relabeled CSR —
//! the locality surrogate the reorder pass optimizes.
//! `serve-bench --metrics-out` writes the end-of-run JSON snapshot,
//! `--metrics-text` the Prometheus rendering, and `--trace` the merged
//! request-span + per-level JSONL stream. `--qos` enables the standard
//! QoS policy (weighted-fair lanes, in-flight dedup, result cache);
//! `--profile powerlaw` draws heavy-tailed sources; `--bulk-clients` and
//! `--burst` turn the first clients into a bursting bulk tenant;
//! `--cache`/`--bulk-quota` size the cache and the bulk tenant's quota;
//! `--check` fails the run unless interactive p99 beats bulk p99 and a
//! power-law run with a cache records at least one hit.
//! `shard-bench` sweeps power-of-two shard counts up to `--shards` over a
//! weak-scaling R-MAT workload and reports frontier-exchange volume
//! (total and per level) for both exchange patterns; its `--check` fails
//! unless sharded depths are bit-identical to `reference_bfs` and
//! Butterfly exchanges strictly fewer messages than AllToAll at ≥ 4
//! shards.
//!
//! A CPU engine on the one-shot path (`--engine pooled|tiled|async`) runs
//! through the measured `CpuService` and can export the per-lane phase
//! profile: `--profile` writes the versioned ProfileReport JSON,
//! `--profile-trace` a Chrome trace-event file (load into
//! `chrome://tracing` or Perfetto). The benches take the same pair as
//! `--profile-out`/`--profile-trace` (serve-bench already uses
//! `--profile` for the source distribution). `perf-diff` compares two
//! cpu-bench reports and, with `--check`, fails on TEPS regressions
//! beyond `--noise` percent. `top` polls a metrics snapshot file and
//! redraws a live SLO/serve/profiler dashboard.
//! ```

use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::RunConfig;
use ibfs::service::IbfsService;
use ibfs::trace::{JsonlSink, MetricsSink, NullSink, TraceLog};
use ibfs_bench::loadgen::{run_loadgen_with, LoadGenConfig, SourceProfile, BULK_TENANT};
use ibfs_graph::{io, suite, Csr, VertexId, DEPTH_UNVISITED};
use ibfs_obs::{EngineProfiler, Registry, Snapshot};
use ibfs_serve::{CoalescePolicy, QosPolicy, RouterKind, SchedulerKind, ServeTelemetry};
use ibfs_util::{FromJson, Json, ToJson};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing graph argument");
    }
    if args[0] == "serve-bench" {
        args.remove(0);
        return serve_bench(args);
    }
    if args[0] == "stats" {
        args.remove(0);
        return stats(args);
    }
    if args[0] == "cpu-bench" {
        args.remove(0);
        return cpu_bench(args);
    }
    if args[0] == "shard-bench" {
        args.remove(0);
        return shard_bench(args);
    }
    if args[0] == "perf-diff" {
        args.remove(0);
        return perf_diff(args);
    }
    if args[0] == "top" {
        args.remove(0);
        return top(args);
    }
    let graph_arg = args.remove(0);
    let mut engine = EngineKind::Bitwise;
    let mut cpu_engine: Option<ibfs::cpu::CpuEngine> = None;
    let mut sources_n = 64usize;
    let mut source_list: Option<Vec<VertexId>> = None;
    let mut group_size = 64usize;
    let mut groupby = false;
    let mut print_depths = false;
    let mut print_levels = false;
    let mut trace: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut profile_trace: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                let arg = it.next();
                match arg.as_deref() {
                    Some("sequential") => engine = EngineKind::Sequential,
                    Some("naive") => engine = EngineKind::Naive,
                    Some("joint") => engine = EngineKind::Joint,
                    Some("bitwise") => engine = EngineKind::Bitwise,
                    Some("msbfs") => engine = EngineKind::BitwiseMsBfsStyle,
                    Some("spmm") => engine = EngineKind::Spmm,
                    // The measured CPU engines route through CpuService
                    // (wall-clock, profiler hooks) instead of the simulator.
                    other => match other.and_then(ibfs::cpu::CpuEngine::parse) {
                        Some(e) => cpu_engine = Some(e),
                        None => return usage(&format!("unknown engine {other:?}")),
                    },
                }
            }
            "--sources" => {
                sources_n = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--sources needs a number"),
                }
            }
            "--source-list" => {
                let Some(list) = it.next() else {
                    return usage("--source-list needs ids");
                };
                let parsed: Result<Vec<VertexId>, _> =
                    list.split(',').map(|x| x.trim().parse()).collect();
                match parsed {
                    Ok(v) => source_list = Some(v),
                    Err(_) => return usage("bad --source-list"),
                }
            }
            "--group-size" => {
                group_size = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--group-size needs a number"),
                }
            }
            "--groupby" => groupby = true,
            "--depths" => print_depths = true,
            "--levels" => print_levels = true,
            "--trace" => {
                trace = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--trace needs a path (or `-` for stdout)"),
                }
            }
            "--profile" => {
                profile_out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile needs a path (or `-` for stdout)"),
                }
            }
            "--profile-trace" => {
                profile_trace = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-trace needs a path (or `-` for stdout)"),
                }
            }
            other => return usage(&format!("unknown option {other}")),
        }
    }
    if (profile_out.is_some() || profile_trace.is_some()) && cpu_engine.is_none() {
        return usage("--profile/--profile-trace need a CPU engine (--engine pooled|tiled|async)");
    }
    if cpu_engine.is_some() && trace.is_some() {
        return usage("--trace is simulator-only; CPU engines export --profile/--profile-trace");
    }

    let graph: Csr = match load_graph(&graph_arg) {
        Ok(g) => g,
        Err(code) => return code,
    };
    let reverse = graph.reverse();
    let sources: Vec<VertexId> = source_list.unwrap_or_else(|| {
        (0..graph.num_vertices().min(sources_n) as VertexId).collect()
    });
    if let Some(&bad) = sources.iter().find(|&&s| s as usize >= graph.num_vertices()) {
        return usage(&format!("source {bad} out of range"));
    }
    if let Some(cpu) = cpu_engine {
        return one_shot_cpu(
            &graph,
            &reverse,
            &sources,
            cpu,
            group_size,
            print_depths,
            print_levels,
            profile_out.as_deref(),
            profile_trace.as_deref(),
        );
    }

    eprintln!(
        "graph: {} vertices, {} edges; engine {engine:?}; {} sources in groups of {group_size}{}",
        graph.num_vertices(),
        graph.num_edges(),
        sources.len(),
        if groupby { " (GroupBy)" } else { " (random grouping)" }
    );
    let grouping = if groupby {
        GroupingStrategy::OutDegreeRules(
            ibfs::groupby::GroupByConfig::default().with_group_size(group_size),
        )
    } else {
        GroupingStrategy::Random { seed: 1, group_size }
    };
    let mut svc = IbfsService::new(&graph, &reverse, RunConfig {
        engine,
        grouping,
        ..Default::default()
    });
    let run = match trace.as_deref() {
        None => svc.run(&sources),
        Some("-") => {
            let mut sink = JsonlSink::new(std::io::stdout().lock());
            svc.run_traced(&sources, &mut sink)
        }
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error creating trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            svc.run_traced(&sources, &mut sink)
        }
    };

    println!("groups:                {}", run.groups.len());
    println!("simulated time:        {:.6} s", run.sim_seconds);
    println!("traversed edges:       {}", run.traversed_edges);
    println!("traversal rate:        {}", ibfs::metrics::format_teps(run.teps()));
    println!("sharing degree:        {:.2}", run.sharing_degree());
    println!("load transactions:     {}", run.counters.global_load_transactions);
    println!("store transactions:    {}", run.counters.global_store_transactions);
    println!("atomic transactions:   {}", run.counters.atomic_transactions);

    if print_levels {
        for (gi, group) in run.groups.iter().enumerate() {
            println!("group {gi} ({} instances):", group.num_instances);
            for l in &group.levels {
                println!(
                    "  level {:3} {:9?}  unique {:7}  instance-frontiers {:9}  edges {:9}  early-term {:6}",
                    l.level, l.direction, l.unique_frontiers, l.instance_frontiers,
                    l.edges_inspected, l.early_terminations
                );
            }
        }
    }

    if print_depths {
        for (gi, group) in run.groups.iter().enumerate() {
            for j in 0..group.num_instances {
                let depths = group.instance_depths(j);
                let reached = depths.iter().filter(|&&d| d != DEPTH_UNVISITED).count();
                let ecc = depths
                    .iter()
                    .filter(|&&d| d != DEPTH_UNVISITED)
                    .max()
                    .copied()
                    .unwrap_or(0);
                println!("group {gi} instance {j}: reached {reached}, eccentricity {ecc}");
            }
        }
    }
    ExitCode::SUCCESS
}

fn load_graph(graph_arg: &str) -> Result<Csr, ExitCode> {
    if let Some(name) = graph_arg.strip_prefix("suite:") {
        match suite::by_name(name) {
            Some(spec) => Ok(spec.generate()),
            None => Err(usage(&format!("unknown suite graph `{name}`"))),
        }
    } else {
        match io::load(std::path::Path::new(graph_arg)) {
            Ok(g) => Ok(g),
            Err(e) => {
                eprintln!("error loading {graph_arg}: {e}");
                Err(ExitCode::FAILURE)
            }
        }
    }
}

/// One-shot traversal through a measured CPU engine ([`ibfs::cpu`]) with
/// optional profiler export. Unlike the simulator path this reports
/// wall-clock (not simulated) time, and the per-lane phase breakdown goes
/// to `--profile`/`--profile-trace`.
#[allow(clippy::too_many_arguments)]
fn one_shot_cpu(
    graph: &Csr,
    reverse: &Csr,
    sources: &[VertexId],
    engine: ibfs::cpu::CpuEngine,
    group_size: usize,
    print_depths: bool,
    print_levels: bool,
    profile_out: Option<&str>,
    profile_trace: Option<&str>,
) -> ExitCode {
    let cpu = ibfs::cpu::CpuIbfs { engine, ..Default::default() };
    let group_size = group_size.min(cpu.width.bits() as usize).min(ibfs::cpu::CPU_GROUP);
    eprintln!(
        "graph: {} vertices, {} edges; cpu engine {}; {} sources in groups of {group_size}",
        graph.num_vertices(),
        graph.num_edges(),
        engine.name(),
        sources.len(),
    );
    let mut svc = cpu.service(graph, reverse);
    let prof =
        (profile_out.is_some() || profile_trace.is_some()).then(EngineProfiler::shared);
    if let Some(p) = &prof {
        svc.set_profiler(p.clone());
    }
    let mut runs = Vec::new();
    for chunk in sources.chunks(group_size.max(1)) {
        match svc.run_group(chunk) {
            Ok(r) => runs.push(r),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let wall: f64 = runs.iter().map(|r| r.wall_seconds).sum();
    let edges: u64 = runs.iter().map(|r| r.traversed_edges).sum();
    let stats = svc.stats();
    println!("groups:                {}", runs.len());
    println!("wall time:             {wall:.6} s");
    println!("traversed edges:       {edges}");
    println!(
        "traversal rate:        {}",
        ibfs::metrics::format_teps(edges as f64 / wall.max(1e-12))
    );
    println!("levels:                {}", stats.stats.levels);
    println!("pool phases:           {}", stats.pool_phases);

    if print_levels {
        for (gi, r) in runs.iter().enumerate() {
            println!("group {gi} ({} instances):", r.num_instances);
            for (l, s) in r.level_seconds.iter().enumerate() {
                println!("  level {l:3}  {s:.6} s");
            }
        }
    }
    if print_depths {
        for (gi, r) in runs.iter().enumerate() {
            for j in 0..r.num_instances {
                let depths = r.instance_depths(j);
                let reached = depths.iter().filter(|&&d| d != DEPTH_UNVISITED).count();
                let ecc = depths
                    .iter()
                    .filter(|&&d| d != DEPTH_UNVISITED)
                    .max()
                    .copied()
                    .unwrap_or(0);
                println!("group {gi} instance {j}: reached {reached}, eccentricity {ecc}");
            }
        }
    }
    if let Some(p) = &prof {
        if let Err(code) =
            export_profile(p, &format!("bfs-{}", engine.name()), profile_out, profile_trace)
        {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Builds, self-validates, and writes a [`ibfs_obs::ProfileReport`]. The
/// binary refuses to emit a report that fails its own schema or recorded
/// nothing, so `ci.sh` gates are plain invocations. The phase summary goes
/// to stderr either way.
fn export_profile(
    prof: &EngineProfiler,
    source: &str,
    report_path: Option<&str>,
    trace_path: Option<&str>,
) -> Result<(), ExitCode> {
    let report = prof.report(source);
    if let Err(e) = report.validate() {
        eprintln!("error: profile report fails validation: {e}");
        return Err(ExitCode::FAILURE);
    }
    if report.records.is_empty() {
        eprintln!("error: profile report is empty — no phases were recorded");
        return Err(ExitCode::FAILURE);
    }
    if let Some(path) = report_path {
        let mut body = report.to_json().to_string_pretty();
        body.push('\n');
        write_output(path, &body, "profile report")?;
    }
    if let Some(path) = trace_path {
        let mut body = report.to_chrome_trace();
        body.push('\n');
        write_output(path, &body, "chrome trace")?;
    }
    eprint!("{}", report.summary());
    Ok(())
}

/// `bfs serve-bench` — drive the batching server with closed-loop clients
/// and report latency, throughput, and batch-shape statistics.
fn serve_bench(args: Vec<String>) -> ExitCode {
    if args.is_empty() {
        return usage("serve-bench: missing graph argument");
    }
    let mut args = args;
    let graph_arg = args.remove(0);
    let mut cfg = LoadGenConfig::default();
    let mut json = false;
    let mut metrics_out: Option<String> = None;
    let mut metrics_text: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut profile_trace: Option<String> = None;
    let mut qos = false;
    let mut cache: Option<u64> = None;
    let mut bulk_quota: Option<u64> = None;
    let mut check = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let num = |flag: &str, it: &mut dyn Iterator<Item = String>| -> Option<u64> {
            let v = it.next().and_then(|s| s.parse().ok());
            if v.is_none() {
                eprintln!("error: {flag} needs a number");
            }
            v
        };
        match a.as_str() {
            "--clients" => match num("--clients", &mut it) {
                Some(n) => cfg.clients = n as usize,
                None => return ExitCode::from(2),
            },
            "--requests" => match num("--requests", &mut it) {
                Some(n) => cfg.requests_per_client = n as usize,
                None => return ExitCode::from(2),
            },
            "--workers" => match num("--workers", &mut it) {
                Some(n) => cfg.serve.workers = n as usize,
                None => return ExitCode::from(2),
            },
            "--max-batch" => match num("--max-batch", &mut it) {
                Some(n) => cfg.serve.max_batch = n as usize,
                None => return ExitCode::from(2),
            },
            "--window-us" => match num("--window-us", &mut it) {
                Some(n) => cfg.serve.batch_window = Duration::from_micros(n),
                None => return ExitCode::from(2),
            },
            "--queue" => match num("--queue", &mut it) {
                Some(n) => cfg.serve.queue_capacity = n as usize,
                None => return ExitCode::from(2),
            },
            "--worker-queue" => match num("--worker-queue", &mut it) {
                Some(n) => cfg.serve.worker_queue_capacity = n as usize,
                None => return ExitCode::from(2),
            },
            "--deadline-ms" => match num("--deadline-ms", &mut it) {
                Some(n) => cfg.serve.default_deadline = Some(Duration::from_millis(n)),
                None => return ExitCode::from(2),
            },
            "--seed" => match num("--seed", &mut it) {
                Some(n) => cfg.seed = n,
                None => return ExitCode::from(2),
            },
            "--policy" => {
                cfg.serve.policy = match it.next().as_deref() {
                    Some("arrival") => CoalescePolicy::Arrival,
                    Some("groupby") => CoalescePolicy::GroupBy,
                    Some("bestof") => CoalescePolicy::BestOf,
                    other => return usage(&format!("unknown policy {other:?}")),
                }
            }
            "--router" => {
                cfg.serve.router = match it.next().as_deref() {
                    Some("rr") => RouterKind::RoundRobin,
                    Some("lpt") => RouterKind::LeastLoaded,
                    other => return usage(&format!("unknown router {other:?}")),
                }
            }
            "--scheduler" => {
                cfg.serve.scheduler = match it.next().as_deref() {
                    Some("b2b") => SchedulerKind::BackToBack,
                    Some("hyperq") => SchedulerKind::HyperQOverlap,
                    other => return usage(&format!("unknown scheduler {other:?}")),
                }
            }
            "--engine" => {
                cfg.serve.run.engine = match it.next().as_deref() {
                    Some("sequential") => EngineKind::Sequential,
                    Some("naive") => EngineKind::Naive,
                    Some("joint") => EngineKind::Joint,
                    Some("bitwise") => EngineKind::Bitwise,
                    Some("msbfs") => EngineKind::BitwiseMsBfsStyle,
                    Some("spmm") => EngineKind::Spmm,
                    other => return usage(&format!("unknown engine {other:?}")),
                }
            }
            "--qos" => qos = true,
            "--profile" => {
                cfg.profile = match it.next().as_deref() {
                    Some("uniform") => SourceProfile::Uniform,
                    Some("powerlaw") => SourceProfile::PowerLaw { exponent: 1.2 },
                    other => return usage(&format!("unknown profile {other:?}")),
                }
            }
            "--bulk-clients" => match num("--bulk-clients", &mut it) {
                Some(n) => cfg.bulk_clients = n as usize,
                None => return ExitCode::from(2),
            },
            "--burst" => match num("--burst", &mut it) {
                Some(n) => cfg.burst = n as usize,
                None => return ExitCode::from(2),
            },
            "--cache" => match num("--cache", &mut it) {
                Some(n) => cache = Some(n),
                None => return ExitCode::from(2),
            },
            "--bulk-quota" => match num("--bulk-quota", &mut it) {
                Some(n) => bulk_quota = Some(n),
                None => return ExitCode::from(2),
            },
            "--check" => check = true,
            "--json" => json = true,
            "--metrics-out" => {
                metrics_out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--metrics-out needs a path (or `-` for stdout)"),
                }
            }
            "--metrics-text" => {
                metrics_text = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--metrics-text needs a path (or `-` for stdout)"),
                }
            }
            "--trace" => {
                trace_out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--trace needs a path (or `-` for stdout)"),
                }
            }
            "--profile-out" => {
                profile_out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-out needs a path (or `-` for stdout)"),
                }
            }
            "--profile-trace" => {
                profile_trace = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-trace needs a path (or `-` for stdout)"),
                }
            }
            other => return usage(&format!("serve-bench: unknown option {other}")),
        }
    }

    // Compose the QoS policy from the flags: `--qos` is the standard
    // dedup + cache policy; `--cache` and `--bulk-quota` refine it (and
    // enable QoS on their own).
    if qos || cache.is_some() || bulk_quota.is_some() {
        let mut policy = if qos { QosPolicy::standard() } else { QosPolicy::default() };
        if let Some(cap) = cache {
            policy = policy.with_cache(cap as usize);
        }
        if let Some(q) = bulk_quota {
            policy = policy.with_quota(BULK_TENANT, q);
        }
        cfg.serve.qos = policy;
    }
    let qos_on = qos || cache.is_some() || bulk_quota.is_some();

    let graph = match load_graph(&graph_arg) {
        Ok(g) => g,
        Err(code) => return code,
    };
    let reverse = graph.reverse();
    eprintln!(
        "serve-bench: {} vertices, {} edges; {} clients x {} requests; {} workers, \
         max batch {}, window {:?}, policy {:?}",
        graph.num_vertices(),
        graph.num_edges(),
        cfg.clients,
        cfg.requests_per_client,
        cfg.serve.workers,
        cfg.serve.max_batch,
        cfg.serve.batch_window,
        cfg.serve.policy,
    );
    let mut telemetry = ServeTelemetry::with_registry(Registry::shared());
    let trace_log = trace_out.as_ref().map(|_| TraceLog::new());
    if let Some(log) = &trace_log {
        telemetry = telemetry.traced(log.clone());
    }
    let profiler =
        (profile_out.is_some() || profile_trace.is_some()).then(EngineProfiler::shared);
    if let Some(p) = &profiler {
        telemetry = telemetry.profiled(p.clone());
    }
    let res = run_loadgen_with(&graph, &reverse, &cfg, telemetry);

    if let Some(path) = &metrics_out {
        let body = res.report.snapshot.to_json().to_string_pretty();
        if let Err(code) = write_output(path, &body, "metrics snapshot") {
            return code;
        }
    }
    if let Some(path) = &metrics_text {
        let body = res.report.snapshot.render_prometheus();
        if let Err(code) = write_output(path, &body, "metrics text") {
            return code;
        }
    }
    if let (Some(path), Some(log)) = (&trace_out, &trace_log) {
        if let Err(code) = write_output(path, &log.render_jsonl(), "trace") {
            return code;
        }
    }
    if let Some(p) = &profiler {
        if let Err(code) =
            export_profile(p, "serve-bench", profile_out.as_deref(), profile_trace.as_deref())
        {
            return code;
        }
    }

    let s = &res.summary;
    let r = &res.report;
    if json {
        println!("{}", s.to_json().to_string_pretty());
        return serve_bench_check(check, qos_on, cfg.profile, s, r);
    }
    println!("issued:             {}", s.issued);
    println!(
        "completed:          {} (timeouts {}, overloaded {}, shutdown {})",
        s.completed, s.timeouts, s.overloaded, r.shutdown
    );
    println!(
        "latency:            {:.3} ms mean ({:.3} ms stddev)",
        s.latency_s.mean * 1e3,
        s.latency_s.stddev * 1e3
    );
    println!("throughput:         {:.1} requests/s over {:.3} s", s.throughput_rps, s.wall_seconds);
    println!(
        "batches:            {} ({} groupby, {} arrival)",
        s.num_batches, r.groupby_batches, r.arrival_batches
    );
    println!("batch occupancy:    {:.2}", s.occupancy);
    println!("sharing degree:     {:.2}", s.sharing_degree);
    println!("queue wait:         {:.3} ms mean", r.stats.queue_wait_s.mean * 1e3);
    println!(
        "simulated rate:     {}",
        ibfs::metrics::format_teps(s.sim_teps)
    );
    if qos_on {
        println!(
            "qos p99:            interactive {:.3} ms, bulk {:.3} ms",
            s.interactive_p99_s * 1e3,
            s.bulk_p99_s * 1e3
        );
        println!(
            "qos reuse:          cache hits {} ({:.1}% of lookups, {} stale), dedup joined {}",
            s.cache_hits,
            s.cache_hit_rate * 1e2,
            r.cache_stale,
            s.dedup_joined
        );
        println!("quota rejected:     {}", s.quota_rejected);
    }
    serve_bench_check(check, qos_on, cfg.profile, s, r)
}

/// End-of-run acceptance for `serve-bench`: request conservation always,
/// plus the QoS invariants under `--check` — interactive p99 must beat
/// bulk p99 when both classes completed work, and a heavy-tailed profile
/// with a result cache must actually hit it.
fn serve_bench_check(
    check: bool,
    qos_on: bool,
    profile: SourceProfile,
    s: &ibfs_bench::loadgen::LoadGenSummary,
    r: &ibfs_serve::ServeReport,
) -> ExitCode {
    if !r.is_conserved() {
        eprintln!("error: request accounting not conserved");
        return ExitCode::FAILURE;
    }
    if qos_on && !r.is_conserved_per_class() {
        eprintln!("error: per-class request accounting not conserved");
        return ExitCode::FAILURE;
    }
    if !check {
        return ExitCode::SUCCESS;
    }
    let mut failed = false;
    if s.interactive_p99_s > 0.0 && s.bulk_p99_s > 0.0 && s.interactive_p99_s >= s.bulk_p99_s {
        eprintln!(
            "check failed: interactive p99 {:.3} ms >= bulk p99 {:.3} ms",
            s.interactive_p99_s * 1e3,
            s.bulk_p99_s * 1e3
        );
        failed = true;
    }
    // Lookups happen iff a cache is configured, so hits+misses > 0 is
    // the "cache on and exercised" signal.
    if matches!(profile, SourceProfile::PowerLaw { .. })
        && s.cache_hits == 0
        && s.cache_hits + r.cache_misses > 0
    {
        eprintln!("check failed: power-law profile with a result cache never hit it");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `bfs stats` — run one traversal with the metrics sink attached and
/// print the registry, as Prometheus text or a versioned JSON snapshot.
fn stats(args: Vec<String>) -> ExitCode {
    if args.is_empty() {
        return usage("stats: missing graph argument");
    }
    let mut args = args;
    let graph_arg = args.remove(0);
    let mut engine = EngineKind::Bitwise;
    let mut sources_n = 64usize;
    let mut group_size = 64usize;
    let mut groupby = false;
    let mut json = false;
    let mut locality = false;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                engine = match it.next().as_deref() {
                    Some("sequential") => EngineKind::Sequential,
                    Some("naive") => EngineKind::Naive,
                    Some("joint") => EngineKind::Joint,
                    Some("bitwise") => EngineKind::Bitwise,
                    Some("msbfs") => EngineKind::BitwiseMsBfsStyle,
                    Some("spmm") => EngineKind::Spmm,
                    other => return usage(&format!("unknown engine {other:?}")),
                }
            }
            "--sources" => {
                sources_n = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--sources needs a number"),
                }
            }
            "--group-size" => {
                group_size = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--group-size needs a number"),
                }
            }
            "--groupby" => groupby = true,
            "--json" => json = true,
            "--locality" => locality = true,
            other => return usage(&format!("stats: unknown option {other}")),
        }
    }

    let graph = match load_graph(&graph_arg) {
        Ok(g) => g,
        Err(code) => return code,
    };
    if locality {
        return locality_stats(&graph, json);
    }
    let reverse = graph.reverse();
    let sources: Vec<VertexId> =
        (0..graph.num_vertices().min(sources_n) as VertexId).collect();
    let grouping = if groupby {
        GroupingStrategy::OutDegreeRules(
            ibfs::groupby::GroupByConfig::default().with_group_size(group_size),
        )
    } else {
        GroupingStrategy::Random { seed: 1, group_size }
    };
    let mut svc = IbfsService::new(&graph, &reverse, RunConfig {
        engine,
        grouping,
        ..Default::default()
    });
    let registry = Registry::new();
    let mut null = NullSink;
    let mut sink = MetricsSink::new(&registry, &mut null);
    let run = svc.run_traced(&sources, &mut sink);
    eprintln!(
        "stats: {} vertices, {} edges; {} sources in {} groups; {:.6} s simulated",
        graph.num_vertices(),
        graph.num_edges(),
        sources.len(),
        run.groups.len(),
        run.sim_seconds,
    );
    let snapshot = registry.snapshot();
    if json {
        println!("{}", snapshot.to_json().to_string_pretty());
    } else {
        print!("{}", snapshot.render_prometheus());
    }
    ExitCode::SUCCESS
}

/// `bfs stats --locality` — the layout report behind the reorder pass.
/// Prints the degree histogram (power-of-two buckets) and, for each
/// [`ibfs_graph::reorder::ReorderKind`], the mean absolute neighbor gap
/// `mean |u - v|` of the relabeled CSR. The gap is the locality
/// surrogate: status-word and depth-table probes during a top-down
/// expansion of `u` touch cache lines proportional to how far its
/// neighbors' ids sit from each other, so orderings that shrink the mean
/// gap turn scattered probes into sequential ones.
fn locality_stats(graph: &Csr, json: bool) -> ExitCode {
    use ibfs_graph::reorder::{mean_neighbor_gap, ReorderKind, VertexPerm};
    let n = graph.num_vertices();
    // Power-of-two degree buckets: bucket 0 holds degree 0, bucket b >= 1
    // holds degrees in [2^(b-1), 2^b).
    let mut hist: Vec<u64> = Vec::new();
    for v in 0..n as VertexId {
        let d = graph.out_degree(v);
        let b = if d == 0 { 0 } else { (usize::BITS - (d as usize).leading_zeros()) as usize };
        if hist.len() <= b {
            hist.resize(b + 1, 0);
        }
        hist[b] += 1;
    }
    let mut gaps: Vec<(ReorderKind, f64)> = Vec::new();
    for kind in ReorderKind::all() {
        let gap = match VertexPerm::build(kind, graph, ibfs::cpu::REORDER_SEED) {
            None => mean_neighbor_gap(graph),
            Some(perm) => mean_neighbor_gap(&perm.apply(graph)),
        };
        gaps.push((kind, gap));
    }

    if json {
        let hist_json: Vec<Json> = hist.iter().map(|&c| Json::UInt(c)).collect();
        let gaps_json: Vec<Json> = gaps
            .iter()
            .map(|(k, g)| {
                Json::Obj(vec![
                    ("reorder".to_string(), Json::Str(k.name().to_string())),
                    ("mean_neighbor_gap".to_string(), Json::Float(*g)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("num_vertices".to_string(), Json::UInt(n as u64)),
            ("num_edges".to_string(), Json::UInt(graph.num_edges() as u64)),
            ("degree_histogram_pow2".to_string(), Json::Arr(hist_json)),
            ("orderings".to_string(), Json::Arr(gaps_json)),
        ]);
        println!("{}", doc.to_string_pretty());
        return ExitCode::SUCCESS;
    }

    println!("locality: {} vertices, {} edges", n, graph.num_edges());
    println!("degree histogram (power-of-two buckets):");
    for (b, &count) in hist.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let (lo, hi) = if b == 0 { (0, 0) } else { (1usize << (b - 1), (1usize << b) - 1) };
        println!("  degree {lo:>8}..={hi:<8} {count:>10} vertices");
    }
    let base = gaps
        .iter()
        .find(|(k, _)| *k == ReorderKind::None)
        .map(|&(_, g)| g)
        .unwrap_or(f64::NAN);
    println!("mean neighbor gap |u - v| by ordering (lower = more sequential):");
    for (kind, gap) in &gaps {
        println!(
            "  {:<8} {:>14.1}  ({:.2}x of natural)",
            kind.name(),
            gap,
            gap / base.max(1e-12),
        );
    }
    ExitCode::SUCCESS
}

/// `bfs cpu-bench` — measure the round-2 CPU engines (pooled, tiled,
/// async) against the frozen pre-pool baseline on a seeded R-MAT workload
/// and write `BENCH_cpu.json`. `--check` verifies every engine's depths
/// against `reference_bfs` and, when the tiled engine is swept, gates
/// tiled TEPS >= pooled TEPS on a hub-heavy graph — plus, when a
/// non-`none` `--reorder` ordering is swept with it, gates reordered
/// tiled TEPS >= unreordered tiled TEPS on a power-law R-MAT (both gates
/// report without enforcing on single-core hosts).
fn cpu_bench(args: Vec<String>) -> ExitCode {
    use ibfs_bench::cpubench::{
        report_summary, report_to_json, run_cpu_bench, validate_report_json, CpuBenchConfig,
    };
    let mut cfg = CpuBenchConfig::default();
    let mut out: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut profile_trace: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--scale needs a number"),
                }
            }
            "--edge-factor" => {
                cfg.edge_factor = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--edge-factor needs a number"),
                }
            }
            "--seed" => {
                cfg.seed = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--seed needs a number"),
                }
            }
            "--sources" => {
                cfg.sources = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--sources needs a number"),
                }
            }
            "--group-size" => {
                cfg.group_size = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--group-size needs a number"),
                }
            }
            "--threads" => {
                let Some(list) = it.next() else {
                    return usage("--threads needs a count or comma list (e.g. 1,2,4,8)");
                };
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|x| x.trim().parse()).collect();
                match parsed {
                    Ok(v) if !v.is_empty() && v.iter().all(|&t| t > 0) => cfg.threads = v,
                    _ => return usage("bad --threads list"),
                }
            }
            "--width" => {
                let arg = it.next();
                match arg.as_deref().and_then(ibfs::word::WordWidth::parse) {
                    Some(w) => cfg.width = w,
                    None => {
                        return usage(&format!(
                            "unknown width {} (expect 32|64|128|256)",
                            arg.as_deref().unwrap_or("<missing>")
                        ))
                    }
                }
            }
            "--engine" => {
                let Some(list) = it.next() else {
                    return usage("--engine needs a name or comma list (pooled|tiled|async)");
                };
                let parsed: Option<Vec<_>> = list
                    .split(',')
                    .map(|x| ibfs::cpu::CpuEngine::parse(x.trim()))
                    .collect();
                match parsed {
                    Some(v) if !v.is_empty() => cfg.engines = v,
                    _ => return usage("bad --engine list (expect pooled|tiled|async)"),
                }
            }
            "--tile-size" => {
                cfg.tile_size = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--tile-size needs a number (0 = autotune)"),
                }
            }
            "--reorder" => {
                let Some(list) = it.next() else {
                    return usage("--reorder needs a name or comma list (none|degree|hub|rcm)");
                };
                let parsed: Option<Vec<_>> = list
                    .split(',')
                    .map(|x| ibfs_graph::reorder::ReorderKind::parse(x.trim()))
                    .collect();
                match parsed {
                    Some(v) if !v.is_empty() => {
                        // Every reordered row needs its unreordered control
                        // row (the validator refuses documents without one),
                        // so `none` is always swept first.
                        let mut reorders = vec![ibfs_graph::reorder::ReorderKind::None];
                        for k in v {
                            if !reorders.contains(&k) {
                                reorders.push(k);
                            }
                        }
                        cfg.reorders = reorders;
                    }
                    _ => return usage("bad --reorder list (expect none|degree|hub|rcm)"),
                }
            }
            "--repeat" => {
                cfg.repeat = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--repeat needs a number (best-of-N passes)"),
                }
            }
            "--check" => cfg.check = true,
            "--out" => {
                out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--out needs a path (or `-` for stdout)"),
                }
            }
            "--profile-out" => {
                profile_out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-out needs a path (or `-` for stdout)"),
                }
            }
            "--profile-trace" => {
                profile_trace = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-trace needs a path (or `-` for stdout)"),
                }
            }
            other => return usage(&format!("cpu-bench: unknown option {other}")),
        }
    }
    let profiler =
        (profile_out.is_some() || profile_trace.is_some()).then(EngineProfiler::shared);
    cfg.profiler = profiler.clone();

    let engine_names: Vec<&str> = cfg.engines.iter().map(|e| e.name()).collect();
    let reorder_names: Vec<&str> = cfg.reorders.iter().map(|r| r.name()).collect();
    eprintln!(
        "cpu-bench: rmat scale {} edge-factor {} seed {}; {} sources, groups of {}, \
         width {}, threads {:?}, engines {engine_names:?}, tile-size {}, reorder {reorder_names:?}{}",
        cfg.scale,
        cfg.edge_factor,
        cfg.seed,
        cfg.sources,
        cfg.group_size,
        cfg.width,
        cfg.threads,
        cfg.tile_size,
        if cfg.check { " (checked against reference + baseline)" } else { "" },
    );
    let report = run_cpu_bench(&cfg);
    let body = report_to_json(&report);
    // Round-trip the exact bytes we are about to write through the schema
    // validator, so a written file is a valid file.
    if let Err(e) = validate_report_json(&body) {
        eprintln!("error: emitted report fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &out {
        if let Err(code) = write_output(path, &body, "cpu bench report") {
            return code;
        }
    }
    if let Some(p) = &profiler {
        if let Err(code) =
            export_profile(p, "cpu-bench", profile_out.as_deref(), profile_trace.as_deref())
        {
            return code;
        }
    }
    print!("{}", report_summary(&report));
    ExitCode::SUCCESS
}

fn shard_bench(args: Vec<String>) -> ExitCode {
    use ibfs_bench::shardbench::{run_shard_bench, ShardBenchConfig};
    use ibfs_graph::partition::OwnershipLayout;
    let mut cfg = ShardBenchConfig::default();
    let mut out: Option<String> = None;
    let mut json = false;
    let mut profile_out: Option<String> = None;
    let mut profile_trace: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cfg.scale = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--scale needs a number"),
                }
            }
            "--edge-factor" => {
                cfg.edge_factor = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--edge-factor needs a number"),
                }
            }
            "--seed" => {
                cfg.seed = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--seed needs a number"),
                }
            }
            "--sources" => {
                cfg.sources = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--sources needs a number"),
                }
            }
            "--shards" => {
                cfg.max_shards = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => return usage("--shards needs a positive number"),
                }
            }
            "--layout" => match it.next().as_deref() {
                Some("contiguous") => cfg.layout = OwnershipLayout::Contiguous,
                Some("hash") => cfg.layout = OwnershipLayout::Hash,
                _ => return usage("--layout expects contiguous|hash"),
            },
            "--check" => cfg.check = true,
            "--json" => json = true,
            "--out" => {
                out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--out needs a path (or `-` for stdout)"),
                }
            }
            "--profile-out" => {
                profile_out = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-out needs a path (or `-` for stdout)"),
                }
            }
            "--profile-trace" => {
                profile_trace = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--profile-trace needs a path (or `-` for stdout)"),
                }
            }
            other => return usage(&format!("shard-bench: unknown option {other}")),
        }
    }
    let profiler =
        (profile_out.is_some() || profile_trace.is_some()).then(EngineProfiler::shared);
    cfg.profiler = profiler.clone();

    eprintln!(
        "shard-bench: rmat base scale {} edge-factor {} seed {}; {} sources, up to {} \
         shards, {:?} layout{}",
        cfg.scale,
        cfg.edge_factor,
        cfg.seed,
        cfg.sources,
        cfg.max_shards,
        cfg.layout,
        if cfg.check { " (checked against reference_bfs + message-count gate)" } else { "" },
    );
    let report = match run_shard_bench(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", report.weak_scaling.render());
        print!("{}", report.per_level.render());
    }
    if let Some(path) = &out {
        if let Err(code) = write_output(path, &report.to_json().to_string_pretty(), "shard bench report") {
            return code;
        }
    }
    if let Some(p) = &profiler {
        if let Err(code) =
            export_profile(p, "shard-bench", profile_out.as_deref(), profile_trace.as_deref())
        {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// `bfs perf-diff` — compare two `BENCH_cpu.json` documents and fail (with
/// `--check`) on TEPS regressions beyond the noise band.
fn perf_diff(args: Vec<String>) -> ExitCode {
    use ibfs_bench::perfdiff::{diff_report_texts, render_diff, DEFAULT_NOISE_PCT};
    let mut noise = DEFAULT_NOISE_PCT;
    let mut check = false;
    let mut calibrate: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--noise" => {
                noise = match it.next().and_then(|s| s.parse::<f64>().ok()) {
                    Some(n) if n >= 0.0 => n,
                    _ => return usage("--noise needs a non-negative percentage"),
                }
            }
            "--calibrate" => {
                calibrate = match it.next() {
                    Some(e) if !e.starts_with("--") => Some(e),
                    _ => return usage("--calibrate needs an engine name"),
                }
            }
            "--check" => check = true,
            other if other.starts_with("--") => {
                return usage(&format!("perf-diff: unknown option {other}"))
            }
            _ => paths.push(a),
        }
    }
    if paths.len() != 2 {
        return usage("perf-diff needs exactly two report paths: BASE NEW");
    }
    let mut texts = Vec::new();
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(t) => texts.push(t),
            Err(e) => {
                eprintln!("error reading {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match diff_report_texts(&texts[0], &paths[0], &texts[1], &paths[1], noise, calibrate.as_deref())
    {
        Ok(diff) => {
            print!("{}", render_diff(&diff, &paths[0], &paths[1]));
            if check && !diff.passes() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `bfs top` — poll a metrics snapshot file (e.g. one rewritten by
/// `serve-bench --metrics-out`) and redraw the live SLO / serve / profiler
/// dashboard between ticks. An unreadable or partially-written file skips
/// the tick instead of killing the watch.
fn top(args: Vec<String>) -> ExitCode {
    use ibfs_bench::top::render_dashboard;
    let mut path: Option<String> = None;
    let mut ticks = 0u64;
    let mut interval = Duration::from_millis(1000);
    let mut clear = true;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ticks" => {
                ticks = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--ticks needs a number (0 = until interrupted)"),
                }
            }
            "--interval-ms" => {
                interval = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => Duration::from_millis(n),
                    None => return usage("--interval-ms needs a number"),
                }
            }
            "--no-clear" => clear = false,
            other if other.starts_with("--") => {
                return usage(&format!("top: unknown option {other}"))
            }
            _ => {
                if path.replace(a).is_some() {
                    return usage("top takes exactly one snapshot path");
                }
            }
        }
    }
    let Some(path) = path else {
        return usage("top: missing snapshot path (write one with serve-bench --metrics-out)");
    };

    let mut prev: Option<Snapshot> = None;
    let mut tick = 0u64;
    loop {
        let cur = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| Json::parse(&t).ok())
            .and_then(|j| Snapshot::from_json(&j).ok());
        match cur {
            Some(cur) => {
                let frame = render_dashboard(prev.as_ref(), &cur, tick);
                if clear {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{frame}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                prev = Some(cur);
            }
            None => eprintln!("top: {path}: no readable snapshot yet (tick {tick})"),
        }
        tick += 1;
        if ticks != 0 && tick >= ticks {
            break;
        }
        std::thread::sleep(interval);
    }
    ExitCode::SUCCESS
}

/// Writes `body` to `path`, with `-` meaning stdout. `what` names the
/// payload in error messages.
fn write_output(path: &str, body: &str, what: &str) -> Result<(), ExitCode> {
    if path == "-" {
        print!("{body}");
        return Ok(());
    }
    match std::fs::write(path, body) {
        Ok(()) => {
            eprintln!("wrote {what} to {path}");
            Ok(())
        }
        Err(e) => {
            eprintln!("error writing {what} to {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bfs <GRAPH|suite:NAME> [--engine sequential|naive|joint|bitwise|msbfs|spmm\
         |pooled|tiled|async] \
         [--sources N | --source-list a,b,c] [--group-size N] [--groupby] [--depths] [--levels] \
         [--trace PATH|-] [--profile PATH|-] [--profile-trace PATH|-]\n\
       bfs stats <GRAPH|suite:NAME> [--engine ENGINE] [--sources N] [--group-size N] \
         [--groupby] [--json] [--locality]\n\
       bfs serve-bench <GRAPH|suite:NAME> [--clients N] [--requests N] [--workers N] \
         [--max-batch N] [--window-us N] [--queue N] [--worker-queue N] [--deadline-ms N] \
         [--seed N] [--policy arrival|groupby|bestof] [--router rr|lpt] \
         [--scheduler b2b|hyperq] [--engine ENGINE] [--qos] \
         [--profile uniform|powerlaw] [--bulk-clients N] [--burst N] [--cache N] \
         [--bulk-quota N] [--check] [--json] \
         [--metrics-out PATH|-] [--metrics-text PATH|-] [--trace PATH|-] \
         [--profile-out PATH|-] [--profile-trace PATH|-]\n\
       bfs cpu-bench [--scale N] [--edge-factor N] [--seed N] [--sources N] \
         [--group-size N] [--threads N[,N...]] [--width 32|64|128|256] \
         [--engine pooled|tiled|async[,...]] [--tile-size N] \
         [--reorder none|degree|hub|rcm[,...]] [--repeat N] [--check] \
         [--out PATH|-] [--profile-out PATH|-] [--profile-trace PATH|-]\n\
       bfs shard-bench [--scale N] [--edge-factor N] [--seed N] [--sources N] \
         [--shards N] [--layout contiguous|hash] [--check] [--json] [--out PATH|-] \
         [--profile-out PATH|-] [--profile-trace PATH|-]\n\
       bfs perf-diff <BASE.json> <NEW.json> [--noise PCT] [--calibrate ENGINE] [--check]\n\
       bfs top <SNAPSHOT.json> [--ticks N] [--interval-ms N] [--no-clear]"
    );
    ExitCode::from(2)
}
