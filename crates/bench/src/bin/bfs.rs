//! `bfs` — run concurrent BFS on a graph file and report statistics.
//!
//! ```text
//! bfs <GRAPH> [--engine ENGINE] [--sources N | --source-list a,b,c]
//!             [--group-size N] [--groupby] [--depths] [--trace PATH]
//!
//! GRAPH    a binary CSR file from `graphgen --format bin`, or a suite
//!          name prefixed with `suite:` (e.g. `suite:FB`)
//! ENGINE   sequential | naive | joint | bitwise (default) | msbfs | spmm
//! PATH     JSONL destination for the per-level trace (`-` for stdout)
//! ```

use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::RunConfig;
use ibfs::service::IbfsService;
use ibfs::trace::JsonlSink;
use ibfs_graph::{io, suite, Csr, VertexId, DEPTH_UNVISITED};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage("missing graph argument");
    }
    let graph_arg = args.remove(0);
    let mut engine = EngineKind::Bitwise;
    let mut sources_n = 64usize;
    let mut source_list: Option<Vec<VertexId>> = None;
    let mut group_size = 64usize;
    let mut groupby = false;
    let mut print_depths = false;
    let mut print_levels = false;
    let mut trace: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                engine = match it.next().as_deref() {
                    Some("sequential") => EngineKind::Sequential,
                    Some("naive") => EngineKind::Naive,
                    Some("joint") => EngineKind::Joint,
                    Some("bitwise") => EngineKind::Bitwise,
                    Some("msbfs") => EngineKind::BitwiseMsBfsStyle,
                    Some("spmm") => EngineKind::Spmm,
                    other => return usage(&format!("unknown engine {other:?}")),
                }
            }
            "--sources" => {
                sources_n = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--sources needs a number"),
                }
            }
            "--source-list" => {
                let Some(list) = it.next() else {
                    return usage("--source-list needs ids");
                };
                let parsed: Result<Vec<VertexId>, _> =
                    list.split(',').map(|x| x.trim().parse()).collect();
                match parsed {
                    Ok(v) => source_list = Some(v),
                    Err(_) => return usage("bad --source-list"),
                }
            }
            "--group-size" => {
                group_size = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) => n,
                    None => return usage("--group-size needs a number"),
                }
            }
            "--groupby" => groupby = true,
            "--depths" => print_depths = true,
            "--levels" => print_levels = true,
            "--trace" => {
                trace = match it.next() {
                    Some(p) => Some(p),
                    None => return usage("--trace needs a path (or `-` for stdout)"),
                }
            }
            other => return usage(&format!("unknown option {other}")),
        }
    }

    let graph: Csr = if let Some(name) = graph_arg.strip_prefix("suite:") {
        match suite::by_name(name) {
            Some(spec) => spec.generate(),
            None => return usage(&format!("unknown suite graph `{name}`")),
        }
    } else {
        match io::load(std::path::Path::new(&graph_arg)) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error loading {graph_arg}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let reverse = graph.reverse();
    let sources: Vec<VertexId> = source_list.unwrap_or_else(|| {
        (0..graph.num_vertices().min(sources_n) as VertexId).collect()
    });
    if let Some(&bad) = sources.iter().find(|&&s| s as usize >= graph.num_vertices()) {
        return usage(&format!("source {bad} out of range"));
    }

    eprintln!(
        "graph: {} vertices, {} edges; engine {engine:?}; {} sources in groups of {group_size}{}",
        graph.num_vertices(),
        graph.num_edges(),
        sources.len(),
        if groupby { " (GroupBy)" } else { " (random grouping)" }
    );
    let grouping = if groupby {
        GroupingStrategy::OutDegreeRules(
            ibfs::groupby::GroupByConfig::default().with_group_size(group_size),
        )
    } else {
        GroupingStrategy::Random { seed: 1, group_size }
    };
    let mut svc = IbfsService::new(&graph, &reverse, RunConfig {
        engine,
        grouping,
        ..Default::default()
    });
    let run = match trace.as_deref() {
        None => svc.run(&sources),
        Some("-") => {
            let mut sink = JsonlSink::new(std::io::stdout().lock());
            svc.run_traced(&sources, &mut sink)
        }
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("error creating trace file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            svc.run_traced(&sources, &mut sink)
        }
    };

    println!("groups:                {}", run.groups.len());
    println!("simulated time:        {:.6} s", run.sim_seconds);
    println!("traversed edges:       {}", run.traversed_edges);
    println!("traversal rate:        {}", ibfs::metrics::format_teps(run.teps()));
    println!("sharing degree:        {:.2}", run.sharing_degree());
    println!("load transactions:     {}", run.counters.global_load_transactions);
    println!("store transactions:    {}", run.counters.global_store_transactions);
    println!("atomic transactions:   {}", run.counters.atomic_transactions);

    if print_levels {
        for (gi, group) in run.groups.iter().enumerate() {
            println!("group {gi} ({} instances):", group.num_instances);
            for l in &group.levels {
                println!(
                    "  level {:3} {:9?}  unique {:7}  instance-frontiers {:9}  edges {:9}  early-term {:6}",
                    l.level, l.direction, l.unique_frontiers, l.instance_frontiers,
                    l.edges_inspected, l.early_terminations
                );
            }
        }
    }

    if print_depths {
        for (gi, group) in run.groups.iter().enumerate() {
            for j in 0..group.num_instances {
                let depths = group.instance_depths(j);
                let reached = depths.iter().filter(|&&d| d != DEPTH_UNVISITED).count();
                let ecc = depths
                    .iter()
                    .filter(|&&d| d != DEPTH_UNVISITED)
                    .max()
                    .copied()
                    .unwrap_or(0);
                println!("group {gi} instance {j}: reached {reached}, eccentricity {ecc}");
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bfs <GRAPH|suite:NAME> [--engine sequential|naive|joint|bitwise|msbfs|spmm] \
         [--sources N | --source-list a,b,c] [--group-size N] [--groupby] [--depths] [--levels] \
         [--trace PATH|-]"
    );
    ExitCode::from(2)
}
