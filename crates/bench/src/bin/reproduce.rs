//! `reproduce` — regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [OPTIONS] [EXPERIMENT ...]
//!
//! EXPERIMENT   fig2 fig6 fig8 fig9 fig11 fig14 fig15 fig16 fig17 fig18
//!              fig19 fig20 fig21 fig22 table1 ablations, or `all`
//!              (default)
//!
//! OPTIONS
//!   --shrink N      divide every graph's vertex count by 2^N (default 0)
//!   --sources N     BFS sources per graph (default 256)
//!   --group-size N  concurrent group size (default 64)
//!   --threads N     CPU engine worker threads, 0 = all (default 0)
//!   --width W       CPU status-word width: 32|64|128|256 (default 64)
//!   --json PATH     also write all results as JSON
//!   --csv DIR       also write one CSV per experiment into DIR
//!   --list          list experiments and exit
//! ```

use ibfs_bench::figures::{run_by_id, ALL_IDS};
use ibfs_bench::{FigureResult, HarnessConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shrink" => cfg.shrink = parse(it.next(), "--shrink"),
            "--sources" => cfg.sources = parse(it.next(), "--sources"),
            "--group-size" => cfg.group_size = parse(it.next(), "--group-size"),
            "--threads" => cfg.threads = parse(it.next(), "--threads"),
            "--width" => {
                cfg.width = it
                    .next()
                    .as_deref()
                    .and_then(ibfs::word::WordWidth::parse)
                    .unwrap_or_else(|| usage("--width must be 32, 64, 128 or 256"))
            }
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage("--json needs a path"))),
            "--csv" => csv_dir = Some(it.next().unwrap_or_else(|| usage("--csv needs a directory"))),
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--shrink N] [--sources N] [--group-size N] \
                     [--threads N] [--width 32|64|128|256] [--json PATH] [EXPERIMENT ...|all]"
                );
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => usage(&format!("unknown option {other}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }

    let mut results: Vec<FigureResult> = Vec::new();
    for id in &ids {
        eprintln!(
            "[reproduce] running {id} (shrink={}, sources={}, N={})",
            cfg.shrink, cfg.sources, cfg.group_size
        );
        let started = std::time::Instant::now();
        match run_by_id(id, &cfg) {
            Some(result) => {
                println!("{}", result.render());
                eprintln!(
                    "[reproduce] {id} done in {:.1}s",
                    started.elapsed().as_secs_f64()
                );
                results.push(result);
            }
            None => usage(&format!("unknown experiment `{id}` (try --list)")),
        }
    }

    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for result in &results {
            let mut csv = String::new();
            csv.push_str(&result.header.join(","));
            csv.push('\n');
            for row in &result.rows {
                csv.push_str(&row.join(","));
                csv.push('\n');
            }
            let path = format!("{dir}/{}.csv", result.id);
            if let Err(e) = std::fs::write(&path, csv) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("[reproduce] wrote {} CSV files to {dir}", results.len());
    }

    if let Some(path) = json_path {
        use ibfs_util::ToJson;
        let json = results.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[reproduce] wrote {path}");
    }
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: reproduce [--shrink N] [--sources N] [--group-size N] [--threads N] \
         [--width 32|64|128|256] [--json PATH] [EXPERIMENT ...|all]"
    );
    std::process::exit(2)
}
