//! Closed-loop load generator for the serve layer.
//!
//! Each simulated client thread issues one request, waits for its reply,
//! then issues the next (a closed loop, so offered load tracks service
//! capacity instead of overrunning it). Sources are drawn from a seeded
//! PRNG per client, so a run is reproducible request-for-request; only
//! thread interleaving varies. The result combines client-side latency
//! statistics with the server's own [`ServeReport`].
//!
//! Two QoS-oriented extensions ride on the same machinery:
//!
//! * [`SourceProfile::PowerLaw`] draws sources from a Zipf-like
//!   distribution over vertex ids — the heavy-tailed hot-source pattern
//!   real BFS serving sees, and the shape that exercises the result
//!   cache and in-flight dedup.
//! * [`LoadGenConfig::bulk_clients`] turns the first clients into a bulk
//!   tenant (`TenantId(1)`, [`Class::Bulk`]) submitting in bursts of
//!   [`LoadGenConfig::burst`] instead of one at a time, saturating the
//!   bulk lane while interactive clients stay closed-loop — the overload
//!   scenario the per-class p99 report is for.

use ibfs::metrics::{mean_std, MeanStd};
use ibfs_graph::{Csr, VertexId};
use ibfs_serve::{
    serve_with, Class, ServeConfig, ServeError, ServeReport, ServeTelemetry, TenantId,
};
use ibfs_util::json_struct;
use ibfs_util::rng::Rng;
use std::time::Instant;

/// The tenant bulk clients submit under (interactive clients use
/// [`TenantId::DEFAULT`]).
pub const BULK_TENANT: TenantId = TenantId(1);

/// How client threads draw BFS sources.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum SourceProfile {
    /// Uniform over all vertices.
    #[default]
    Uniform,
    /// Zipf-like heavy tail: vertex `v` is drawn with probability
    /// proportional to `1/(v+1)^exponent`, so low-numbered vertices are
    /// hot sources that repeat across clients.
    PowerLaw {
        /// Tail exponent; ~1.0–2.0 is the realistic range, larger is
        /// hotter.
        exponent: f64,
    },
}

/// A prepared sampler for one [`SourceProfile`] over `n` vertices.
struct SourceSampler {
    n: u32,
    /// Cumulative weights per vertex for the power-law profile; `None`
    /// means uniform.
    cumulative: Option<Vec<f64>>,
}

impl SourceSampler {
    fn new(profile: SourceProfile, n: u32) -> Self {
        let cumulative = match profile {
            SourceProfile::Uniform => None,
            SourceProfile::PowerLaw { exponent } => {
                let mut acc = 0.0;
                Some(
                    (0..n)
                        .map(|v| {
                            acc += (v as f64 + 1.0).powf(-exponent);
                            acc
                        })
                        .collect(),
                )
            }
        };
        SourceSampler { n, cumulative }
    }

    fn draw(&self, rng: &mut Rng) -> VertexId {
        match &self.cumulative {
            None => rng.gen_range(0..self.n),
            Some(cum) => {
                let total = *cum.last().expect("sampler over an empty graph");
                let x = rng.gen::<f64>() * total;
                (cum.partition_point(|&c| c <= x) as VertexId).min(self.n - 1)
            }
        }
    }
}

/// Workload shape for [`run_loadgen`].
#[derive(Clone, Debug)]
pub struct LoadGenConfig {
    /// Concurrent clients (bulk first, then interactive).
    pub clients: usize,
    /// Requests each client issues before retiring.
    pub requests_per_client: usize,
    /// PRNG seed; client `c` streams from `seed ^ (c + 1)`.
    pub seed: u64,
    /// How sources are drawn.
    pub profile: SourceProfile,
    /// The first `bulk_clients` clients submit as the bulk tenant
    /// ([`BULK_TENANT`], [`Class::Bulk`]); the rest stay interactive.
    pub bulk_clients: usize,
    /// Bulk submission burst: each bulk client keeps this many requests
    /// in flight at once (1 = closed loop, same as interactive).
    pub burst: usize,
    /// Server under test.
    pub serve: ServeConfig,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 64,
            seed: 42,
            profile: SourceProfile::default(),
            bulk_clients: 0,
            burst: 1,
            serve: ServeConfig::default(),
        }
    }
}

/// `p`-th percentile of `sorted` (ascending), by the nearest-rank rule.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Flat, JSON-ready summary of a load-generator run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadGenSummary {
    /// Requests issued across clients.
    pub issued: u64,
    /// Requests answered with depths.
    pub completed: u64,
    /// Requests that timed out.
    pub timeouts: u64,
    /// Requests bounced on a full queue.
    pub overloaded: u64,
    /// Client-observed submit-to-resolve latency (seconds).
    pub latency_s: MeanStd,
    /// Wall-clock duration of the whole run.
    pub wall_seconds: f64,
    /// Client-observed completed requests per wall second.
    pub throughput_rps: f64,
    /// Batches dispatched by the server.
    pub num_batches: u64,
    /// Mean batch occupancy.
    pub occupancy: f64,
    /// Mean per-batch sharing degree.
    pub sharing_degree: f64,
    /// Aggregate simulated TEPS across batches.
    pub sim_teps: f64,
    /// Requests rejected on a per-tenant quota.
    pub quota_rejected: u64,
    /// Requests answered straight from the result cache.
    pub cache_hits: u64,
    /// Cache hits over total cache lookups (0 when the cache is off).
    pub cache_hit_rate: f64,
    /// Requests that joined an identical in-flight traversal.
    pub dedup_joined: u64,
    /// Interactive-class p99 latency in seconds (0 when no interactive
    /// request completed).
    pub interactive_p99_s: f64,
    /// Bulk-class p99 latency in seconds (0 when no bulk request
    /// completed).
    pub bulk_p99_s: f64,
}

json_struct!(LoadGenSummary {
    issued,
    completed,
    timeouts,
    overloaded,
    latency_s,
    wall_seconds,
    throughput_rps,
    num_batches,
    occupancy,
    sharing_degree,
    sim_teps,
    quota_rejected,
    cache_hits,
    cache_hit_rate,
    dedup_joined,
    interactive_p99_s,
    bulk_p99_s,
});

/// Everything a load-generator run produced.
#[derive(Debug)]
pub struct LoadGenResult {
    /// Flat summary (latency, throughput, batch shape).
    pub summary: LoadGenSummary,
    /// The server's own report.
    pub report: ServeReport,
}

/// Drives `cfg.clients` closed-loop clients against a server on `graph`
/// with default telemetry (fresh registry, no trace).
pub fn run_loadgen(graph: &Csr, reverse: &Csr, cfg: &LoadGenConfig) -> LoadGenResult {
    run_loadgen_with(graph, reverse, cfg, ServeTelemetry::default())
}

/// [`run_loadgen`] recording into caller-provided telemetry: the registry
/// snapshot lands in `report.snapshot`; when `telemetry.trace` is set, the
/// caller's [`TraceLog`](ibfs::trace::TraceLog) receives the merged
/// span/level stream.
pub fn run_loadgen_with(
    graph: &Csr,
    reverse: &Csr,
    cfg: &LoadGenConfig,
    telemetry: ServeTelemetry,
) -> LoadGenResult {
    let n = graph.num_vertices() as u32;
    let clients = cfg.clients.max(1);
    let sampler = &SourceSampler::new(cfg.profile, n);
    let started = Instant::now();
    let (latencies, report) = serve_with(graph, reverse, cfg.serve.clone(), telemetry, |h| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut rng = Rng::seed_from_u64(cfg.seed ^ (c as u64 + 1));
                        let bulk = c < cfg.bulk_clients;
                        let (tenant, class) = if bulk {
                            (BULK_TENANT, Class::Bulk)
                        } else {
                            (TenantId::DEFAULT, Class::Interactive)
                        };
                        let burst = if bulk { cfg.burst.max(1) } else { 1 };
                        let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                        let mut issued = 0;
                        while issued < cfg.requests_per_client {
                            // Submit a burst of tickets (interactive
                            // clients stay closed-loop: burst == 1),
                            // then wait them all out.
                            let count = burst.min(cfg.requests_per_client - issued);
                            issued += count;
                            let inflight: Vec<_> = (0..count)
                                .map(|_| {
                                    let source: VertexId = sampler.draw(&mut rng);
                                    (Instant::now(), h.submit_tagged(source, tenant, class))
                                })
                                .collect();
                            for (t0, submitted) in inflight {
                                let outcome = match submitted {
                                    Ok(ticket) => ticket.wait().map(|_| ()),
                                    Err(e) => Err(e),
                                };
                                match outcome {
                                    // Latency counts only served requests;
                                    // errors are visible in the report.
                                    Ok(()) => {
                                        latencies.push((class, t0.elapsed().as_secs_f64()));
                                    }
                                    Err(
                                        ServeError::Timeout
                                        | ServeError::Overloaded
                                        | ServeError::Shutdown
                                        | ServeError::QuotaExceeded { .. },
                                    ) => {}
                                    Err(e @ ServeError::Invalid(_)) => {
                                        panic!("loadgen issued an invalid request: {e}")
                                    }
                                }
                            }
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<(Class, f64)>>()
        })
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    let all: Vec<f64> = latencies.iter().map(|&(_, l)| l).collect();
    let mut by_class: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for &(class, l) in &latencies {
        by_class[class.idx()].push(l);
    }
    for lane in &mut by_class {
        lane.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    }
    let summary = LoadGenSummary {
        issued: (clients * cfg.requests_per_client) as u64,
        completed: report.completed,
        timeouts: report.timeouts,
        overloaded: report.overloaded,
        latency_s: mean_std(&all),
        wall_seconds,
        throughput_rps: if wall_seconds > 0.0 {
            report.completed as f64 / wall_seconds
        } else {
            0.0
        },
        num_batches: report.stats.num_batches,
        occupancy: report.stats.occupancy.mean,
        sharing_degree: report.stats.sharing_degree.mean,
        sim_teps: report.stats.sim_teps,
        quota_rejected: report.quota_rejected,
        cache_hits: report.cache_hits,
        cache_hit_rate: report.cache_hit_rate(),
        dedup_joined: report.dedup_joined,
        interactive_p99_s: percentile(&by_class[Class::Interactive.idx()], 0.99),
        bulk_p99_s: percentile(&by_class[Class::Bulk.idx()], 0.99),
    };
    LoadGenResult { summary, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_util::{FromJson, ToJson};
    use std::time::Duration;

    #[test]
    fn closed_loop_completes_every_request() {
        let g = rmat(8, 8, RmatParams::graph500(), 31);
        let r = g.reverse();
        let cfg = LoadGenConfig {
            clients: 3,
            requests_per_client: 10,
            seed: 7,
            serve: ServeConfig {
                batch_window: Duration::from_micros(50),
                ..Default::default()
            },
            ..Default::default()
        };
        let res = run_loadgen(&g, &r, &cfg);
        assert_eq!(res.summary.issued, 30);
        assert_eq!(res.summary.completed, 30);
        assert!(res.report.is_conserved());
        assert!(res.summary.latency_s.mean > 0.0);
        assert!(res.summary.throughput_rps > 0.0);
        assert!(res.summary.num_batches > 0);
    }

    #[test]
    fn seeded_runs_issue_identical_streams() {
        // Same seed → same counters for everything the clock can't touch.
        let g = rmat(7, 8, RmatParams::graph500(), 5);
        let r = g.reverse();
        let cfg = LoadGenConfig { clients: 2, requests_per_client: 8, ..Default::default() };
        let a = run_loadgen(&g, &r, &cfg);
        let b = run_loadgen(&g, &r, &cfg);
        assert_eq!(a.summary.issued, b.summary.issued);
        assert_eq!(a.summary.completed, b.summary.completed);
    }

    #[test]
    fn telemetry_run_produces_snapshot_and_trace() {
        use ibfs::trace::{TraceLog, TraceRecord};
        use ibfs_obs::Registry;
        use ibfs_serve::ServeTelemetry;
        let g = rmat(7, 8, RmatParams::graph500(), 5);
        let r = g.reverse();
        let cfg = LoadGenConfig { clients: 2, requests_per_client: 6, ..Default::default() };
        let log = TraceLog::new();
        let telemetry =
            ServeTelemetry::with_registry(Registry::shared()).traced(log.clone());
        let res = run_loadgen_with(&g, &r, &cfg, telemetry);
        assert_eq!(res.summary.completed, 12);
        // The report snapshot covers all three layers.
        let snap = &res.report.snapshot;
        assert_eq!(snap.counter("ibfs_serve_completed_total"), Some(12));
        assert!(snap.counter("ibfs_core_levels_total").unwrap_or(0) > 0);
        assert!(snap.with_prefix("ibfs_cluster_routed_total").count() > 0);
        // The trace carries both record kinds.
        let records = log.records();
        assert!(records.iter().any(|r| matches!(r, TraceRecord::Span(_))));
        assert!(records.iter().any(|r| matches!(r, TraceRecord::Level(_))));
    }

    #[test]
    fn power_law_sampler_is_seeded_and_head_heavy() {
        let sampler = SourceSampler::new(SourceProfile::PowerLaw { exponent: 1.2 }, 1024);
        let draw_all = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..512).map(|_| sampler.draw(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw_all(9);
        assert_eq!(a, draw_all(9), "same seed must replay the same sources");
        // Heavy tail: the hottest 16 vertices soak up far more than the
        // uniform 16/1024 share, and draws stay in range.
        let head = a.iter().filter(|&&v| v < 16).count();
        assert!(head > a.len() / 4, "head got {head} of {} draws", a.len());
        assert!(a.iter().all(|&v| v < 1024));
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 16);
    }

    #[test]
    fn power_law_sampler_pins_its_exact_sequence_and_matches_linear_scan() {
        // Regression pin for the prefix-sum + binary-search sampler: the
        // exact draw sequence for a fixed (profile, n, seed) is part of
        // the bench's reproducibility contract — BENCH documents and the
        // QoS cache-hit gates replay it — so any change to the weights,
        // the prefix accumulation order, or the search boundary condition
        // must show up here as a diff, not as silently shifted workloads.
        let sampler = SourceSampler::new(SourceProfile::PowerLaw { exponent: 1.2 }, 64);
        let mut rng = Rng::seed_from_u64(42);
        let drawn: Vec<VertexId> = (0..24).map(|_| sampler.draw(&mut rng)).collect();
        assert_eq!(
            drawn,
            vec![0, 1, 7, 36, 59, 13, 9, 21, 12, 4, 8, 0, 16, 1, 9, 26, 5, 22, 9, 9, 0, 0, 2, 5],
            "power-law draw sequence moved for seed 42 over n=64"
        );
        // The binary search must agree with the O(n) linear scan it
        // replaced, draw for draw: same weights, same tie-breaking (first
        // cumulative weight strictly above x wins).
        let cum: Vec<f64> = {
            let mut acc = 0.0;
            (0..64u32)
                .map(|v| {
                    acc += (v as f64 + 1.0).powf(-1.2);
                    acc
                })
                .collect()
        };
        let total = *cum.last().unwrap();
        let mut fast_rng = Rng::seed_from_u64(7);
        let mut slow_rng = Rng::seed_from_u64(7);
        for _ in 0..512 {
            let fast = sampler.draw(&mut fast_rng);
            let x = slow_rng.gen::<f64>() * total;
            let slow = cum
                .iter()
                .position(|&c| c > x)
                .unwrap_or(63)
                .min(63) as VertexId;
            assert_eq!(fast, slow, "binary search diverges from the linear scan");
        }
    }

    #[test]
    fn bulk_burst_run_reports_per_class_p99() {
        let g = rmat(8, 8, RmatParams::graph500(), 31);
        let r = g.reverse();
        let cfg = LoadGenConfig {
            clients: 4,
            bulk_clients: 2,
            burst: 4,
            requests_per_client: 12,
            seed: 11,
            profile: SourceProfile::PowerLaw { exponent: 1.2 },
            serve: ServeConfig {
                batch_window: Duration::from_micros(50),
                qos: ibfs_serve::QosPolicy::standard(),
                ..Default::default()
            },
            ..Default::default()
        };
        let res = run_loadgen(&g, &r, &cfg);
        assert_eq!(res.summary.issued, 48);
        assert_eq!(res.summary.completed, 48);
        assert!(res.report.is_conserved());
        assert!(res.report.is_conserved_per_class());
        // Both classes completed work, so both p99s are populated.
        assert!(res.summary.interactive_p99_s > 0.0);
        assert!(res.summary.bulk_p99_s > 0.0);
        // Two clients hammering hot power-law sources through the
        // standard QoS policy must find the cache or dedup at least once.
        assert!(
            res.summary.cache_hits + res.summary.dedup_joined > 0,
            "expected reuse on hot sources: {:?}",
            res.summary
        );
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = LoadGenSummary {
            issued: 10,
            completed: 9,
            timeouts: 1,
            latency_s: MeanStd { mean: 0.5, stddev: 0.1 },
            wall_seconds: 2.0,
            throughput_rps: 4.5,
            ..Default::default()
        };
        let back = LoadGenSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }
}
