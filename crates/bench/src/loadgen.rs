//! Closed-loop load generator for the serve layer.
//!
//! Each simulated client thread issues one request, waits for its reply,
//! then issues the next (a closed loop, so offered load tracks service
//! capacity instead of overrunning it). Sources are drawn from a seeded
//! PRNG per client, so a run is reproducible request-for-request; only
//! thread interleaving varies. The result combines client-side latency
//! statistics with the server's own [`ServeReport`].

use ibfs::metrics::{mean_std, MeanStd};
use ibfs_graph::{Csr, VertexId};
use ibfs_serve::{serve_with, ServeConfig, ServeError, ServeReport, ServeTelemetry};
use ibfs_util::json_struct;
use ibfs_util::rng::Rng;
use std::time::Instant;

/// Workload shape for [`run_loadgen`].
#[derive(Clone, Debug)]
pub struct LoadGenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues before retiring.
    pub requests_per_client: usize,
    /// PRNG seed; client `c` streams from `seed ^ (c + 1)`.
    pub seed: u64,
    /// Server under test.
    pub serve: ServeConfig,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            clients: 4,
            requests_per_client: 64,
            seed: 42,
            serve: ServeConfig::default(),
        }
    }
}

/// Flat, JSON-ready summary of a load-generator run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadGenSummary {
    /// Requests issued across clients.
    pub issued: u64,
    /// Requests answered with depths.
    pub completed: u64,
    /// Requests that timed out.
    pub timeouts: u64,
    /// Requests bounced on a full queue.
    pub overloaded: u64,
    /// Client-observed submit-to-resolve latency (seconds).
    pub latency_s: MeanStd,
    /// Wall-clock duration of the whole run.
    pub wall_seconds: f64,
    /// Client-observed completed requests per wall second.
    pub throughput_rps: f64,
    /// Batches dispatched by the server.
    pub num_batches: u64,
    /// Mean batch occupancy.
    pub occupancy: f64,
    /// Mean per-batch sharing degree.
    pub sharing_degree: f64,
    /// Aggregate simulated TEPS across batches.
    pub sim_teps: f64,
}

json_struct!(LoadGenSummary {
    issued,
    completed,
    timeouts,
    overloaded,
    latency_s,
    wall_seconds,
    throughput_rps,
    num_batches,
    occupancy,
    sharing_degree,
    sim_teps,
});

/// Everything a load-generator run produced.
#[derive(Debug)]
pub struct LoadGenResult {
    /// Flat summary (latency, throughput, batch shape).
    pub summary: LoadGenSummary,
    /// The server's own report.
    pub report: ServeReport,
}

/// Drives `cfg.clients` closed-loop clients against a server on `graph`
/// with default telemetry (fresh registry, no trace).
pub fn run_loadgen(graph: &Csr, reverse: &Csr, cfg: &LoadGenConfig) -> LoadGenResult {
    run_loadgen_with(graph, reverse, cfg, ServeTelemetry::default())
}

/// [`run_loadgen`] recording into caller-provided telemetry: the registry
/// snapshot lands in `report.snapshot`; when `telemetry.trace` is set, the
/// caller's [`TraceLog`](ibfs::trace::TraceLog) receives the merged
/// span/level stream.
pub fn run_loadgen_with(
    graph: &Csr,
    reverse: &Csr,
    cfg: &LoadGenConfig,
    telemetry: ServeTelemetry,
) -> LoadGenResult {
    let n = graph.num_vertices() as u32;
    let clients = cfg.clients.max(1);
    let started = Instant::now();
    let (latencies, report) = serve_with(graph, reverse, cfg.serve.clone(), telemetry, |h| {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut rng = Rng::seed_from_u64(cfg.seed ^ (c as u64 + 1));
                        let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                        for _ in 0..cfg.requests_per_client {
                            let source: VertexId = rng.gen_range(0..n);
                            let t0 = Instant::now();
                            let outcome = match h.submit(source) {
                                Ok(ticket) => ticket.wait().map(|_| ()),
                                Err(e) => Err(e),
                            };
                            match outcome {
                                // Latency counts only served requests;
                                // errors are visible in the report.
                                Ok(()) => latencies.push(t0.elapsed().as_secs_f64()),
                                Err(
                                    ServeError::Timeout
                                    | ServeError::Overloaded
                                    | ServeError::Shutdown,
                                ) => {}
                                Err(e @ ServeError::Invalid(_)) => {
                                    panic!("loadgen issued an invalid request: {e}")
                                }
                            }
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<f64>>()
        })
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    let summary = LoadGenSummary {
        issued: (clients * cfg.requests_per_client) as u64,
        completed: report.completed,
        timeouts: report.timeouts,
        overloaded: report.overloaded,
        latency_s: mean_std(&latencies),
        wall_seconds,
        throughput_rps: if wall_seconds > 0.0 {
            report.completed as f64 / wall_seconds
        } else {
            0.0
        },
        num_batches: report.stats.num_batches,
        occupancy: report.stats.occupancy.mean,
        sharing_degree: report.stats.sharing_degree.mean,
        sim_teps: report.stats.sim_teps,
    };
    LoadGenResult { summary, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_util::{FromJson, ToJson};
    use std::time::Duration;

    #[test]
    fn closed_loop_completes_every_request() {
        let g = rmat(8, 8, RmatParams::graph500(), 31);
        let r = g.reverse();
        let cfg = LoadGenConfig {
            clients: 3,
            requests_per_client: 10,
            seed: 7,
            serve: ServeConfig {
                batch_window: Duration::from_micros(50),
                ..Default::default()
            },
        };
        let res = run_loadgen(&g, &r, &cfg);
        assert_eq!(res.summary.issued, 30);
        assert_eq!(res.summary.completed, 30);
        assert!(res.report.is_conserved());
        assert!(res.summary.latency_s.mean > 0.0);
        assert!(res.summary.throughput_rps > 0.0);
        assert!(res.summary.num_batches > 0);
    }

    #[test]
    fn seeded_runs_issue_identical_streams() {
        // Same seed → same counters for everything the clock can't touch.
        let g = rmat(7, 8, RmatParams::graph500(), 5);
        let r = g.reverse();
        let cfg = LoadGenConfig { clients: 2, requests_per_client: 8, ..Default::default() };
        let a = run_loadgen(&g, &r, &cfg);
        let b = run_loadgen(&g, &r, &cfg);
        assert_eq!(a.summary.issued, b.summary.issued);
        assert_eq!(a.summary.completed, b.summary.completed);
    }

    #[test]
    fn telemetry_run_produces_snapshot_and_trace() {
        use ibfs::trace::{TraceLog, TraceRecord};
        use ibfs_obs::Registry;
        use ibfs_serve::ServeTelemetry;
        let g = rmat(7, 8, RmatParams::graph500(), 5);
        let r = g.reverse();
        let cfg = LoadGenConfig { clients: 2, requests_per_client: 6, ..Default::default() };
        let log = TraceLog::new();
        let telemetry =
            ServeTelemetry::with_registry(Registry::shared()).traced(log.clone());
        let res = run_loadgen_with(&g, &r, &cfg, telemetry);
        assert_eq!(res.summary.completed, 12);
        // The report snapshot covers all three layers.
        let snap = &res.report.snapshot;
        assert_eq!(snap.counter("ibfs_serve_completed_total"), Some(12));
        assert!(snap.counter("ibfs_core_levels_total").unwrap_or(0) > 0);
        assert!(snap.with_prefix("ibfs_cluster_routed_total").count() > 0);
        // The trace carries both record kinds.
        let records = log.records();
        assert!(records.iter().any(|r| matches!(r, TraceRecord::Span(_))));
        assert!(records.iter().any(|r| matches!(r, TraceRecord::Level(_))));
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = LoadGenSummary {
            issued: 10,
            completed: 9,
            timeouts: 1,
            latency_s: MeanStd { mean: 0.5, stddev: 0.1 },
            wall_seconds: 2.0,
            throughput_rps: 4.5,
            ..Default::default()
        };
        let back = LoadGenSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }
}
