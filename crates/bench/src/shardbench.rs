//! `bfs shard-bench`: the weak-scaling communication benchmark for the
//! sharded traversal stack.
//!
//! The fig17-class question for sharding is not speedup (the comm model is
//! simulated) but *communication volume*: how many messages and bytes the
//! frontier exchange puts on the wire as the shard count grows with the
//! problem. The sweep holds per-shard work roughly constant — at `P`
//! shards the R-MAT scale is `base + log2(P)` — and reports, for both
//! exchange patterns, the total messages/bytes, the exchange seconds
//! charged into sim-time, and the per-level volume breakdown.
//!
//! `--check` turns the run into a CI gate on a fixed `base`-scale graph:
//! sharded depths must be bit-identical to `reference_bfs` for every
//! source, and at ≥ 4 shards the Butterfly pattern must put strictly
//! fewer messages on the wire than AllToAll (P·log₂P vs P·(P−1) sends per
//! exchange).

use crate::result::f2;
use crate::FigureResult;
use ibfs_cluster::comm::{CommConfig, ExchangePattern};
use ibfs_cluster::shard::{ShardedConfig, ShardedRun, ShardedService};
use ibfs_obs::EngineProfiler;
use std::sync::Arc;
use ibfs_graph::generators::{rmat, RmatParams};
use ibfs_graph::partition::OwnershipLayout;
use ibfs_graph::validate::reference_bfs;
use ibfs_graph::{Csr, VertexId};
use ibfs_util::json_struct;

/// Workload configuration for the shard benchmark.
#[derive(Clone, Debug)]
pub struct ShardBenchConfig {
    /// R-MAT scale at one shard; weak scaling adds `log2(shards)`.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Generator seed.
    pub seed: u64,
    /// Number of BFS sources (the first `sources` vertices).
    pub sources: usize,
    /// Largest shard count; the sweep runs powers of two `1..=max_shards`.
    pub max_shards: usize,
    /// Vertex ownership layout.
    pub layout: OwnershipLayout,
    /// Run the CI gate: depth equality + Butterfly < AllToAll messages.
    pub check: bool,
    /// When set, every sharded run records its per-wave comm phases
    /// (encode/exchange/apply) into this profiler.
    pub profiler: Option<Arc<EngineProfiler>>,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        ShardBenchConfig {
            scale: 12,
            edge_factor: 8,
            seed: 42,
            sources: 32,
            max_shards: 8,
            layout: OwnershipLayout::Contiguous,
            check: false,
            profiler: None,
        }
    }
}

/// The benchmark's output: the weak-scaling volume figure and the
/// per-level breakdown of the largest run.
#[derive(Clone, Debug)]
pub struct ShardBenchReport {
    /// Communication volume vs shard count, both patterns.
    pub weak_scaling: FigureResult,
    /// Per-level messages/bytes at the largest shard count.
    pub per_level: FigureResult,
}

json_struct!(ShardBenchReport { weak_scaling, per_level });

/// Power-of-two shard counts up to `max`, always starting at 1.
fn shard_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    while counts.last().copied().unwrap_or(1) * 2 <= max {
        counts.push(counts.last().unwrap() * 2);
    }
    counts
}

fn bench_config(shards: usize, layout: OwnershipLayout, pattern: ExchangePattern) -> ShardedConfig {
    ShardedConfig {
        shards,
        layout,
        comm: CommConfig::with_pattern(pattern),
        ..Default::default()
    }
}

fn run_one(
    g: &Csr,
    r: &Csr,
    sources: &[VertexId],
    shards: usize,
    layout: OwnershipLayout,
    pattern: ExchangePattern,
    profiler: Option<&Arc<EngineProfiler>>,
) -> ShardedRun {
    let mut svc = ShardedService::new(g, r, bench_config(shards, layout, pattern));
    if let Some(p) = profiler {
        svc.set_profiler(p.clone());
    }
    svc.run(sources)
}

/// Runs the weak-scaling sweep (and the `--check` gate when configured).
/// `Err` carries the first gate violation, for a nonzero exit.
pub fn run_shard_bench(cfg: &ShardBenchConfig) -> Result<ShardBenchReport, String> {
    let counts = shard_counts(cfg.max_shards.max(1));
    let mut weak = FigureResult::new(
        "shard-weak",
        "Frontier-exchange volume, weak scaling (per-shard work constant)",
        &["shards", "scale", "pattern", "messages", "KiB", "dense", "exchange_ms", "sim_ms"],
    );

    let mut largest: Option<(usize, ShardedRun)> = None;
    for &p in &counts {
        let scale = cfg.scale + p.trailing_zeros();
        let g = rmat(scale, cfg.edge_factor, RmatParams::graph500(), cfg.seed);
        let r = g.reverse();
        let n = g.num_vertices();
        let sources: Vec<VertexId> =
            (0..cfg.sources.min(n)).map(|s| s as VertexId).collect();
        for pattern in ExchangePattern::all() {
            let run = run_one(&g, &r, &sources, p, cfg.layout, pattern, cfg.profiler.as_ref());
            weak.push_row(vec![
                p.to_string(),
                scale.to_string(),
                pattern.name().to_string(),
                run.comm.messages.to_string(),
                f2(run.comm.bytes as f64 / 1024.0),
                run.comm.dense_payloads.to_string(),
                f2(run.comm.exchange_seconds * 1e3),
                f2(run.sim_seconds * 1e3),
            ]);
            // Counts ascend, so the last butterfly run is the largest.
            if pattern == ExchangePattern::Butterfly {
                largest = Some((p, run));
            }
        }
    }
    weak.note(format!(
        "layout={:?}; butterfly sends ≤ P·log2(P) combined messages per exchange vs \
         P·(P−1) direct sends, at the cost of forwarded (larger) payloads",
        cfg.layout
    ));

    let mut per_level = FigureResult::new(
        "shard-levels",
        "Per-level exchange volume at the largest shard count (butterfly)",
        &["level", "messages", "KiB", "dense", "exchange_ms"],
    );
    if let Some((p, run)) = &largest {
        for lc in &run.comm.per_level {
            per_level.push_row(vec![
                lc.level.to_string(),
                lc.messages.to_string(),
                f2(lc.bytes as f64 / 1024.0),
                lc.dense_payloads.to_string(),
                f2(lc.seconds * 1e3),
            ]);
        }
        per_level.note(format!("shards={p}, layout={:?}", cfg.layout));
    }

    if cfg.check {
        check_gate(cfg, &mut weak)?;
    }
    Ok(ShardBenchReport { weak_scaling: weak, per_level })
}

/// The CI gate, on the fixed base-scale graph at the largest shard count:
/// depth equality against `reference_bfs`, and strictly fewer Butterfly
/// than AllToAll messages once ≥ 4 shards exchange.
fn check_gate(cfg: &ShardBenchConfig, fig: &mut FigureResult) -> Result<(), String> {
    let p = shard_counts(cfg.max_shards.max(1)).last().copied().unwrap();
    let g = rmat(cfg.scale, cfg.edge_factor, RmatParams::graph500(), cfg.seed);
    let r = g.reverse();
    let sources: Vec<VertexId> =
        (0..cfg.sources.min(g.num_vertices())).map(|s| s as VertexId).collect();
    let a2a = run_one(&g, &r, &sources, p, cfg.layout, ExchangePattern::AllToAll, None);
    let bf = run_one(&g, &r, &sources, p, cfg.layout, ExchangePattern::Butterfly, None);

    // Both runs grouped with the same (deterministic) default grouping, so
    // the source → (group, instance) map is shared.
    let grouping = bench_config(p, cfg.layout, ExchangePattern::AllToAll)
        .grouping
        .group(&g, &sources);
    for (run, name) in [(&a2a, "alltoall"), (&bf, "butterfly")] {
        for (gi, group) in grouping.groups.iter().enumerate() {
            for (j, &s) in group.iter().enumerate() {
                if run.groups[gi].instance_depths(j) != &reference_bfs(&g, s)[..] {
                    return Err(format!(
                        "check failed: {name} sharded depths for source {s} diverge from \
                         reference_bfs (shards={p}, scale={})",
                        cfg.scale
                    ));
                }
            }
        }
    }
    fig.note(format!(
        "check: {} depth arrays bit-identical to reference_bfs at shards={p}, scale={}",
        sources.len(),
        cfg.scale
    ));

    if p >= 4 {
        if bf.comm.messages >= a2a.comm.messages {
            return Err(format!(
                "check failed: butterfly must exchange strictly fewer messages than \
                 all-to-all at {p} shards (butterfly={}, alltoall={})",
                bf.comm.messages, a2a.comm.messages
            ));
        }
        fig.note(format!(
            "check: butterfly {} < alltoall {} messages at shards={p}",
            bf.comm.messages, a2a.comm.messages
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_are_powers_of_two() {
        assert_eq!(shard_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(shard_counts(6), vec![1, 2, 4]);
        assert_eq!(shard_counts(1), vec![1]);
        assert_eq!(shard_counts(0), vec![1]);
    }

    #[test]
    fn butterfly_beats_alltoall_messages_on_scale12_rmat() {
        // The acceptance gate, pinned as a test: at ≥ 4 shards the staged
        // exchange puts strictly fewer messages on the wire.
        let g = rmat(12, 8, RmatParams::graph500(), 42);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..32).collect();
        for shards in [4usize, 8] {
            let a2a = run_one(
                &g,
                &r,
                &sources,
                shards,
                OwnershipLayout::Contiguous,
                ExchangePattern::AllToAll,
                None,
            );
            let bf = run_one(
                &g,
                &r,
                &sources,
                shards,
                OwnershipLayout::Contiguous,
                ExchangePattern::Butterfly,
                None,
            );
            assert!(a2a.comm.messages > 0);
            assert!(
                bf.comm.messages < a2a.comm.messages,
                "shards={shards}: butterfly={} alltoall={}",
                bf.comm.messages,
                a2a.comm.messages
            );
        }
    }

    #[test]
    fn bench_runs_and_reports_per_level_volume() {
        let cfg = ShardBenchConfig {
            scale: 8,
            sources: 16,
            max_shards: 4,
            check: true,
            ..Default::default()
        };
        let report = run_shard_bench(&cfg).expect("gate must pass");
        // One row per (shard count, pattern).
        assert_eq!(report.weak_scaling.rows.len(), 3 * 2);
        assert!(!report.per_level.rows.is_empty(), "per-level volume must be reported");
        // Per-level rows carry nonzero volume somewhere.
        let total: u64 = report
            .per_level
            .rows
            .iter()
            .map(|row| row[1].parse::<u64>().unwrap())
            .sum();
        assert!(total > 0);
    }

    #[test]
    fn profiler_records_comm_phases_across_the_sweep() {
        use ibfs_obs::ProfPhase;
        let prof = EngineProfiler::shared();
        let cfg = ShardBenchConfig {
            scale: 7,
            sources: 8,
            max_shards: 4,
            profiler: Some(prof.clone()),
            ..Default::default()
        };
        run_shard_bench(&cfg).expect("sweep runs");
        let report = prof.report("shard-bench");
        report.validate().expect("profile validates");
        let phases = report.phases();
        for p in [ProfPhase::CommEncode, ProfPhase::CommExchange, ProfPhase::CommApply] {
            assert!(phases.contains(&p), "sweep missing {p:?}");
        }
    }

    #[test]
    fn check_rejects_unreachable_violation_cleanly() {
        // With one shard the butterfly assertion is vacuous and the depth
        // gate still runs — the gate must pass, not crash.
        let cfg = ShardBenchConfig {
            scale: 7,
            sources: 8,
            max_shards: 1,
            check: true,
            ..Default::default()
        };
        assert!(run_shard_bench(&cfg).is_ok());
    }
}
