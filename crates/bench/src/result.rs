//! Uniform result type for reproduced figures and tables.

use ibfs_util::json_struct;

/// One reproduced figure or table: a header, rows of cells, and free-form
/// notes comparing against the paper's reported shape.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Identifier ("fig2", "table1", ...).
    pub id: String,
    /// Human title matching the paper's caption.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Rows of formatted cells, parallel to `header`.
    pub rows: Vec<Vec<String>>,
    /// Observations (e.g. measured speedup factors) for EXPERIMENTS.md.
    pub notes: Vec<String>,
}

json_struct!(FigureResult { id, title, header, rows, notes });

impl FigureResult {
    /// Creates an empty result with the given identity.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        FigureResult {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a TEPS value in billions.
pub fn gteps(teps: f64) -> String {
    format!("{:.2}", teps / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = FigureResult::new("figX", "Test", &["graph", "value"]);
        r.push_row(vec!["FB".into(), "1.5".into()]);
        r.push_row(vec!["KG0".into(), "10.25".into()]);
        r.note("shape holds");
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("note: shape holds"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut r = FigureResult::new("f", "t", &["a", "b"]);
        r.push_row(vec!["x".into()]);
    }

    #[test]
    fn json_round_trip_for_artifact_contract() {
        // reproduce --json consumers rely on this shape being stable.
        let mut r = FigureResult::new("fig15", "Traversal rate", &["graph", "gteps"]);
        r.push_row(vec!["FB".into(), "309.62".into()]);
        r.note("shape check: HOLDS");
        use ibfs_util::{FromJson, Json, ToJson};
        let json = r.to_json().to_string();
        let back = FigureResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.id, r.id);
        assert_eq!(back.rows, r.rows);
        assert_eq!(back.notes, r.notes);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(gteps(2.5e9), "2.50");
    }
}
