//! `bfs perf-diff`: compare two `BENCH_cpu.json` documents.
//!
//! The committed benchmark report is the repo's perf trajectory record;
//! this module turns a pair of reports into a reviewable table and a CI
//! verdict. Runs are matched by `(engine, reorder, threads)` — a
//! hub-reordered tiled row only ever compares against the same reordered
//! row, never against the unreordered one it is supposed to beat; a run
//! whose TEPS falls below `base * (1 - noise/100)` is a regression. The
//! hub-gate and reorder-gate blocks of both documents are surfaced so
//! "gate stopped being enforced" is visible in the same place as the
//! rates.
//!
//! The noise band exists because TEPS is a wall-clock measurement: the
//! default [`DEFAULT_NOISE_PCT`] absorbs scheduler jitter and
//! cross-machine variance for the committed-baseline gate, while the
//! profiler-overhead gate in `ci.sh` pins a tight 5% band between two
//! back-to-back runs on the same host.
//!
//! For tight same-host comparisons the dominant error source is host
//! drift: a noisy neighbour slows *both* sides' engines equally, which a
//! per-row band misreads as a regression. `--calibrate ENGINE` names a
//! run that is identical in both reports (the unprofiled `baseline` row
//! in the overhead gate); its ratio measures pure host drift and scales
//! the floor down accordingly. Calibration only ever loosens the gate
//! (it is clamped at 1.0) so a lucky-fast reference cannot manufacture
//! failures, and the calibrating rows themselves are never flagged.

use crate::cpubench::{validate_report_json, CpuBenchReport, HubGateStatus, ReorderGateStatus};
use std::fmt::Write as _;

/// Default allowed TEPS drop, in percent. Wide on purpose: the committed
/// baseline may come from a different machine.
pub const DEFAULT_NOISE_PCT: f64 = 30.0;

/// One matched `(engine, reorder, threads)` comparison.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Engine name (`"baseline"`, `"pooled"`, `"tiled"`, `"async"`).
    pub engine: String,
    /// Vertex ordering the row was measured under (`"none"` = natural).
    pub reorder: String,
    /// Worker threads.
    pub threads: u64,
    /// TEPS in the base (older / committed) report.
    pub base_teps: f64,
    /// TEPS in the new (candidate) report.
    pub new_teps: f64,
    /// `new_teps / base_teps`.
    pub ratio: f64,
    /// The new rate fell below the noise band.
    pub regressed: bool,
    /// This row supplied the host-drift calibration and is exempt from
    /// regression flagging.
    pub calibrator: bool,
}

/// The full comparison of two validated reports.
#[derive(Clone, Debug)]
pub struct PerfDiff {
    /// Matched runs, in base-report order.
    pub rows: Vec<DiffRow>,
    /// `(engine, reorder, threads)` keys present in base but absent in
    /// new — a disappeared run can hide a regression, so `--check` fails
    /// on these.
    pub missing: Vec<String>,
    /// Keys present only in the new report (informational).
    pub added: Vec<String>,
    /// The noise band the rows were judged against, in percent.
    pub noise_pct: f64,
    /// Host-drift factor applied to the floor: the mean ratio of the
    /// calibrating rows, clamped to `(0, 1]`. `1.0` when uncalibrated.
    pub calibration: f64,
    /// Engine named by `--calibrate`, if it matched any rows.
    pub calibrated_against: Option<String>,
    /// Hub-gate outcome recorded in the base report.
    pub base_gate: HubGateStatus,
    /// Hub-gate outcome recorded in the new report.
    pub new_gate: HubGateStatus,
    /// Reorder-gate outcome recorded in the base report.
    pub base_reorder_gate: ReorderGateStatus,
    /// Reorder-gate outcome recorded in the new report.
    pub new_reorder_gate: ReorderGateStatus,
}

impl PerfDiff {
    /// Rows that fell below the noise band.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// The CI verdict: no regressed rows and no disappeared runs.
    pub fn passes(&self) -> bool {
        self.regressions().is_empty() && self.missing.is_empty()
    }
}

/// Compares two already-validated reports. `noise_pct` is the allowed
/// TEPS drop in percent (clamped to `[0, 100)`). `calibrate` optionally
/// names an engine whose ratio measures host drift (see module docs);
/// its rows are exempt from flagging and their mean ratio, clamped at
/// 1.0, scales the floor for every other row.
pub fn diff_reports(
    base: &CpuBenchReport,
    new: &CpuBenchReport,
    noise_pct: f64,
    calibrate: Option<&str>,
) -> PerfDiff {
    let noise_pct = noise_pct.clamp(0.0, 99.999);
    let floor = 1.0 - noise_pct / 100.0;
    let key = |engine: &str, reorder: &str, threads: u64| {
        if reorder == "none" {
            format!("{engine}@{threads}t")
        } else {
            format!("{engine}+{reorder}@{threads}t")
        }
    };

    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for b in &base.runs {
        match new
            .runs
            .iter()
            .find(|n| n.engine == b.engine && n.reorder == b.reorder && n.threads == b.threads)
        {
            Some(n) => {
                let ratio = n.teps / b.teps.max(1e-12);
                rows.push(DiffRow {
                    engine: b.engine.clone(),
                    reorder: b.reorder.clone(),
                    threads: b.threads,
                    base_teps: b.teps,
                    new_teps: n.teps,
                    ratio,
                    regressed: false,
                    calibrator: calibrate == Some(b.engine.as_str()),
                });
            }
            None => missing.push(key(&b.engine, &b.reorder, b.threads)),
        }
    }
    let calibrators: Vec<f64> =
        rows.iter().filter(|r| r.calibrator).map(|r| r.ratio).collect();
    let calibration = if calibrators.is_empty() {
        1.0
    } else {
        (calibrators.iter().sum::<f64>() / calibrators.len() as f64).clamp(1e-6, 1.0)
    };
    let calibrated_against =
        (!calibrators.is_empty()).then(|| calibrate.unwrap_or_default().to_string());
    for r in &mut rows {
        r.regressed = !r.calibrator && r.ratio < calibration * floor;
    }
    let added = new
        .runs
        .iter()
        .filter(|n| {
            !base.runs.iter().any(|b| {
                b.engine == n.engine && b.reorder == n.reorder && b.threads == n.threads
            })
        })
        .map(|n| key(&n.engine, &n.reorder, n.threads))
        .collect();

    PerfDiff {
        rows,
        missing,
        added,
        noise_pct,
        calibration,
        calibrated_against,
        base_gate: base.hub_gate,
        new_gate: new.hub_gate,
        base_reorder_gate: base.reorder_gate.clone(),
        new_reorder_gate: new.reorder_gate.clone(),
    }
}

/// Parses, validates, and compares two serialized reports. The labels
/// (usually file paths) only flavor the error messages.
pub fn diff_report_texts(
    base_text: &str,
    base_label: &str,
    new_text: &str,
    new_label: &str,
    noise_pct: f64,
    calibrate: Option<&str>,
) -> Result<PerfDiff, String> {
    let base = validate_report_json(base_text).map_err(|e| format!("{base_label}: {e}"))?;
    let new = validate_report_json(new_text).map_err(|e| format!("{new_label}: {e}"))?;
    Ok(diff_reports(&base, &new, noise_pct, calibrate))
}

fn reorder_gate_line(g: &ReorderGateStatus) -> String {
    if !g.ran {
        return "not run".to_string();
    }
    format!(
        "{} (tiled {:.0} TEPS, tiled+{} {:.0} TEPS, {:.2}x at {} threads)",
        match (g.enforced, g.passed) {
            (true, _) => "enforced, passed",
            (false, true) => "reported only (single-core host), ordering held",
            (false, false) => "reported only (single-core host), ordering inverted",
        },
        g.tiled_teps,
        g.reorder,
        g.reordered_teps,
        g.reordered_teps / g.tiled_teps.max(1e-12),
        g.threads,
    )
}

fn gate_line(g: &HubGateStatus) -> String {
    if !g.ran {
        return "not run".to_string();
    }
    format!(
        "{} (pooled {:.0} TEPS, tiled {:.0} TEPS, {:.2}x at {} threads)",
        match (g.enforced, g.passed) {
            (true, _) => "enforced, passed",
            (false, true) => "reported only (single-core host), ordering held",
            (false, false) => "reported only (single-core host), ordering inverted",
        },
        g.pooled_teps,
        g.tiled_teps,
        g.tiled_teps / g.pooled_teps.max(1e-12),
        g.threads,
    )
}

/// Renders the comparison as the table `bfs perf-diff` prints.
pub fn render_diff(diff: &PerfDiff, base_label: &str, new_label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf-diff: base={base_label} new={new_label} noise={:.1}%",
        diff.noise_pct
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>7} {:>14} {:>14} {:>7}  status",
        "engine", "threads", "base TEPS", "new TEPS", "ratio"
    );
    for r in &diff.rows {
        let label = if r.reorder == "none" {
            r.engine.clone()
        } else {
            format!("{}+{}", r.engine, r.reorder)
        };
        let _ = writeln!(
            out,
            "  {:<14} {:>7} {:>14.0} {:>14.0} {:>6.2}x  {}",
            label,
            r.threads,
            r.base_teps,
            r.new_teps,
            r.ratio,
            if r.calibrator {
                "calibrator"
            } else if r.regressed {
                "REGRESSED"
            } else {
                "ok"
            }
        );
    }
    if let Some(engine) = &diff.calibrated_against {
        let _ = writeln!(
            out,
            "  calibration: {:.3}x host drift from `{engine}` rows (floor scaled to {:.3})",
            diff.calibration,
            diff.calibration * (1.0 - diff.noise_pct / 100.0),
        );
    }
    for m in &diff.missing {
        let _ = writeln!(out, "  {m}: in base but MISSING from new");
    }
    for a in &diff.added {
        let _ = writeln!(out, "  {a}: new run (no baseline to compare)");
    }
    let _ = writeln!(out, "  hub gate: base {}", gate_line(&diff.base_gate));
    let _ = writeln!(out, "  hub gate: new  {}", gate_line(&diff.new_gate));
    let _ = writeln!(out, "  reorder gate: base {}", reorder_gate_line(&diff.base_reorder_gate));
    let _ = writeln!(out, "  reorder gate: new  {}", reorder_gate_line(&diff.new_reorder_gate));
    let regressions = diff.regressions().len();
    let _ = writeln!(
        out,
        "  verdict: {} ({} compared, {} regressed, {} missing)",
        if diff.passes() { "PASS" } else { "FAIL" },
        diff.rows.len(),
        regressions,
        diff.missing.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpubench::{report_to_json, run_cpu_bench, CpuBenchConfig};

    fn report() -> CpuBenchReport {
        run_cpu_bench(&CpuBenchConfig {
            scale: 8,
            edge_factor: 8,
            seed: 7,
            sources: 16,
            group_size: 16,
            threads: vec![1, 2],
            check: false,
            ..CpuBenchConfig::default()
        })
    }

    #[test]
    fn identical_reports_pass_at_zero_noise() {
        let r = report();
        let diff = diff_reports(&r, &r, 0.0, None);
        assert_eq!(diff.rows.len(), r.runs.len());
        assert!(diff.passes());
        assert!(diff.missing.is_empty() && diff.added.is_empty());
        for row in &diff.rows {
            assert!((row.ratio - 1.0).abs() < 1e-12);
        }
        let text = render_diff(&diff, "a.json", "b.json");
        assert!(text.contains("PASS"));
        assert!(text.contains("hub gate: base not run"));
    }

    #[test]
    fn teps_drop_beyond_noise_regresses() {
        let base = report();
        let mut slow = base.clone();
        for run in &mut slow.runs {
            run.teps *= 0.5;
        }
        // A 50% drop is outside a 30% band but inside a 60% band.
        let diff = diff_reports(&base, &slow, DEFAULT_NOISE_PCT, None);
        assert!(!diff.passes());
        assert_eq!(diff.regressions().len(), base.runs.len());
        assert!(render_diff(&diff, "a", "b").contains("REGRESSED"));
        assert!(diff_reports(&base, &slow, 60.0, None).passes());
        // Improvements never regress.
        let mut fast = base.clone();
        for run in &mut fast.runs {
            run.teps *= 2.0;
        }
        assert!(diff_reports(&base, &fast, 0.0, None).passes());
    }

    #[test]
    fn disappeared_runs_fail_the_check() {
        let base = report();
        let mut pruned = base.clone();
        pruned.runs.retain(|r| r.threads != 2);
        pruned.speedups.retain(|s| s.threads != 2);
        let diff = diff_reports(&base, &pruned, 30.0, None);
        assert!(!diff.passes());
        assert_eq!(diff.missing.len(), 2); // baseline@2t + pooled@2t
        assert!(diff.regressions().is_empty());
        // The reverse direction is additive and passes.
        let diff = diff_reports(&pruned, &base, 30.0, None);
        assert!(diff.passes());
        assert_eq!(diff.added.len(), 2);
    }

    #[test]
    fn calibration_absorbs_uniform_host_drift_but_not_extra_overhead() {
        let base = report();
        // The whole host slowed 20%: every run, including the unprofiled
        // baseline, drops uniformly. A raw 5% band would flag everything.
        let mut slow = base.clone();
        for run in &mut slow.runs {
            run.teps *= 0.8;
        }
        assert!(!diff_reports(&base, &slow, 5.0, None).passes());
        let diff = diff_reports(&base, &slow, 5.0, Some("baseline"));
        assert!(diff.passes(), "uniform drift should calibrate away");
        assert!((diff.calibration - 0.8).abs() < 1e-9);
        assert_eq!(diff.calibrated_against.as_deref(), Some("baseline"));
        let text = render_diff(&diff, "a", "b");
        assert!(text.contains("calibration:"));
        assert!(text.contains("calibrator"));

        // Same drift plus genuine 15% overhead on the engines: the
        // calibrated 5% band still catches it.
        let mut overhead = slow.clone();
        for run in &mut overhead.runs {
            if run.engine != "baseline" {
                run.teps *= 0.85;
            }
        }
        let diff = diff_reports(&base, &overhead, 5.0, Some("baseline"));
        assert!(!diff.passes());
        assert!(diff.regressions().iter().all(|r| r.engine != "baseline"));

        // Calibration never tightens: a lucky-fast reference clamps to 1.0.
        let mut fast_ref = base.clone();
        for run in &mut fast_ref.runs {
            if run.engine == "baseline" {
                run.teps *= 1.5;
            }
        }
        let diff = diff_reports(&base, &fast_ref, 5.0, Some("baseline"));
        assert!((diff.calibration - 1.0).abs() < 1e-9);
        assert!(diff.passes());

        // Naming an engine absent from the reports is a no-op.
        let diff = diff_reports(&base, &base, 5.0, Some("no-such-engine"));
        assert!((diff.calibration - 1.0).abs() < 1e-9);
        assert!(diff.calibrated_against.is_none());
    }

    #[test]
    fn reordered_rows_match_only_their_own_ordering() {
        use ibfs_graph::reorder::ReorderKind;
        let base = run_cpu_bench(&CpuBenchConfig {
            scale: 8,
            edge_factor: 8,
            seed: 7,
            sources: 16,
            group_size: 16,
            threads: vec![1],
            reorders: vec![ReorderKind::None, ReorderKind::HubCluster],
            check: false,
            ..CpuBenchConfig::default()
        });
        // baseline + pooled@none + pooled@hub, all matched one-to-one.
        let diff = diff_reports(&base, &base, 0.0, None);
        assert_eq!(diff.rows.len(), 3);
        assert!(diff.passes());
        assert!(diff.rows.iter().any(|r| r.reorder == "hub"));
        let text = render_diff(&diff, "a", "b");
        assert!(text.contains("pooled+hub"));
        assert!(text.contains("reorder gate: base not run"));

        // Tank only the reordered row: the unreordered rows must not
        // absorb the regression, and the flagged row names its ordering.
        let mut slow = base.clone();
        for run in &mut slow.runs {
            if run.reorder == "hub" {
                run.teps *= 0.1;
            }
        }
        let diff = diff_reports(&base, &slow, 5.0, None);
        let regs = diff.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].reorder, "hub");

        // Dropping the reordered row from the candidate is a MISSING key
        // spelled with its ordering, not a silent re-match against `none`.
        let mut pruned = base.clone();
        pruned.runs.retain(|r| r.reorder != "hub");
        pruned.speedups.retain(|s| s.reorder != "hub");
        let diff = diff_reports(&base, &pruned, 30.0, None);
        assert!(!diff.passes());
        assert_eq!(diff.missing, vec!["pooled+hub@1t".to_string()]);
    }

    #[test]
    fn text_entry_point_validates_both_sides() {
        let good = report_to_json(&report());
        let diff =
            diff_report_texts(&good, "base.json", &good, "new.json", 5.0, None).expect("valid pair");
        assert!(diff.passes());
        let err = diff_report_texts("not json", "base.json", &good, "new.json", 5.0, None).unwrap_err();
        assert!(err.contains("base.json"));
        let err = diff_report_texts(&good, "base.json", "{}", "new.json", 5.0, None).unwrap_err();
        assert!(err.contains("new.json"));
    }
}
