//! Betweenness centrality via Brandes' algorithm with iBFS forward passes.
//!
//! Brandes (2001) computes betweenness with, per source, a BFS that yields
//! depths and shortest-path counts followed by a reverse dependency
//! accumulation. iBFS accelerates the BFS stage by running the sources
//! concurrently in groups; the (cheap) sigma/delta accumulations use the
//! returned depth arrays directly.

use ibfs::engine::{EngineKind, GpuGraph};
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use ibfs_gpu_sim::{DeviceConfig, Profiler};

/// Betweenness centrality scores for all vertices, using BFS from
/// `sources` (pass all vertices for exact betweenness; a sample for the
/// usual approximation).
pub fn betweenness_centrality(
    graph: &Csr,
    reverse: &Csr,
    sources: &[VertexId],
    engine: EngineKind,
    group_size: usize,
) -> Vec<f64> {
    assert!(group_size > 0);
    let n = graph.num_vertices();
    let mut bc = vec![0.0f64; n];
    let engine = engine.build();
    let mut prof = Profiler::new(DeviceConfig::k40());
    let g = GpuGraph::new(graph, reverse, &mut prof);
    for group in sources.chunks(group_size) {
        let run = engine.run_group(&g, group, &mut prof);
        for (j, &s) in group.iter().enumerate() {
            accumulate_dependencies(graph, reverse, s, run.instance_depths(j), &mut bc);
        }
    }
    bc
}

/// One Brandes dependency-accumulation pass from `s`, given the BFS depth
/// array (the part iBFS produced).
pub fn accumulate_dependencies(
    graph: &Csr,
    reverse: &Csr,
    s: VertexId,
    depths: &[Depth],
    bc: &mut [f64],
) {
    let n = graph.num_vertices();
    debug_assert_eq!(depths.len(), n);
    // Order vertices by depth (counting sort over levels).
    let max_depth = depths
        .iter()
        .copied()
        .filter(|&d| d != DEPTH_UNVISITED)
        .max()
        .unwrap_or(0);
    let mut by_level: Vec<Vec<VertexId>> = vec![Vec::new(); max_depth as usize + 1];
    for (v, &d) in depths.iter().enumerate() {
        if d != DEPTH_UNVISITED {
            by_level[d as usize].push(v as VertexId);
        }
    }

    // Sigma: number of shortest paths from s, in increasing depth.
    let mut sigma = vec![0.0f64; n];
    sigma[s as usize] = 1.0;
    for level in by_level.iter().skip(1) {
        for &v in level {
            let dv = depths[v as usize];
            // Parents of v are its in-neighbors one level up.
            let mut total = 0.0;
            for &p in reverse.neighbors(v) {
                if depths[p as usize] != DEPTH_UNVISITED && depths[p as usize] + 1 == dv {
                    total += sigma[p as usize];
                }
            }
            sigma[v as usize] = total;
        }
    }

    // Delta: dependency accumulation in decreasing depth.
    let mut delta = vec![0.0f64; n];
    for level in by_level.iter().rev() {
        for &w in level {
            let dw = depths[w as usize];
            if dw == 0 {
                continue;
            }
            for &p in reverse.neighbors(w) {
                if depths[p as usize] != DEPTH_UNVISITED && depths[p as usize] + 1 == dw {
                    let share = sigma[p as usize] / sigma[w as usize];
                    delta[p as usize] += share * (1.0 + delta[w as usize]);
                }
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::figure1;
    use ibfs_graph::CsrBuilder;

    /// Plain textbook Brandes for cross-checking.
    fn reference_brandes(g: &Csr) -> Vec<f64> {
        let n = g.num_vertices();
        let mut bc = vec![0.0; n];
        for s in g.vertices() {
            let mut stack = Vec::new();
            let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            let mut sigma = vec![0.0; n];
            let mut dist = vec![-1i64; n];
            sigma[s as usize] = 1.0;
            dist[s as usize] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                stack.push(v);
                for &w in g.neighbors(v) {
                    if dist[w as usize] < 0 {
                        dist[w as usize] = dist[v as usize] + 1;
                        queue.push_back(w);
                    }
                    if dist[w as usize] == dist[v as usize] + 1 {
                        sigma[w as usize] += sigma[v as usize];
                        preds[w as usize].push(v);
                    }
                }
            }
            let mut delta = vec![0.0; n];
            while let Some(w) = stack.pop() {
                for &v in &preds[w as usize] {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
                if w != s {
                    bc[w as usize] += delta[w as usize];
                }
            }
        }
        bc
    }

    #[test]
    fn matches_reference_brandes_on_figure1() {
        let g = figure1();
        let r = g.reverse();
        let sources: Vec<VertexId> = g.vertices().collect();
        let got = betweenness_centrality(&g, &r, &sources, EngineKind::Bitwise, 9);
        let want = reference_brandes(&g);
        for v in 0..g.num_vertices() {
            assert!(
                (got[v] - want[v]).abs() < 1e-9,
                "vertex {v}: got {} want {}",
                got[v],
                want[v]
            );
        }
    }

    #[test]
    fn path_graph_center_has_highest_betweenness() {
        // 0 - 1 - 2 - 3 - 4: vertex 2 lies on the most shortest paths.
        let mut b = CsrBuilder::new(5);
        for v in 0..4 {
            b.add_undirected_edge(v, v + 1);
        }
        let g = b.build();
        let r = g.reverse();
        let sources: Vec<VertexId> = g.vertices().collect();
        let bc = betweenness_centrality(&g, &r, &sources, EngineKind::Bitwise, 5);
        assert!(bc[2] > bc[1] && bc[2] > bc[3]);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[4], 0.0);
    }

    #[test]
    fn engines_agree() {
        let g = figure1();
        let r = g.reverse();
        let sources: Vec<VertexId> = g.vertices().collect();
        let a = betweenness_centrality(&g, &r, &sources, EngineKind::Bitwise, 9);
        let b = betweenness_centrality(&g, &r, &sources, EngineKind::Joint, 9);
        let c = betweenness_centrality(&g, &r, &sources, EngineKind::Sequential, 9);
        for v in 0..g.num_vertices() {
            assert!((a[v] - b[v]).abs() < 1e-9);
            assert!((a[v] - c[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_sources_give_partial_scores() {
        let g = figure1();
        let r = g.reverse();
        let bc = betweenness_centrality(&g, &r, &[0, 8], EngineKind::Bitwise, 2);
        // Non-negative and not all zero on a connected graph.
        assert!(bc.iter().all(|&x| x >= 0.0));
        assert!(bc.iter().any(|&x| x > 0.0));
    }
}
