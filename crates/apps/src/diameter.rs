//! Graph diameter and eccentricity estimation via concurrent BFS.
//!
//! Eccentricity/diameter computation is a classic consumer of multi-source
//! BFS: the double-sweep heuristic needs a handful of traversals, the
//! exact diameter needs eccentricities of many vertices — both are
//! embarrassingly concurrent and map directly onto iBFS groups.

use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::RunConfig;
use ibfs::service::IbfsService;
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use std::collections::HashMap;

/// Eccentricity of a source given its BFS depth array: the depth of the
/// farthest *reachable* vertex (0 for an isolated vertex).
pub fn eccentricity_from_depths(depths: &[Depth]) -> Depth {
    depths
        .iter()
        .copied()
        .filter(|&d| d != DEPTH_UNVISITED)
        .max()
        .unwrap_or(0)
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest vertex found; returns that second eccentricity (a tight lower
/// bound on most real-world graphs).
pub fn double_sweep_lower_bound(graph: &Csr, reverse: &Csr, start: VertexId) -> Depth {
    // Two dependent single-source requests against one resident upload —
    // the request-after-request shape [`IbfsService`] amortizes.
    let mut svc = IbfsService::new(graph, reverse, RunConfig::default());
    let first = svc.run(&[start]);
    let depths = first.groups[0].instance_depths(0);
    let far = depths
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != DEPTH_UNVISITED)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    let second = svc.run(&[far]);
    eccentricity_from_depths(second.groups[0].instance_depths(0))
}

/// Exact eccentricities of the given vertices, computed `group_size` at a
/// time through concurrent BFS. Returns `(vertex, eccentricity)` pairs in
/// input order.
pub fn eccentricities(
    graph: &Csr,
    reverse: &Csr,
    vertices: &[VertexId],
    engine: EngineKind,
    group_size: usize,
) -> Vec<(VertexId, Depth)> {
    assert!(group_size > 0);
    let mut svc = IbfsService::new(graph, reverse, RunConfig {
        engine,
        grouping: GroupingStrategy::Random { seed: 7, group_size },
        ..Default::default()
    });
    let grouping = svc.grouping().group(graph, vertices);
    let run = svc.run(vertices);
    // Eccentricity depends only on the source vertex, so grouping may
    // permute freely; map scores back by id.
    let mut by_vertex: HashMap<VertexId, Depth> = HashMap::new();
    for (gi, group) in grouping.groups.iter().enumerate() {
        for (j, &v) in group.iter().enumerate() {
            by_vertex
                .insert(v, eccentricity_from_depths(run.groups[gi].instance_depths(j)));
        }
    }
    vertices.iter().map(|&v| (v, by_vertex[&v])).collect()
}

/// Exact diameter: maximum eccentricity over all vertices (APSP through
/// concurrent BFS). `O(|V|)` traversals — use the double sweep when an
/// estimate suffices.
pub fn exact_diameter(graph: &Csr, reverse: &Csr, group_size: usize) -> Depth {
    let all: Vec<VertexId> = graph.vertices().collect();
    eccentricities(graph, reverse, &all, EngineKind::Bitwise, group_size)
        .into_iter()
        .map(|(_, e)| e)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::figure1;
    use ibfs_graph::CsrBuilder;

    fn path(n: usize) -> Csr {
        let mut b = CsrBuilder::new(n);
        for v in 0..n - 1 {
            b.add_undirected_edge(v as VertexId, v as VertexId + 1);
        }
        b.build()
    }

    #[test]
    fn path_graph_diameter_is_length() {
        let g = path(10);
        let r = g.reverse();
        assert_eq!(exact_diameter(&g, &r, 10), 9);
        // Double sweep from the middle finds the true diameter on a path.
        assert_eq!(double_sweep_lower_bound(&g, &r, 5), 9);
    }

    #[test]
    fn figure1_diameter() {
        let g = figure1();
        let r = g.reverse();
        let exact = exact_diameter(&g, &r, 9);
        // Validate against brute-force reference BFS.
        let brute = g
            .vertices()
            .map(|v| eccentricity_from_depths(&ibfs_graph::validate::reference_bfs(&g, v)))
            .max()
            .unwrap();
        assert_eq!(exact, brute);
        let lower = double_sweep_lower_bound(&g, &r, 0);
        assert!(lower <= exact);
        assert!(lower >= exact.saturating_sub(1));
    }

    #[test]
    fn eccentricities_match_reference_per_vertex() {
        let g = figure1();
        let r = g.reverse();
        let vs: Vec<VertexId> = g.vertices().collect();
        for (v, e) in eccentricities(&g, &r, &vs, EngineKind::Joint, 4) {
            let want =
                eccentricity_from_depths(&ibfs_graph::validate::reference_bfs(&g, v));
            assert_eq!(e, want, "vertex {v}");
        }
    }

    #[test]
    fn isolated_vertex_has_zero_eccentricity() {
        let g = CsrBuilder::new(3).build();
        let r = g.reverse();
        let e = eccentricities(&g, &r, &[1], EngineKind::Sequential, 1);
        assert_eq!(e, vec![(1, 0)]);
        assert_eq!(eccentricity_from_depths(&[]), 0);
    }
}
