//! Closeness centrality from iBFS depth arrays.
//!
//! The closeness of `s` is the reciprocal of its average shortest-path
//! distance to the vertices it can reach, scaled by the reached fraction
//! (the Wasserman–Faust generalization, standard for disconnected graphs):
//!
//! ```text
//! C(s) = (r - 1)² / ((n - 1) · Σ_t d(s, t))
//! ```
//!
//! where `r` is the number of vertices reachable from `s`. Computing
//! closeness for many vertices is one of the paper's motivating concurrent
//! BFS workloads (top-k closeness search, Olsen et al.).

use ibfs::engine::EngineKind;
use ibfs::groupby::GroupingStrategy;
use ibfs::runner::RunConfig;
use ibfs::service::IbfsService;
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use std::collections::HashMap;

/// Closeness of one source given its depth array.
pub fn closeness_from_depths(depths: &[Depth]) -> f64 {
    let n = depths.len();
    if n <= 1 {
        return 0.0;
    }
    let mut reached = 0u64;
    let mut total = 0u64;
    for &d in depths {
        if d != DEPTH_UNVISITED {
            reached += 1;
            total += d as u64;
        }
    }
    if reached <= 1 || total == 0 {
        return 0.0;
    }
    let r = reached as f64;
    (r - 1.0) * (r - 1.0) / ((n as f64 - 1.0) * total as f64)
}

/// Closeness centrality for each source, in source order.
pub fn closeness_centrality(
    graph: &Csr,
    reverse: &Csr,
    sources: &[VertexId],
    engine: EngineKind,
    group_size: usize,
) -> Vec<f64> {
    assert!(group_size > 0);
    let mut svc = IbfsService::new(graph, reverse, RunConfig {
        engine,
        grouping: GroupingStrategy::Random { seed: 7, group_size },
        ..Default::default()
    });
    let grouping = svc.grouping().group(graph, sources);
    let run = svc.run(sources);
    // Closeness depends only on the source vertex, so grouping may permute
    // freely; map scores back by id.
    let mut by_vertex: HashMap<VertexId, f64> = HashMap::new();
    for (gi, group) in grouping.groups.iter().enumerate() {
        for (j, &s) in group.iter().enumerate() {
            by_vertex.insert(s, closeness_from_depths(run.groups[gi].instance_depths(j)));
        }
    }
    sources.iter().map(|s| by_vertex[s]).collect()
}

/// The `k` vertices with the highest closeness among `candidates`,
/// descending. Ties break by vertex id.
pub fn top_k_closeness(
    graph: &Csr,
    reverse: &Csr,
    candidates: &[VertexId],
    k: usize,
    engine: EngineKind,
    group_size: usize,
) -> Vec<(VertexId, f64)> {
    let scores = closeness_centrality(graph, reverse, candidates, engine, group_size);
    let mut pairs: Vec<(VertexId, f64)> = candidates.iter().copied().zip(scores).collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::figure1;
    use ibfs_graph::validate::reference_bfs;
    use ibfs_graph::CsrBuilder;

    #[test]
    fn matches_direct_computation() {
        let g = figure1();
        let r = g.reverse();
        let sources: Vec<VertexId> = g.vertices().collect();
        let got = closeness_centrality(&g, &r, &sources, EngineKind::Bitwise, 9);
        for (i, &s) in sources.iter().enumerate() {
            let want = closeness_from_depths(&reference_bfs(&g, s));
            assert!((got[i] - want).abs() < 1e-12, "source {s}");
        }
    }

    #[test]
    fn star_center_is_most_central() {
        let mut b = CsrBuilder::new(7);
        for v in 1..7 {
            b.add_undirected_edge(0, v);
        }
        let g = b.build();
        let r = g.reverse();
        let candidates: Vec<VertexId> = g.vertices().collect();
        let top = top_k_closeness(&g, &r, &candidates, 1, EngineKind::Bitwise, 7);
        assert_eq!(top[0].0, 0);
        assert!(top[0].1 > 0.9); // center is one hop from everything
    }

    #[test]
    fn disconnected_vertex_has_zero_closeness() {
        let mut b = CsrBuilder::new(4);
        b.add_undirected_edge(0, 1);
        // 2 and 3 isolated.
        let g = b.build();
        let r = g.reverse();
        let scores = closeness_centrality(&g, &r, &[2], EngineKind::Sequential, 1);
        assert_eq!(scores[0], 0.0);
    }

    #[test]
    fn closeness_from_depths_edge_cases() {
        assert_eq!(closeness_from_depths(&[]), 0.0);
        assert_eq!(closeness_from_depths(&[0]), 0.0);
        // Two vertices at distance 1: C = 1.
        assert!((closeness_from_depths(&[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_truncates_and_sorts() {
        let g = figure1();
        let r = g.reverse();
        let candidates: Vec<VertexId> = g.vertices().collect();
        let top = top_k_closeness(&g, &r, &candidates, 3, EngineKind::Bitwise, 9);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        // Vertex 5 has degree 5 — the most central in Figure 1.
        assert_eq!(top[0].0, 5);
    }
}
