//! k-hop reachability index (the paper's Table 1 application).
//!
//! The index answers "is there a path from `s` to `t` with fewer than `k`
//! edges?" in O(1) after construction, by materializing the k-hop
//! neighborhood of every indexed source as a bitmap. Construction "computes
//! the first k levels BFS for a large amount of selected vertices" — a
//! truncated concurrent BFS, which is where iBFS's speedup comes in.

use ibfs::bitwise::BitwiseEngine;
use ibfs::cpu::{CpuIbfs, CpuMsBfs};
use ibfs::engine::{Engine, GpuGraph};
use ibfs::sequential::SequentialEngine;
use ibfs::word::WordWidth;
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use ibfs_gpu_sim::{DeviceConfig, Profiler};

/// A k-hop reachability index over a set of source vertices.
#[derive(Clone, Debug)]
pub struct ReachabilityIndex {
    /// Hop bound: the index answers queries about paths of ≤ `k` edges.
    pub k: u32,
    sources: Vec<VertexId>,
    num_vertices: usize,
    /// One bit per (source, vertex): reachable within `k` hops.
    bits: Vec<u64>,
}

/// Which implementation builds the index (the four columns of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexBuilder {
    /// MS-BFS on the CPU.
    CpuMsBfs,
    /// iBFS on the CPU.
    CpuIbfs,
    /// Single-BFS GPU traversal (B40C-like), sequential over sources.
    GpuB40c,
    /// Full bitwise GPU iBFS.
    GpuIbfs,
}

/// Result of building an index: the index plus its build time. GPU builders
/// report simulated seconds; CPU builders report wall-clock seconds.
#[derive(Clone, Debug)]
pub struct BuildOutcome {
    /// The constructed index.
    pub index: ReachabilityIndex,
    /// Build time in (simulated or wall-clock) seconds.
    pub seconds: f64,
}

impl ReachabilityIndex {
    /// Builds the index for `sources` with hop bound `k` using the chosen
    /// implementation. `group_size` bounds the concurrent-BFS group (the
    /// CPU engines cap at their word width, up to
    /// [`ibfs::cpu::CPU_GROUP`]). Uses default threads and word width; see
    /// [`ReachabilityIndex::build_with`].
    pub fn build(
        graph: &Csr,
        reverse: &Csr,
        sources: &[VertexId],
        k: u32,
        builder: IndexBuilder,
        group_size: usize,
    ) -> BuildOutcome {
        Self::build_with(graph, reverse, sources, k, builder, group_size, 0, WordWidth::default())
    }

    /// [`ReachabilityIndex::build`] with explicit CPU `threads` (0 = all
    /// available) and status-word `width`. The CPU builders construct one
    /// resident [`ibfs::cpu::CpuService`] and reuse its pool and arena
    /// across all groups. GPU builders ignore both knobs.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with(
        graph: &Csr,
        reverse: &Csr,
        sources: &[VertexId],
        k: u32,
        builder: IndexBuilder,
        group_size: usize,
        threads: usize,
        width: WordWidth,
    ) -> BuildOutcome {
        assert!(k > 0, "hop bound must be positive");
        let n = graph.num_vertices();
        let words_per_source = n.div_ceil(64);
        let mut index = ReachabilityIndex {
            k,
            sources: sources.to_vec(),
            num_vertices: n,
            bits: vec![0u64; sources.len() * words_per_source],
        };
        let mut seconds = 0.0;

        let absorb = |index: &mut ReachabilityIndex,
                          group_offset: usize,
                          depths: &[Depth],
                          ni: usize| {
            for j in 0..ni {
                for v in 0..n {
                    let d = depths[j * n + v];
                    if d != DEPTH_UNVISITED && d as u32 <= k {
                        index.set(group_offset + j, v as VertexId);
                    }
                }
            }
        };

        match builder {
            IndexBuilder::CpuMsBfs | IndexBuilder::CpuIbfs => {
                // One resident service: pool + arena spawned once, reused
                // across every group of the build.
                let mut svc = match builder {
                    IndexBuilder::CpuMsBfs => {
                        CpuMsBfs { max_levels: k, threads, width, ..Default::default() }
                            .service(graph, reverse)
                    }
                    _ => CpuIbfs { max_levels: k, threads, width, ..Default::default() }
                        .service(graph, reverse),
                };
                let group_size = group_size.min(svc.capacity());
                let mut offset = 0;
                for group in sources.chunks(group_size) {
                    let run = svc
                        .run_group(group)
                        .expect("reachability groups are sized to capacity");
                    seconds += run.wall_seconds;
                    absorb(&mut index, offset, &run.depths, group.len());
                    offset += group.len();
                }
            }
            IndexBuilder::GpuB40c | IndexBuilder::GpuIbfs => {
                let mut prof = Profiler::new(DeviceConfig::k40());
                let g = GpuGraph::new(graph, reverse, &mut prof);
                let mut offset = 0;
                for group in sources.chunks(group_size) {
                    let run = match builder {
                        IndexBuilder::GpuB40c => SequentialEngine {
                            max_levels: k,
                            ..Default::default()
                        }
                        .run_group(&g, group, &mut prof),
                        _ => BitwiseEngine::default()
                            .with_max_levels(k)
                            .run_group(&g, group, &mut prof),
                    };
                    seconds += run.sim_seconds;
                    absorb(&mut index, offset, &run.depths, group.len());
                    offset += group.len();
                }
            }
        }
        BuildOutcome { index, seconds }
    }

    fn set(&mut self, source_idx: usize, v: VertexId) {
        let words = self.num_vertices.div_ceil(64);
        self.bits[source_idx * words + v as usize / 64] |= 1 << (v % 64);
    }

    /// Whether `t` is reachable from the `source_idx`-th indexed source
    /// within `k` hops.
    pub fn reachable(&self, source_idx: usize, t: VertexId) -> bool {
        let words = self.num_vertices.div_ceil(64);
        self.bits[source_idx * words + t as usize / 64] & (1 << (t % 64)) != 0
    }

    /// Looks up a source vertex's index position.
    pub fn source_index(&self, s: VertexId) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Answers "path from `s` to `t` with at most `k` edges?" for an indexed
    /// source. Returns `None` when `s` is not indexed.
    pub fn query(&self, s: VertexId, t: VertexId) -> Option<bool> {
        self.source_index(s).map(|i| self.reachable(i, t))
    }

    /// Number of indexed sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Total index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::suite::figure1;
    use ibfs_graph::validate::reference_bfs_capped;

    fn check_against_reference(g: &Csr, sources: &[VertexId], k: u32, builder: IndexBuilder) {
        let r = g.reverse();
        let out = ReachabilityIndex::build(g, &r, sources, k, builder, 32);
        for (i, &s) in sources.iter().enumerate() {
            let depths = reference_bfs_capped(g, s, k as Depth);
            for v in g.vertices() {
                let want = depths[v as usize] != DEPTH_UNVISITED;
                assert_eq!(
                    out.index.reachable(i, v),
                    want,
                    "{builder:?}: source {s} vertex {v} k={k}"
                );
            }
        }
        assert!(out.seconds > 0.0);
    }

    #[test]
    fn all_builders_match_reference_on_figure1() {
        let g = figure1();
        let sources = [0, 3, 6, 8];
        for builder in [
            IndexBuilder::CpuMsBfs,
            IndexBuilder::CpuIbfs,
            IndexBuilder::GpuB40c,
            IndexBuilder::GpuIbfs,
        ] {
            check_against_reference(&g, &sources, 3, builder);
        }
    }

    #[test]
    fn truncation_excludes_far_vertices() {
        let g = figure1();
        let r = g.reverse();
        let out =
            ReachabilityIndex::build(&g, &r, &[0], 1, IndexBuilder::GpuIbfs, 16);
        // From 0, 1-hop reaches {0, 1, 4} only.
        assert!(out.index.reachable(0, 0));
        assert!(out.index.reachable(0, 1));
        assert!(out.index.reachable(0, 4));
        assert!(!out.index.reachable(0, 5));
        assert!(!out.index.reachable(0, 8));
    }

    #[test]
    fn query_api() {
        let g = figure1();
        let r = g.reverse();
        let out = ReachabilityIndex::build(&g, &r, &[6, 8], 2, IndexBuilder::GpuIbfs, 16);
        assert_eq!(out.index.query(6, 5), Some(true)); // 6→3→5 or 6→7→5
        assert_eq!(out.index.query(6, 0), Some(false)); // 3 hops away
        assert_eq!(out.index.query(1, 0), None); // 1 not indexed
        assert_eq!(out.index.num_sources(), 2);
        assert!(out.index.size_bytes() > 0);
    }

    #[test]
    fn gpu_ibfs_builds_faster_than_b40c() {
        // Table 1's headline: GPU-iBFS is ~21× faster than B40C.
        let g = rmat(10, 16, RmatParams::graph500(), 12);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..128).collect();
        let ibfs = ReachabilityIndex::build(&g, &r, &sources, 3, IndexBuilder::GpuIbfs, 128);
        let b40c = ReachabilityIndex::build(&g, &r, &sources, 3, IndexBuilder::GpuB40c, 128);
        assert!(
            ibfs.seconds < b40c.seconds,
            "iBFS {} vs B40C {}",
            ibfs.seconds,
            b40c.seconds
        );
        // Same answers.
        for i in 0..sources.len() {
            for v in g.vertices() {
                assert_eq!(ibfs.index.reachable(i, v), b40c.index.reachable(i, v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "hop bound must be positive")]
    fn rejects_zero_k() {
        let g = figure1();
        let r = g.reverse();
        ReachabilityIndex::build(&g, &r, &[0], 0, IndexBuilder::GpuIbfs, 16);
    }
}
