//! Applications built on the iBFS public API.
//!
//! The paper motivates concurrent BFS through downstream graph analytics;
//! this crate implements the three it names:
//!
//! * [`reachability`] — the k-hop reachability index of Table 1 ("one can
//!   leverage iBFS to construct the index for answering graph reachability
//!   queries ... whether there exists a path from vertex s to t with the
//!   number of edges in-between less than k").
//! * [`betweenness`] — Brandes betweenness centrality with the forward BFS
//!   phase driven by concurrent traversals.
//! * [`closeness`] — closeness centrality and top-k closeness search from
//!   iBFS depth arrays.
//! * [`diameter`] — eccentricities, double-sweep and exact diameter via
//!   concurrent traversals.

pub mod betweenness;
pub mod closeness;
pub mod diameter;
pub mod reachability;

pub use betweenness::betweenness_centrality;
pub use diameter::{double_sweep_lower_bound, exact_diameter};
pub use closeness::{closeness_centrality, top_k_closeness};
pub use reachability::ReachabilityIndex;
