//! Cluster scaling: partition groups over devices, report the makespan.
//!
//! Each simulated device keeps one resident graph upload and runs its
//! assigned groups back to back, releasing scratch between groups — the same
//! residency discipline as [`ibfs::service::IbfsService`], and the same
//! [`DeviceScheduler`] prices each device's timeline.

use ibfs::engine::{EngineKind, GpuGraph, GroupRun};
use ibfs::groupby::GroupingStrategy;
use ibfs::service::{BackToBack, DeviceScheduler};
use ibfs_graph::partition::{bin_loads, lpt_assign};
use ibfs_graph::{Csr, VertexId};
use ibfs_gpu_sim::{CostModel, DeviceConfig, Profiler};
use ibfs_util::json_struct;

/// Configuration of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of simulated GPUs (the paper sweeps 1..=112 K20s).
    pub gpus: usize,
    /// Per-device engine.
    pub engine: EngineKind,
    /// Source grouping (groups are the unit of device assignment).
    pub grouping: GroupingStrategy,
    /// Per-device hardware.
    pub device: DeviceConfig,
    /// Use LPT scheduling by estimated group weight instead of round-robin.
    /// The paper distributes statically; LPT models its balance-aware
    /// placement.
    pub lpt: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            gpus: 1,
            engine: EngineKind::Bitwise,
            grouping: GroupingStrategy::group_by(),
            device: DeviceConfig::k20(),
            lpt: true,
        }
    }
}

/// Per-device outcome.
#[derive(Clone, Debug)]
pub struct DeviceRun {
    /// Device index.
    pub device: usize,
    /// Groups executed on this device.
    pub groups: usize,
    /// Instances executed on this device.
    pub instances: usize,
    /// Simulated seconds this device was busy.
    pub sim_seconds: f64,
    /// Edges traversed by this device's instances.
    pub traversed_edges: u64,
}

json_struct!(DeviceRun { device, groups, instances, sim_seconds, traversed_edges });

/// Result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// Number of devices.
    pub gpus: usize,
    /// Per-device outcomes.
    pub devices: Vec<DeviceRun>,
    /// Makespan: the slowest device's time (what the paper reports).
    pub makespan_seconds: f64,
    /// Total traversed edges across the cluster.
    pub traversed_edges: u64,
}

json_struct!(ClusterRun { gpus, devices, makespan_seconds, traversed_edges });

impl ClusterRun {
    /// Aggregate cluster traversal rate: all traversed edges over the
    /// makespan.
    pub fn teps(&self) -> f64 {
        ibfs::metrics::teps(self.traversed_edges, self.makespan_seconds)
    }

    /// Speedup relative to a single-device run time `t1`.
    pub fn speedup_vs(&self, t1: f64) -> f64 {
        if self.makespan_seconds <= 0.0 {
            0.0
        } else {
            t1 / self.makespan_seconds
        }
    }
}

/// Runs iBFS from `sources` across `config.gpus` simulated devices.
pub fn run_cluster(
    graph: &Csr,
    reverse: &Csr,
    sources: &[VertexId],
    config: &ClusterConfig,
) -> ClusterRun {
    assert!(config.gpus > 0, "need at least one GPU");
    let grouping = config.grouping.group(graph, sources);
    let engine = config.engine.build();

    // Assign groups to devices. Weight = estimated work ∝ Σ outdeg of the
    // whole graph (every group traverses everything) — in practice group
    // *size* is the imbalance driver, with a skew correction from the
    // group's source degrees (hub-adjacent groups finish bottom-up sooner).
    // The same model prices batches in the online `router`.
    let weights: Vec<u64> = grouping
        .groups
        .iter()
        .map(|g| crate::router::batch_weight(graph, g))
        .collect();
    let assignment = if config.lpt {
        lpt_assign(&weights, config.gpus)
    } else {
        (0..grouping.groups.len()).map(|i| i % config.gpus).collect()
    };
    let _loads = bin_loads(&weights, &assignment, config.gpus);

    let mut devices: Vec<DeviceRun> = (0..config.gpus)
        .map(|d| DeviceRun {
            device: d,
            groups: 0,
            instances: 0,
            sim_seconds: 0.0,
            traversed_edges: 0,
        })
        .collect();

    // Each device uploads the graph once and keeps it resident; scratch is
    // released between the groups it serves. Counters are unaffected: all
    // allocations are segment-aligned, so transaction counts do not depend
    // on the scratch base address.
    struct DeviceState {
        prof: Profiler,
        adj_base: u64,
        radj_base: u64,
        offsets_base: u64,
        scratch_mark: u64,
        runs: Vec<GroupRun>,
    }
    let mut states: Vec<DeviceState> = (0..config.gpus)
        .map(|_| {
            let mut prof = Profiler::new(config.device);
            let gg = GpuGraph::new(graph, reverse, &mut prof);
            let (adj_base, radj_base, offsets_base) =
                (gg.adj_base, gg.radj_base, gg.offsets_base);
            let scratch_mark = prof.mem_mark();
            DeviceState { prof, adj_base, radj_base, offsets_base, scratch_mark, runs: Vec::new() }
        })
        .collect();

    for (gi, group) in grouping.groups.iter().enumerate() {
        let d = assignment[gi];
        let st = &mut states[d];
        st.prof.release_to(st.scratch_mark);
        let gg = GpuGraph {
            csr: graph,
            reverse,
            adj_base: st.adj_base,
            radj_base: st.radj_base,
            offsets_base: st.offsets_base,
        };
        let run = engine.run_group(&gg, group, &mut st.prof);
        devices[d].groups += 1;
        devices[d].instances += run.num_instances;
        devices[d].traversed_edges += run.traversed_edges;
        st.runs.push(run);
    }

    // Each device's timeline is priced by the shared scheduler (groups run
    // back to back per device, as in the paper's cluster evaluation).
    let scheduler = BackToBack;
    let model = CostModel::new(config.device);
    for (dev, st) in devices.iter_mut().zip(&states) {
        dev.sim_seconds = scheduler.schedule(&st.runs, &model);
    }

    let makespan = devices
        .iter()
        .map(|d| d.sim_seconds)
        .fold(0.0f64, f64::max);
    let traversed = devices.iter().map(|d| d.traversed_edges).sum();
    ClusterRun {
        gpus: config.gpus,
        devices,
        makespan_seconds: makespan,
        traversed_edges: traversed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::generators::{rmat, uniform_random, RmatParams};

    fn sources(n: usize) -> Vec<VertexId> {
        (0..n as VertexId).collect()
    }

    #[test]
    fn single_gpu_matches_sum_of_groups() {
        let g = rmat(9, 8, RmatParams::graph500(), 3);
        let r = g.reverse();
        let run = run_cluster(&g, &r, &sources(64), &ClusterConfig {
            gpus: 1,
            grouping: GroupingStrategy::Random { seed: 1, group_size: 16 },
            ..Default::default()
        });
        assert_eq!(run.gpus, 1);
        assert_eq!(run.devices.len(), 1);
        assert_eq!(run.devices[0].groups, 4);
        assert!((run.makespan_seconds - run.devices[0].sim_seconds).abs() < 1e-12);
    }

    #[test]
    fn two_gpus_speed_up_nearly_2x() {
        // The paper: "from one to two GPUs, the biggest speedup ... 1.97×".
        let g = uniform_random(2048, 8, 5);
        let r = g.reverse();
        let srcs = sources(256);
        let grouping = GroupingStrategy::Random { seed: 2, group_size: 32 };
        let one = run_cluster(&g, &r, &srcs, &ClusterConfig {
            gpus: 1,
            grouping: grouping.clone(),
            ..Default::default()
        });
        let two = run_cluster(&g, &r, &srcs, &ClusterConfig {
            gpus: 2,
            grouping,
            ..Default::default()
        });
        let speedup = two.speedup_vs(one.makespan_seconds);
        assert!(
            speedup > 1.7 && speedup <= 2.0 + 1e-9,
            "2-GPU speedup {speedup}"
        );
        assert_eq!(one.traversed_edges, two.traversed_edges);
    }

    #[test]
    fn speedup_saturates_when_gpus_exceed_groups() {
        let g = rmat(8, 8, RmatParams::graph500(), 7);
        let r = g.reverse();
        let srcs = sources(64);
        let grouping = GroupingStrategy::Random { seed: 3, group_size: 16 };
        let four = run_cluster(&g, &r, &srcs, &ClusterConfig {
            gpus: 4,
            grouping: grouping.clone(),
            ..Default::default()
        });
        let many = run_cluster(&g, &r, &srcs, &ClusterConfig {
            gpus: 64,
            grouping,
            ..Default::default()
        });
        // Only 4 groups exist: 64 GPUs cannot beat the slowest single group.
        assert!(many.makespan_seconds <= four.makespan_seconds + 1e-12);
        let busy = many.devices.iter().filter(|d| d.groups > 0).count();
        assert_eq!(busy, 4);
    }

    #[test]
    fn uniform_graph_scales_better_than_skewed() {
        // The paper's RD gets the best speedup because its workload is the
        // most balanced.
        let rd = uniform_random(2048, 8, 9);
        let rm = rmat(11, 8, RmatParams::dimacs_rm(), 9);
        let gpus = 8;
        let mut speedups = Vec::new();
        for g in [&rd, &rm] {
            let r = g.reverse();
            let srcs = sources(256);
            let grouping = GroupingStrategy::Random { seed: 4, group_size: 16 };
            let one = run_cluster(g, &r, &srcs, &ClusterConfig {
                gpus: 1,
                grouping: grouping.clone(),
                ..Default::default()
            });
            let multi = run_cluster(g, &r, &srcs, &ClusterConfig {
                gpus,
                grouping,
                ..Default::default()
            });
            speedups.push(multi.speedup_vs(one.makespan_seconds));
        }
        assert!(
            speedups[0] >= speedups[1] * 0.95,
            "RD speedup {} should be at least RM speedup {}",
            speedups[0],
            speedups[1]
        );
    }

    #[test]
    fn round_robin_assignment_works_too() {
        let g = rmat(8, 8, RmatParams::graph500(), 2);
        let r = g.reverse();
        let run = run_cluster(&g, &r, &sources(64), &ClusterConfig {
            gpus: 2,
            lpt: false,
            grouping: GroupingStrategy::Random { seed: 5, group_size: 16 },
            ..Default::default()
        });
        assert_eq!(run.devices[0].groups + run.devices[1].groups, 4);
        assert_eq!(run.devices[0].groups, 2);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn rejects_zero_gpus() {
        let g = rmat(6, 4, RmatParams::graph500(), 1);
        let r = g.reverse();
        run_cluster(&g, &r, &[0], &ClusterConfig { gpus: 0, ..Default::default() });
    }
}
