//! Multi-GPU scaling simulation — the paper's Figure 17 experiment.
//!
//! "As long as different GPUs work on independent BFSes, there is no need
//! for inter-GPU communication. Therefore, the key challenge here is
//! achieving workload balance on GPUs ... The longest time consumption of
//! all the GPUs is reported" (§8.3). The cluster run partitions BFS groups
//! across simulated devices, runs each device's share through the bitwise
//! engine, and reports the makespan. Imbalance — bottom-up inspection
//! skew — is exactly what limits scaling, so uniform-degree graphs (RD)
//! scale best, as in the paper.

pub mod comm;
pub mod router;
pub mod shard;
pub mod scaling;

pub use comm::{allgather_cost, encode_payload, register_comm_metrics, scatter_cost, CommConfig, CommStats, ExchangeCost, ExchangePattern, LevelComm, Payload};
pub use router::{batch_weight, fanout_weight, BatchRouter, LeastLoaded, RoundRobin};
pub use scaling::{run_cluster, ClusterConfig, ClusterRun, DeviceRun};
pub use shard::{run_sharded, ShardLevelEngine, ShardedConfig, ShardedRun, ShardedService, ShardedSummary, WAVE_WIDTH};
