//! Online batch routing across simulated devices.
//!
//! [`scaling::run_cluster`](crate::scaling::run_cluster) places a *known*
//! set of groups offline with LPT. A serving front-end sees batches one at
//! a time and must place each as it arrives; [`BatchRouter`] is that online
//! policy. [`LeastLoaded`] is the online counterpart of LPT — greedy
//! assignment to the device with the smallest accumulated weight — and
//! produces the *same* placement as `lpt_assign` whenever batches happen to
//! arrive in descending weight order. [`RoundRobin`] is the oblivious
//! baseline.
//!
//! Routers are deliberately deterministic: given the same batch sequence
//! they produce the same placement, which is what keeps serve-path tests
//! replayable.

use ibfs_graph::partition::lpt_assign;
use ibfs_graph::{Csr, VertexId};

/// Estimated device work of one batch of BFS sources: a base cost per
/// instance (every instance traverses the whole graph) plus the batch's
/// source out-degrees, which proxy how quickly bottom-up parent discovery
/// terminates. The same model weighs groups in the offline cluster
/// scheduler.
pub fn batch_weight(graph: &Csr, sources: &[VertexId]) -> u64 {
    let deg_sum: u64 = sources.iter().map(|&s| graph.out_degree(s) as u64).sum();
    sources.len() as u64 * 1_000 + deg_sum
}

/// [`batch_weight`] over the *distinct* sources of a possibly fanned-out
/// batch. A deduplicated fan-out (N requests sharing one in-flight
/// traversal) costs the device one instance, so the router must weigh it
/// once — weighing per request would split load estimates along request
/// count instead of actual traversal work and unbalance placement.
pub fn fanout_weight(graph: &Csr, sources: &[VertexId]) -> u64 {
    let mut distinct: Vec<VertexId> = sources.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    batch_weight(graph, &distinct)
}

/// An online policy assigning each arriving batch to one of `devices()`
/// simulated devices.
pub trait BatchRouter: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Number of devices routed across.
    fn devices(&self) -> usize;

    /// Picks the device for the next batch of estimated `weight`, recording
    /// the dispatch in the router's state.
    fn route(&mut self, weight: u64) -> usize;
}

/// Cycles through devices regardless of weight.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    devices: usize,
    next: usize,
}

impl RoundRobin {
    /// A round-robin router over `devices` devices.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        RoundRobin { devices, next: 0 }
    }
}

impl BatchRouter for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn devices(&self) -> usize {
        self.devices
    }

    fn route(&mut self, _weight: u64) -> usize {
        let d = self.next;
        self.next = (self.next + 1) % self.devices;
        d
    }
}

/// Greedy online LPT: each batch goes to the device with the least
/// accumulated weight (ties to the lowest index, matching `lpt_assign`).
#[derive(Clone, Debug)]
pub struct LeastLoaded {
    loads: Vec<u64>,
}

impl LeastLoaded {
    /// A least-loaded router over `devices` devices.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        LeastLoaded { loads: vec![0; devices] }
    }

    /// Accumulated weight per device.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

impl BatchRouter for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn devices(&self) -> usize {
        self.loads.len()
    }

    fn route(&mut self, weight: u64) -> usize {
        let d = (0..self.loads.len()).min_by_key(|&b| self.loads[b]).unwrap();
        self.loads[d] += weight;
        d
    }
}

/// Decorator recording every routing decision into a metrics registry:
/// `ibfs_cluster_routed_total{device="D"}` (batches placed on device D),
/// `ibfs_cluster_device_load{device="D"}` (accumulated estimated weight),
/// and the `ibfs_cluster_batch_weight` histogram. Routing behaviour is
/// untouched — the decorated policy stays deterministic.
pub struct InstrumentedRouter {
    inner: Box<dyn BatchRouter>,
    routed: Vec<std::sync::Arc<ibfs_obs::Counter>>,
    load: Vec<std::sync::Arc<ibfs_obs::Gauge>>,
    weight_hist: std::sync::Arc<ibfs_obs::Histogram>,
}

impl InstrumentedRouter {
    /// Wraps `inner`, registering per-device instruments in `registry`.
    pub fn new(inner: Box<dyn BatchRouter>, registry: &ibfs_obs::Registry) -> Self {
        let per_device = |name: &str, device: usize| {
            ibfs_obs::labeled(name, &[("device", &device.to_string())])
        };
        let routed = (0..inner.devices())
            .map(|d| registry.counter(&per_device("ibfs_cluster_routed_total", d)))
            .collect();
        let load = (0..inner.devices())
            .map(|d| registry.gauge(&per_device("ibfs_cluster_device_load", d)))
            .collect();
        InstrumentedRouter {
            routed,
            load,
            weight_hist: registry.histogram("ibfs_cluster_batch_weight"),
            inner,
        }
    }
}

impl BatchRouter for InstrumentedRouter {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn devices(&self) -> usize {
        self.inner.devices()
    }

    fn route(&mut self, weight: u64) -> usize {
        let device = self.inner.route(weight);
        self.routed[device].inc();
        self.load[device].add(weight as f64);
        self.weight_hist.record(weight as f64);
        device
    }
}

/// Routes a whole weight sequence, returning the per-batch assignment —
/// the offline view of an online router, used by tests and by callers that
/// already know every batch.
pub fn route_all(router: &mut dyn BatchRouter, weights: &[u64]) -> Vec<usize> {
    weights.iter().map(|&w| router.route(w)).collect()
}

/// `lpt_assign` equivalence check helper: the assignment LPT would produce
/// for `weights` over `devices` devices.
pub fn offline_lpt(weights: &[u64], devices: usize) -> Vec<usize> {
    lpt_assign(weights, devices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::partition::bin_loads;

    #[test]
    fn round_robin_cycles() {
        let mut r = RoundRobin::new(3);
        let a = route_all(&mut r, &[5, 5, 5, 5, 5, 5, 5]);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_matches_offline_lpt_on_sorted_streams() {
        // LPT sorts descending then greedily places; the online router fed
        // an already-descending stream must make identical choices.
        let weights = vec![90, 70, 55, 40, 40, 30, 20, 10, 5];
        let mut r = LeastLoaded::new(3);
        let online = route_all(&mut r, &weights);
        let offline = offline_lpt(&weights, 3);
        assert_eq!(online, offline);
        assert_eq!(r.loads(), &bin_loads(&weights, &online, 3)[..]);
    }

    #[test]
    fn least_loaded_balances_better_than_round_robin_on_skew() {
        // A skewed stream arranged so round-robin piles heavy batches onto
        // device 0 while least-loaded spreads them.
        let weights = vec![100, 1, 1, 100, 1, 1, 100, 1, 1];
        let spread = |assign: &[usize]| {
            let loads = bin_loads(&weights, assign, 3);
            loads.iter().max().unwrap() - loads.iter().min().unwrap()
        };
        let rr = route_all(&mut RoundRobin::new(3), &weights);
        let ll = route_all(&mut LeastLoaded::new(3), &weights);
        assert!(spread(&ll) < spread(&rr), "ll {ll:?} vs rr {rr:?}");
    }

    #[test]
    fn batch_weight_scales_with_size_and_degree() {
        let g = ibfs_graph::generators::uniform_random(64, 4, 1);
        let small = batch_weight(&g, &[0]);
        let large = batch_weight(&g, &[0, 1, 2, 3]);
        assert!(large > small);
        assert_eq!(batch_weight(&g, &[]), 0);
    }

    #[test]
    fn fanout_weight_does_not_split_a_dedup_fanout() {
        // Ten requests for one hot source traverse once: the router must
        // see one instance of weight, not ten.
        let g = ibfs_graph::generators::uniform_random(64, 4, 1);
        assert_eq!(fanout_weight(&g, &[7; 10]), batch_weight(&g, &[7]));
        assert_eq!(
            fanout_weight(&g, &[3, 7, 3, 7, 3]),
            batch_weight(&g, &[3, 7])
        );
        // Already-distinct batches are weighed identically.
        assert_eq!(fanout_weight(&g, &[1, 2, 3]), batch_weight(&g, &[1, 2, 3]));
        assert_eq!(fanout_weight(&g, &[]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn rejects_zero_devices() {
        LeastLoaded::new(0);
    }

    #[test]
    fn instrumented_router_is_transparent_and_records() {
        let registry = ibfs_obs::Registry::new();
        let weights = vec![90, 70, 55, 40, 40, 30, 20, 10, 5];
        let plain = route_all(&mut LeastLoaded::new(3), &weights);
        let mut wrapped =
            InstrumentedRouter::new(Box::new(LeastLoaded::new(3)), &registry);
        assert_eq!(wrapped.name(), "least-loaded");
        assert_eq!(wrapped.devices(), 3);
        let instrumented = route_all(&mut wrapped, &weights);
        assert_eq!(instrumented, plain, "instrumentation changed routing");

        let snap = registry.snapshot();
        let routed: u64 = (0..3)
            .filter_map(|d| {
                snap.counter(&ibfs_obs::labeled(
                    "ibfs_cluster_routed_total",
                    &[("device", &d.to_string())],
                ))
            })
            .sum();
        assert_eq!(routed, weights.len() as u64);
        let loads = bin_loads(&weights, &plain, 3);
        for (d, &want) in loads.iter().enumerate() {
            let got = snap
                .gauge(&ibfs_obs::labeled(
                    "ibfs_cluster_device_load",
                    &[("device", &d.to_string())],
                ))
                .unwrap();
            assert_eq!(got, want as f64);
        }
        let hist = snap.histogram("ibfs_cluster_batch_weight").unwrap();
        assert_eq!(hist.count, weights.len() as u64);
        assert_eq!(hist.max, 90.0);
    }
}
