//! The inter-shard communication model: payload encoding, exchange
//! patterns, and the latency/bandwidth cost charged into sim-time.
//!
//! Distributed BFS moves two kinds of traffic between levels. After a
//! top-down level each shard *scatters* candidate discoveries to the
//! vertices' owners; before a bottom-up level every shard needs the whole
//! previous frontier, an *allgather* of per-shard frontier bitmaps. Both
//! are priced with the standard α–β model — a fixed per-message latency α
//! plus bytes over bandwidth β — and routed by a pluggable
//! [`ExchangePattern`]:
//!
//! * [`ExchangePattern::AllToAll`] sends every non-empty (src, dst) payload
//!   directly: up to `P·(P−1)` messages per exchange.
//! * [`ExchangePattern::Butterfly`] stages the exchange over a hypercube
//!   (partner at stage `s` is `i XOR 2^s`, per ButterFly BFS,
//!   arXiv:2103.13577): at most `P·log₂P` combined messages per exchange —
//!   fewer messages at the price of forwarding bytes through intermediate
//!   hops. Requires a power-of-two shard count; other counts fall back to
//!   direct all-to-all routing (reported via
//!   [`CommConfig::effective_pattern`]).
//!
//! Payloads pick the smaller of two encodings per destination: a sparse
//! update list (id + instance mask per vertex) or a compressed frontier
//! bitmap (per-instance bit vectors over the destination's owned range,
//! idle instances skipped) — the bitmap wins exactly in the dense
//! bottom-up regime, which is what makes the allgather affordable.

use ibfs::driver::FrontierUpdate;
use ibfs_obs::Registry;
use ibfs_util::{json_enum, json_struct};

/// Bytes of one sparse frontier update on the wire: a `u32` global vertex
/// id plus a `u64` instance mask.
pub const SPARSE_ENTRY_BYTES: u64 = 12;

/// Fixed header per payload (source shard, destination shard, entry count,
/// encoding tag).
pub const PAYLOAD_HEADER_BYTES: u64 = 16;

/// How frontier traffic is routed between shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExchangePattern {
    /// Direct send of every non-empty (src, dst) payload.
    AllToAll,
    /// Hypercube-staged combining exchange (log₂P stages).
    Butterfly,
}

json_enum!(ExchangePattern { AllToAll, Butterfly });

impl ExchangePattern {
    /// Both patterns, in a stable order (test matrices iterate this).
    pub fn all() -> [ExchangePattern; 2] {
        [ExchangePattern::AllToAll, ExchangePattern::Butterfly]
    }

    /// Pattern name for figure tables and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            ExchangePattern::AllToAll => "alltoall",
            ExchangePattern::Butterfly => "butterfly",
        }
    }
}

/// The α–β communication cost model plus the routing pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommConfig {
    /// Routing pattern.
    pub pattern: ExchangePattern,
    /// Per-message latency α, seconds (defaults to 1 µs — a NVLink/PCIe
    /// round trip is ~1–10 µs).
    pub latency_s: f64,
    /// Link bandwidth β⁻¹, bytes per second (defaults to 12.5 GB/s —
    /// a 100 Gb/s interconnect).
    pub bytes_per_s: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            pattern: ExchangePattern::AllToAll,
            latency_s: 1e-6,
            bytes_per_s: 12.5e9,
        }
    }
}

impl CommConfig {
    /// A config with the given pattern and default α/β.
    pub fn with_pattern(pattern: ExchangePattern) -> Self {
        CommConfig { pattern, ..Default::default() }
    }

    /// The pattern actually routed for `shards` participants: butterfly
    /// staging needs a power-of-two shard count and otherwise degrades to
    /// direct all-to-all sends.
    pub fn effective_pattern(&self, shards: usize) -> ExchangePattern {
        match self.pattern {
            ExchangePattern::Butterfly if shards.is_power_of_two() => ExchangePattern::Butterfly,
            ExchangePattern::Butterfly => ExchangePattern::AllToAll,
            ExchangePattern::AllToAll => ExchangePattern::AllToAll,
        }
    }

    /// Wire time of one message of `bytes` payload.
    fn message_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bytes_per_s
    }
}

/// One shard-to-shard payload, already reduced to its wire cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Payload {
    /// Distinct vertices carried.
    pub entries: u64,
    /// Bytes on the wire under the chosen encoding (0 when empty).
    pub bytes: u64,
    /// Whether the compressed-bitmap encoding won over the sparse list.
    pub dense: bool,
}

/// Encodes `updates` destined for a shard owning `dest_owned` vertices,
/// choosing the smaller of the sparse list and the compressed bitmap.
///
/// The bitmap encoding carries one bit vector over the destination's owned
/// range per *active* instance (an instance is active if any update names
/// it), so a dense single-instance frontier costs `owned/8` bytes instead
/// of `12·entries`.
pub fn encode_payload(updates: &[FrontierUpdate], dest_owned: usize) -> Payload {
    if updates.is_empty() {
        return Payload::default();
    }
    let entries = updates.len() as u64;
    let union_mask = updates.iter().fold(0u64, |m, u| m | u.mask);
    let sparse = PAYLOAD_HEADER_BYTES + entries * SPARSE_ENTRY_BYTES;
    let bitmap = PAYLOAD_HEADER_BYTES
        + 8 // active-instance mask
        + union_mask.count_ones() as u64 * (dest_owned as u64).div_ceil(8);
    if bitmap < sparse {
        Payload { entries, bytes: bitmap, dense: true }
    } else {
        Payload { entries, bytes: sparse, dense: false }
    }
}

/// Communication activity of one exchange (one level's scatter or
/// allgather).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExchangeCost {
    /// Messages put on the wire.
    pub messages: u64,
    /// Bytes put on the wire (forwarded bytes counted at every hop).
    pub bytes: u64,
    /// Payloads that chose the compressed-bitmap encoding.
    pub dense_payloads: u64,
    /// Wall-clock seconds the exchange adds to the lockstep level: stages
    /// serialize, shards within a stage run in parallel (max over shards).
    pub seconds: f64,
}

impl ExchangeCost {
    fn absorb_payloads(&mut self, payloads: &[Payload]) {
        for p in payloads {
            self.dense_payloads += u64::from(p.dense);
        }
    }
}

/// Prices a scatter exchange: `matrix[src][dst]` holds the encoded payload
/// from `src` to `dst` (the diagonal is ignored — a shard never messages
/// itself). Returns the wire cost under `config`'s effective pattern.
pub fn scatter_cost(config: &CommConfig, matrix: &[Vec<Payload>]) -> ExchangeCost {
    let shards = matrix.len();
    let mut cost = ExchangeCost::default();
    for row in matrix {
        debug_assert_eq!(row.len(), shards);
        cost.absorb_payloads(row);
    }
    match config.effective_pattern(shards) {
        ExchangePattern::AllToAll => {
            // Each shard sends its non-empty payloads directly, serially;
            // shards send in parallel with each other.
            let mut slowest = 0.0f64;
            for (s, row) in matrix.iter().enumerate() {
                let mut send = 0.0f64;
                for (d, p) in row.iter().enumerate() {
                    if d != s && p.bytes > 0 {
                        cost.messages += 1;
                        cost.bytes += p.bytes;
                        send += config.message_seconds(p.bytes);
                    }
                }
                slowest = slowest.max(send);
            }
            cost.seconds = slowest;
        }
        ExchangePattern::Butterfly => {
            // Hypercube routing: at stage `st`, shard i forwards to partner
            // i ^ (1<<st) every held payload whose destination differs from
            // i in bit `st`. All of a shard's stage traffic rides one
            // combined message. Payloads for the same destination merge by
            // summing bytes (re-encoding at hops is not modeled).
            let stages = shards.trailing_zeros();
            let mut held: Vec<Vec<u64>> = matrix
                .iter()
                .enumerate()
                .map(|(s, row)| {
                    row.iter()
                        .enumerate()
                        .map(|(d, p)| if d == s { 0 } else { p.bytes })
                        .collect()
                })
                .collect();
            for st in 0..stages {
                let bit = 1usize << st;
                let mut moved: Vec<(usize, Vec<u64>)> = Vec::new();
                let mut stage_slowest = 0.0f64;
                for (i, hold) in held.iter_mut().enumerate() {
                    let partner = i ^ bit;
                    let mut outgoing = vec![0u64; shards];
                    let mut msg_bytes = 0u64;
                    for d in 0..shards {
                        if (d ^ i) & bit != 0 && hold[d] > 0 {
                            msg_bytes += hold[d];
                            outgoing[d] = hold[d];
                            hold[d] = 0;
                        }
                    }
                    if msg_bytes > 0 {
                        cost.messages += 1;
                        cost.bytes += msg_bytes;
                        stage_slowest = stage_slowest.max(config.message_seconds(msg_bytes));
                        moved.push((partner, outgoing));
                    }
                }
                for (partner, outgoing) in moved {
                    for d in 0..shards {
                        held[partner][d] += outgoing[d];
                    }
                }
                cost.seconds += stage_slowest;
            }
        }
    }
    cost
}

/// Prices an allgather exchange: `payloads[s]` is shard `s`'s encoded
/// frontier snapshot, which must reach every other shard.
pub fn allgather_cost(config: &CommConfig, payloads: &[Payload]) -> ExchangeCost {
    let shards = payloads.len();
    let mut cost = ExchangeCost::default();
    cost.absorb_payloads(payloads);
    match config.effective_pattern(shards) {
        ExchangePattern::AllToAll => {
            let mut slowest = 0.0f64;
            for p in payloads {
                if p.bytes == 0 {
                    continue;
                }
                let peers = (shards - 1) as u64;
                cost.messages += peers;
                cost.bytes += p.bytes * peers;
                slowest = slowest.max(peers as f64 * config.message_seconds(p.bytes));
            }
            cost.seconds = slowest;
        }
        ExchangePattern::Butterfly => {
            // Recursive doubling: at stage `st` each shard swaps everything
            // accumulated so far with partner i ^ (1<<st); accumulated
            // volume doubles per stage.
            let stages = shards.trailing_zeros();
            let mut acc: Vec<u64> = payloads.iter().map(|p| p.bytes).collect();
            for st in 0..stages {
                let bit = 1usize << st;
                let mut stage_slowest = 0.0f64;
                let prev = acc.clone();
                for (i, bytes) in prev.iter().enumerate() {
                    if *bytes > 0 {
                        cost.messages += 1;
                        cost.bytes += bytes;
                        stage_slowest = stage_slowest.max(config.message_seconds(*bytes));
                    }
                    acc[i ^ bit] += bytes;
                }
                cost.seconds += stage_slowest;
            }
        }
    }
    cost
}

/// One level's communication activity, for per-level volume reporting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelComm {
    /// BFS level the exchange belongs to.
    pub level: u32,
    /// Messages put on the wire at this level.
    pub messages: u64,
    /// Bytes put on the wire at this level.
    pub bytes: u64,
    /// Compressed-bitmap payloads at this level.
    pub dense_payloads: u64,
    /// Exchange seconds added to the lockstep level.
    pub seconds: f64,
}

json_struct!(LevelComm { level, messages, bytes, dense_payloads, seconds });

/// Accumulated communication statistics of a sharded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Total messages.
    pub messages: u64,
    /// Total bytes (hop-counted).
    pub bytes: u64,
    /// Total compressed-bitmap payloads.
    pub dense_payloads: u64,
    /// Total exchange seconds charged into sim-time.
    pub exchange_seconds: f64,
    /// Per-level breakdown, in level order (levels with no exchange — the
    /// whole frontier local — are still recorded with zero volume).
    pub per_level: Vec<LevelComm>,
}

json_struct!(CommStats { messages, bytes, dense_payloads, exchange_seconds, per_level });

impl CommStats {
    /// Folds one level's exchange activity into the totals.
    pub fn push_level(&mut self, level: u32, cost: &ExchangeCost) {
        self.messages += cost.messages;
        self.bytes += cost.bytes;
        self.dense_payloads += cost.dense_payloads;
        self.exchange_seconds += cost.seconds;
        self.per_level.push(LevelComm {
            level,
            messages: cost.messages,
            bytes: cost.bytes,
            dense_payloads: cost.dense_payloads,
            seconds: cost.seconds,
        });
    }

    /// Merges another run's stats (serve-side: many waves, one registry).
    pub fn merge(&mut self, other: &CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.dense_payloads += other.dense_payloads;
        self.exchange_seconds += other.exchange_seconds;
        self.per_level.extend_from_slice(&other.per_level);
    }

    /// Records the stats into the `ibfs_cluster_comm_*` metric families.
    pub fn record(&self, registry: &Registry) {
        register_comm_metrics(registry);
        registry.counter("ibfs_cluster_comm_messages_total").add(self.messages);
        registry.counter("ibfs_cluster_comm_bytes_total").add(self.bytes);
        registry
            .counter("ibfs_cluster_comm_dense_payloads_total")
            .add(self.dense_payloads);
        registry
            .counter("ibfs_cluster_comm_exchanges_total")
            .add(self.per_level.len() as u64);
        let seconds = registry.histogram("ibfs_cluster_comm_exchange_seconds");
        let messages = registry.histogram("ibfs_cluster_comm_level_messages");
        let bytes = registry.histogram("ibfs_cluster_comm_level_bytes");
        for lc in &self.per_level {
            seconds.record(lc.seconds);
            messages.record(lc.messages as f64);
            bytes.record(lc.bytes as f64);
        }
    }
}

/// Eagerly registers every `ibfs_cluster_comm_*` family so a zero-traffic
/// snapshot still carries the full schema (the `metrics-check` gate
/// requires presence, not traffic).
pub fn register_comm_metrics(registry: &Registry) {
    registry.counter("ibfs_cluster_comm_messages_total");
    registry.counter("ibfs_cluster_comm_bytes_total");
    registry.counter("ibfs_cluster_comm_dense_payloads_total");
    registry.counter("ibfs_cluster_comm_exchanges_total");
    registry.histogram("ibfs_cluster_comm_exchange_seconds");
    registry.histogram("ibfs_cluster_comm_level_messages");
    registry.histogram("ibfs_cluster_comm_level_bytes");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(vertex: u32, mask: u64) -> FrontierUpdate {
        FrontierUpdate { vertex, mask }
    }

    fn sparse_payload(entries: u64) -> Payload {
        Payload {
            entries,
            bytes: if entries == 0 { 0 } else { PAYLOAD_HEADER_BYTES + entries * SPARSE_ENTRY_BYTES },
            dense: false,
        }
    }

    #[test]
    fn sparse_encoding_wins_for_small_frontiers() {
        let p = encode_payload(&[upd(3, 1), upd(9, 3)], 4096);
        assert!(!p.dense);
        assert_eq!(p.entries, 2);
        assert_eq!(p.bytes, PAYLOAD_HEADER_BYTES + 2 * SPARSE_ENTRY_BYTES);
    }

    #[test]
    fn bitmap_encoding_wins_for_dense_single_instance_frontiers() {
        // 1000 of 2048 owned vertices, one instance: bitmap is 256 bytes
        // vs 12000 sparse.
        let updates: Vec<FrontierUpdate> = (0..1000).map(|v| upd(v, 1)).collect();
        let p = encode_payload(&updates, 2048);
        assert!(p.dense);
        assert_eq!(p.bytes, PAYLOAD_HEADER_BYTES + 8 + 256);
    }

    #[test]
    fn empty_payload_is_free() {
        assert_eq!(encode_payload(&[], 1024), Payload::default());
    }

    fn full_matrix(shards: usize, entries: u64) -> Vec<Vec<Payload>> {
        (0..shards)
            .map(|s| {
                (0..shards)
                    .map(|d| if d == s { Payload::default() } else { sparse_payload(entries) })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_to_all_scatter_counts_every_pair() {
        let cfg = CommConfig::default();
        let cost = scatter_cost(&cfg, &full_matrix(4, 5));
        assert_eq!(cost.messages, 12); // 4 × 3
        assert_eq!(cost.bytes, 12 * (PAYLOAD_HEADER_BYTES + 5 * SPARSE_ENTRY_BYTES));
        // Each shard serializes 3 sends; shards run in parallel.
        let per = cfg.latency_s + (PAYLOAD_HEADER_BYTES + 60) as f64 / cfg.bytes_per_s;
        assert!((cost.seconds - 3.0 * per).abs() < 1e-15);
    }

    #[test]
    fn butterfly_scatter_sends_fewer_messages_at_four_shards() {
        let a2a = scatter_cost(&CommConfig::default(), &full_matrix(4, 5));
        let bf = scatter_cost(
            &CommConfig::with_pattern(ExchangePattern::Butterfly),
            &full_matrix(4, 5),
        );
        // P·log₂P = 8 < P·(P−1) = 12.
        assert_eq!(bf.messages, 8);
        assert!(bf.messages < a2a.messages);
        // Forwarding costs bytes: stage 1 carries stage-0 transit traffic.
        assert!(bf.bytes >= a2a.bytes);
    }

    #[test]
    fn butterfly_delivers_all_bytes_to_final_destinations() {
        // 8 shards, only shard 0 has traffic (to every other shard): the
        // hypercube still routes everything in 3 stages.
        let mut matrix = vec![vec![Payload::default(); 8]; 8];
        for d in 1..8 {
            matrix[0][d] = sparse_payload(2);
        }
        let cost = scatter_cost(
            &CommConfig::with_pattern(ExchangePattern::Butterfly),
            &matrix,
        );
        // Stage 0: 0→1 carries dests {1,3,5,7}; stage 1: 0→2 {2,6}, 1→3
        // {3,7}; stage 2: 0→4 {4}, 1→5 {5}, 2→6 {6}, 3→7 {7}.
        assert_eq!(cost.messages, 7);
        let payload = PAYLOAD_HEADER_BYTES + 2 * SPARSE_ENTRY_BYTES;
        // dests at hamming distance 1 travel 1 hop, distance 2 two hops,
        // distance 3 three hops: 1+1+1 + 2+2+2 + 3 = 12 payload-hops.
        assert_eq!(cost.bytes, 12 * payload);
    }

    #[test]
    fn butterfly_falls_back_to_direct_sends_for_non_power_of_two() {
        let cfg = CommConfig::with_pattern(ExchangePattern::Butterfly);
        assert_eq!(cfg.effective_pattern(3), ExchangePattern::AllToAll);
        assert_eq!(cfg.effective_pattern(4), ExchangePattern::Butterfly);
        let direct = scatter_cost(&CommConfig::default(), &full_matrix(3, 4));
        let fallen = scatter_cost(&cfg, &full_matrix(3, 4));
        assert_eq!(direct, fallen);
    }

    #[test]
    fn allgather_all_to_all_replicates_every_snapshot() {
        let payloads = vec![sparse_payload(3); 4];
        let cost = allgather_cost(&CommConfig::default(), &payloads);
        assert_eq!(cost.messages, 12);
        assert_eq!(cost.bytes, 12 * (PAYLOAD_HEADER_BYTES + 3 * SPARSE_ENTRY_BYTES));
    }

    #[test]
    fn allgather_butterfly_uses_log_rounds() {
        let payloads = vec![sparse_payload(3); 8];
        let cost = allgather_cost(
            &CommConfig::with_pattern(ExchangePattern::Butterfly),
            &payloads,
        );
        // 8 shards × 3 stages = 24 messages vs 56 direct.
        assert_eq!(cost.messages, 24);
        let direct = allgather_cost(&CommConfig::default(), &payloads);
        assert_eq!(direct.messages, 56);
        assert!(cost.messages < direct.messages);
        // Same replication factor overall: every byte reaches 7 peers.
        assert_eq!(direct.bytes, 7 * 8 * (PAYLOAD_HEADER_BYTES + 36));
        assert_eq!(cost.bytes, 7 * 8 * (PAYLOAD_HEADER_BYTES + 36));
    }

    #[test]
    fn exchange_seconds_scale_with_latency_and_bandwidth() {
        let slow = CommConfig { latency_s: 1e-3, bytes_per_s: 1e6, ..Default::default() };
        let fast = CommConfig::default();
        let m = full_matrix(4, 100);
        assert!(scatter_cost(&slow, &m).seconds > scatter_cost(&fast, &m).seconds);
    }

    #[test]
    fn comm_stats_accumulate_and_record() {
        let mut stats = CommStats::default();
        stats.push_level(1, &ExchangeCost { messages: 3, bytes: 100, dense_payloads: 1, seconds: 0.5 });
        stats.push_level(2, &ExchangeCost { messages: 2, bytes: 50, dense_payloads: 0, seconds: 0.25 });
        assert_eq!(stats.messages, 5);
        assert_eq!(stats.bytes, 150);
        assert_eq!(stats.per_level.len(), 2);
        assert!((stats.exchange_seconds - 0.75).abs() < 1e-12);

        let registry = Registry::new();
        stats.record(&registry);
        assert_eq!(registry.counter("ibfs_cluster_comm_messages_total").value(), 5);
        assert_eq!(registry.counter("ibfs_cluster_comm_bytes_total").value(), 150);
        assert_eq!(registry.counter("ibfs_cluster_comm_exchanges_total").value(), 2);
    }

    #[test]
    fn eager_registration_produces_zero_valued_families() {
        let registry = Registry::new();
        register_comm_metrics(&registry);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        for want in [
            "ibfs_cluster_comm_messages_total",
            "ibfs_cluster_comm_bytes_total",
            "ibfs_cluster_comm_dense_payloads_total",
            "ibfs_cluster_comm_exchanges_total",
            "ibfs_cluster_comm_exchange_seconds",
            "ibfs_cluster_comm_level_messages",
            "ibfs_cluster_comm_level_bytes",
        ] {
            assert!(names.contains(&want), "missing {want}");
        }
    }
}
