//! Sharded lockstep traversal: one [`LevelEngine`] per shard of a 1D
//! vertex partition, synchronized level by level with frontier exchange.
//!
//! This is the owner-computes distributed BFS of Buluç & Madduri
//! (arXiv:1104.4518) over simulated devices: every shard holds the full
//! out-/in-edge lists of its owned vertices ([`ibfs_graph::partition`]),
//! marks only owned vertices, and between levels ships discoveries of
//! non-owned vertices to their owners through the [`crate::comm`] cost
//! model. Bottom-up levels instead allgather every shard's previous
//! frontier (as compressed bitmaps) so unvisited vertices can find parents
//! owned elsewhere.
//!
//! Because the exchange is level-synchronous, depths are exactly the
//! global BFS depths no matter the shard count, ownership layout, or
//! exchange pattern — [`run_sharded`] is pinned bit-identical (depths and
//! traversed edges) to single-device [`ibfs::runner::run_ibfs`] by
//! `tests/sharded_differential.rs`. The pattern and layout change only the
//! simulated communication volume and time, which is the whole point of
//! the weak-scaling figure.

use crate::comm::{
    allgather_cost, encode_payload, scatter_cost, CommConfig, CommStats, ExchangeCost, Payload,
};
use ibfs::direction::{Direction, DirectionPolicy};
use ibfs::driver::{ExchangeEngine, FrontierStats, FrontierUpdate, LevelEngine};
use ibfs::engine::{traversed_edges_for, GroupRun, LevelStats};
use ibfs::groupby::GroupingStrategy;
use ibfs::service::{admit_sources, RequestError};
use ibfs::trace::{GroupStamp, NullSink, TraceSink, TraversalEvent};
use ibfs_graph::partition::{OwnershipLayout, Partition, Partitioner, ShardGraph, VertexOwner};
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use ibfs_gpu_sim::{Counters, DeviceConfig, PhaseKind, PhaseTimer, Profiler, SimTimer};
use ibfs_obs::{EngineProfiler, ProfPhase, Registry};
use ibfs_util::json_struct;
use std::sync::Arc;

/// Instances per lockstep wave: one bit per instance in a `u64` status
/// word, shared by frontier-update masks on the wire.
pub const WAVE_WIDTH: usize = 64;

/// Configuration of a sharded traversal.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of shards (one simulated device each).
    pub shards: usize,
    /// Vertex ownership layout.
    pub layout: OwnershipLayout,
    /// Inter-shard communication model.
    pub comm: CommConfig,
    /// Per-shard device hardware.
    pub device: DeviceConfig,
    /// Source grouping; group size is clamped to [`WAVE_WIDTH`].
    pub grouping: GroupingStrategy,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            layout: OwnershipLayout::Contiguous,
            comm: CommConfig::default(),
            device: DeviceConfig::k40(),
            grouping: GroupingStrategy::Random { seed: 0x5EED, group_size: WAVE_WIDTH },
        }
    }
}

/// Result of a sharded traversal request.
#[derive(Clone, Debug)]
pub struct ShardedRun {
    /// Shard count.
    pub shards: usize,
    /// Ownership layout used.
    pub layout: OwnershipLayout,
    /// Per-wave results assembled back into *global* vertex order — the
    /// same shape [`ibfs::runner::IbfsRun`] exposes, so serve-side depth
    /// extraction is shared.
    pub groups: Vec<GroupRun>,
    /// Simulated seconds: waves run back to back; within a wave each
    /// lockstep level costs the slowest shard plus the exchange.
    pub sim_seconds: f64,
    /// Traversed edges summed over instances (TEPS numerator, identical to
    /// the single-device definition).
    pub traversed_edges: u64,
    /// Counter activity summed over every shard device.
    pub counters: Counters,
    /// Communication activity across all waves.
    pub comm: CommStats,
}

impl ShardedRun {
    /// Total instances across waves.
    pub fn num_instances(&self) -> usize {
        self.groups.iter().map(|g| g.num_instances).sum()
    }

    /// Traversed edges per simulated second.
    pub fn teps(&self) -> f64 {
        ibfs::metrics::teps(self.traversed_edges, self.sim_seconds)
    }

    /// Records the run's communication activity into the
    /// `ibfs_cluster_comm_*` families of `registry`.
    pub fn record_comm_metrics(&self, registry: &Registry) {
        self.comm.record(registry);
    }
}

/// Headline numbers of a sharded run, JSON-serializable for bench output.
#[derive(Clone, Debug)]
pub struct ShardedSummary {
    /// Shard count.
    pub shards: usize,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Traversed edges.
    pub traversed_edges: u64,
    /// Total messages exchanged.
    pub messages: u64,
    /// Total bytes exchanged.
    pub bytes: u64,
    /// Exchange seconds within `sim_seconds`.
    pub exchange_seconds: f64,
}

json_struct!(ShardedSummary {
    shards,
    sim_seconds,
    traversed_edges,
    messages,
    bytes,
    exchange_seconds,
});

impl ShardedRun {
    /// The run's headline summary.
    pub fn summary(&self) -> ShardedSummary {
        ShardedSummary {
            shards: self.shards,
            sim_seconds: self.sim_seconds,
            traversed_edges: self.traversed_edges,
            messages: self.comm.messages,
            bytes: self.comm.bytes,
            exchange_seconds: self.comm.exchange_seconds,
        }
    }
}

/// Scratch device addresses of one shard's per-wave state.
struct ShardScratch {
    status_base: u64,
    depth_base: u64,
    fq_base: u64,
    outbox_base: u64,
    gf_base: u64,
}

/// One shard's resident device: profiler plus uploaded subgraph addresses.
struct ShardDevice {
    prof: Profiler,
    out_adj_base: u64,
    in_adj_base: u64,
    offsets_base: u64,
    /// Allocation watermark after upload; per-wave scratch is released
    /// back to it between waves.
    scratch_mark: u64,
}

impl ShardDevice {
    fn new(sg: &ShardGraph, device: DeviceConfig) -> Self {
        let mut prof = Profiler::new(device);
        let out_adj_base = prof.alloc((sg.num_out_edges() as u64).max(1) * 4);
        let in_adj_base = prof.alloc((sg.num_in_edges() as u64).max(1) * 4);
        // Out- and in-offsets live back to back in one allocation.
        let offsets_base = prof.alloc((sg.num_owned() as u64 + 1) * 8 * 2);
        let scratch_mark = prof.mem_mark();
        ShardDevice { prof, out_adj_base, in_adj_base, offsets_base, scratch_mark }
    }

    /// Allocates one wave's scratch: status words, depth array, frontier
    /// queue, remote-candidate outbox, and the global-frontier bitmap.
    fn alloc_scratch(&mut self, owned: usize, n_global: usize, instances: usize) -> ShardScratch {
        self.prof.release_to(self.scratch_mark);
        let owned64 = owned.max(1) as u64;
        ShardScratch {
            status_base: self.prof.alloc(owned64 * 8),
            depth_base: self.prof.alloc(owned64 * instances.max(1) as u64),
            fq_base: self.prof.alloc(owned64 * 4),
            outbox_base: self.prof.alloc((n_global as u64).max(1) * 12),
            gf_base: self.prof.alloc((n_global as u64).max(1) * 8),
        }
    }
}

/// The per-shard level engine: multi-instance BFS over one shard's owned
/// vertices with `u64` status masks, producing and consuming
/// [`FrontierUpdate`]s at the shard boundary.
pub struct ShardLevelEngine<'a> {
    sg: &'a ShardGraph,
    owner: VertexOwner,
    shard: usize,
    all_mask: u64,
    scratch: ShardScratch,
    out_adj_base: u64,
    in_adj_base: u64,
    offsets_base: u64,
    /// Seeds: (local vertex, instance mask).
    sources: Vec<(u32, u64)>,
    /// Depths, flattened `[instance][owned local vertex]`.
    depths: Vec<Depth>,
    /// Visited mask per owned vertex.
    visited: Vec<u64>,
    /// The frontier being expanded this level (materialized at level start
    /// from the accumulators below).
    cur: Vec<(u32, u64)>,
    /// Next-frontier accumulator: mask per owned vertex + touched list.
    next_mask: Vec<u64>,
    next_list: Vec<u32>,
    /// Global out-degrees of `next_list` (direction-vote numerator).
    next_edges: u64,
    /// Σ over instances of out-degrees of visited owned vertices.
    explored_edges: u64,
    /// Owned out-edges × instances.
    total_instance_edges: u64,
    /// Remote-candidate accumulator, indexed by *global* vertex id.
    remote_mask: Vec<u64>,
    remote_touched: Vec<VertexId>,
    /// View of the global frontier for bottom-up levels, indexed by global
    /// vertex id; cleared when a bottom-up level is announced.
    gf: Vec<u64>,
    gf_touched: Vec<VertexId>,
    direction: Direction,
    last_level: u32,
}

impl<'a> ShardLevelEngine<'a> {
    fn new(
        sg: &'a ShardGraph,
        owner: VertexOwner,
        scratch: ShardScratch,
        dev: &ShardDevice,
        sources: Vec<(u32, u64)>,
        num_instances: usize,
    ) -> Self {
        assert!(num_instances <= WAVE_WIDTH);
        let owned = sg.num_owned();
        let n_global = owner.num_vertices();
        let all_mask = if num_instances == WAVE_WIDTH { u64::MAX } else { (1u64 << num_instances) - 1 };
        let total_out: u64 = sg.num_out_edges() as u64;
        ShardLevelEngine {
            sg,
            owner,
            shard: sg.shard,
            all_mask,
            scratch,
            out_adj_base: dev.out_adj_base,
            in_adj_base: dev.in_adj_base,
            offsets_base: dev.offsets_base,
            sources,
            depths: vec![DEPTH_UNVISITED; owned * num_instances],
            visited: vec![0; owned],
            cur: Vec::new(),
            next_mask: vec![0; owned],
            next_list: Vec::new(),
            next_edges: 0,
            explored_edges: 0,
            total_instance_edges: total_out * num_instances as u64,
            remote_mask: vec![0; n_global],
            remote_touched: Vec::new(),
            gf: vec![0; n_global],
            gf_touched: Vec::new(),
            direction: Direction::TopDown,
            last_level: 0,
        }
    }

    /// Marks `bits` of owned local vertex `u` visited at `depth` and adds
    /// them to the next-frontier accumulator. Caller guarantees `bits`
    /// holds no already-visited instance.
    fn mark(&mut self, u: u32, bits: u64, depth: Depth) {
        debug_assert_eq!(self.visited[u as usize] & bits, 0);
        self.visited[u as usize] |= bits;
        let owned = self.sg.num_owned();
        let mut rest = bits;
        while rest != 0 {
            let j = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            self.depths[j * owned + u as usize] = depth;
        }
        if self.next_mask[u as usize] == 0 {
            self.next_list.push(u);
            self.next_edges += self.sg.out_degree(u) as u64;
        }
        self.next_mask[u as usize] |= bits;
        self.explored_edges += self.sg.out_degree(u) as u64 * bits.count_ones() as u64;
    }

    /// Materializes `cur` from the next-frontier accumulator, charging the
    /// frontier-generation phase (status scan + queue stores).
    fn begin_level(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer) {
        let owned = self.sg.num_owned();
        let mut list = std::mem::take(&mut self.next_list);
        list.sort_unstable();
        self.cur.clear();
        for &u in &list {
            self.cur.push((u, self.next_mask[u as usize]));
            self.next_mask[u as usize] = 0;
        }
        self.next_edges = 0;
        prof.load_contiguous(self.scratch.status_base, 0, owned as u64, 8);
        prof.store_contiguous(self.scratch.fq_base, 0, self.cur.len() as u64, 4);
        if self.direction == Direction::BottomUp {
            // The shard's own previous-level discoveries join its view of
            // the global frontier (peers arrived via `inject_frontier`).
            for i in 0..self.cur.len() {
                let (u, mask) = self.cur[i];
                let g = self.owner.to_global(self.shard, u);
                if self.gf[g as usize] == 0 {
                    self.gf_touched.push(g);
                }
                self.gf[g as usize] |= mask;
            }
            prof.store_contiguous(self.scratch.gf_base, 0, self.cur.len() as u64, 8);
        }
        timer.phase(prof, PhaseKind::FrontierGeneration);
    }

    fn run_top_down(&mut self, level: u32, prof: &mut Profiler, timer: &mut dyn PhaseTimer) -> LevelStats {
        let cur = std::mem::take(&mut self.cur);
        // Expansion: stream each frontier vertex's adjacency list.
        let mut edges_inspected = 0u64;
        for &(u, _mask) in &cur {
            let row = self.sg.out_offsets()[u as usize];
            let deg = self.sg.out_degree(u) as u64;
            prof.load_block(self.offsets_base + u as u64 * 8, 16);
            prof.load_contiguous(self.out_adj_base, row, deg, 4);
            edges_inspected += deg;
        }
        prof.lanes(edges_inspected);
        timer.phase(prof, PhaseKind::Expansion);

        // Inspection: gather neighbor statuses, scatter updates; non-owned
        // neighbors accumulate in the outbox for the post-level exchange.
        let mut status_gathers: Vec<u64> = Vec::new();
        let mut status_scatters: Vec<u64> = Vec::new();
        let mut depth_scatters: Vec<u64> = Vec::new();
        let mut outbox_entries = 0u64;
        let owned = self.sg.num_owned();
        for &(u, mask) in &cur {
            for &w in self.sg.out_neighbors(u) {
                if self.owner.owner_of(w) == self.shard {
                    let lw = self.owner.to_local(w);
                    status_gathers.push(self.scratch.status_base + lw as u64 * 8);
                    let new = mask & !self.visited[lw as usize];
                    if new != 0 {
                        self.mark(lw, new, level as Depth);
                        status_scatters.push(self.scratch.status_base + lw as u64 * 8);
                        let mut rest = new;
                        while rest != 0 {
                            let j = rest.trailing_zeros() as u64;
                            rest &= rest - 1;
                            depth_scatters
                                .push(self.scratch.depth_base + j * owned as u64 + lw as u64);
                        }
                    }
                } else {
                    if self.remote_mask[w as usize] == 0 {
                        self.remote_touched.push(w);
                    }
                    if self.remote_mask[w as usize] | mask != self.remote_mask[w as usize] {
                        outbox_entries += 1;
                    }
                    self.remote_mask[w as usize] |= mask;
                }
            }
        }
        for chunk in status_gathers.chunks(32) {
            prof.warp_gather(chunk.iter().copied(), 8);
        }
        for chunk in status_scatters.chunks(32) {
            prof.warp_scatter(chunk.iter().copied(), 8);
        }
        for chunk in depth_scatters.chunks(32) {
            prof.warp_scatter(chunk.iter().copied(), 1);
        }
        prof.store_contiguous(self.scratch.outbox_base, 0, outbox_entries, 12);
        timer.phase(prof, PhaseKind::Inspection);

        LevelStats {
            level,
            direction: Direction::TopDown,
            unique_frontiers: cur.len() as u64,
            instance_frontiers: cur.iter().map(|&(_, m)| m.count_ones() as u64).sum(),
            edges_inspected,
            early_terminations: 0,
        }
    }

    fn run_bottom_up(&mut self, level: u32, prof: &mut Profiler, timer: &mut dyn PhaseTimer) -> LevelStats {
        let frontier_len = self.cur.len() as u64;
        let instance_frontiers: u64 = self.cur.iter().map(|&(_, m)| m.count_ones() as u64).sum();
        self.cur.clear();
        // Every not-fully-visited owned vertex searches its in-neighbors
        // for a parent in the global frontier, stopping once every
        // instance has one (the paper's §6 early termination, per vertex).
        let mut gf_gathers: Vec<u64> = Vec::new();
        let mut edges_inspected = 0u64;
        let mut early_terminations = 0u64;
        let mut adj_loads = 0u64;
        let owned = self.sg.num_owned();
        for u in 0..owned as u32 {
            let mut rem = self.all_mask & !self.visited[u as usize];
            if rem == 0 {
                continue;
            }
            prof.load_block(self.offsets_base + (owned as u64 + 1) * 8 + u as u64 * 8, 16);
            let mut found_total = 0u64;
            let neighbors = self.sg.in_neighbors(u);
            for &w in neighbors {
                edges_inspected += 1;
                adj_loads += 1;
                gf_gathers.push(self.scratch.gf_base + w as u64 * 8);
                let found = self.gf[w as usize] & rem;
                if found != 0 {
                    found_total |= found;
                    rem &= !found;
                    if rem == 0 {
                        early_terminations += 1;
                        break;
                    }
                }
            }
            if found_total != 0 {
                self.mark(u, found_total, level as Depth);
            }
        }
        prof.load_contiguous(self.in_adj_base, 0, adj_loads, 4);
        prof.lanes(edges_inspected);
        for chunk in gf_gathers.chunks(32) {
            prof.warp_gather(chunk.iter().copied(), 8);
        }
        // Status and depth writes for the newly found set.
        prof.store_contiguous(self.scratch.status_base, 0, self.next_list.len() as u64, 8);
        timer.phase(prof, PhaseKind::Inspection);

        LevelStats {
            level,
            direction: Direction::BottomUp,
            unique_frontiers: frontier_len,
            instance_frontiers,
            edges_inspected,
            early_terminations,
        }
    }
}

impl LevelEngine for ShardLevelEngine<'_> {
    fn level_cap(&self) -> u32 {
        DEPTH_UNVISITED as u32 - 1
    }

    fn has_work(&self) -> bool {
        !self.next_list.is_empty()
    }

    fn init(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer) {
        let seeds = std::mem::take(&mut self.sources);
        for &(u, mask) in &seeds {
            let new = mask & !self.visited[u as usize];
            if new != 0 {
                self.mark(u, new, 0);
            }
            prof.lane_store(self.scratch.status_base + u as u64 * 8, 8);
            prof.lane_store(self.scratch.depth_base + u as u64, 1);
        }
        timer.phase(prof, PhaseKind::Other);
    }

    fn run_level(&mut self, level: u32, prof: &mut Profiler, timer: &mut dyn PhaseTimer) -> LevelStats {
        self.last_level = level;
        self.begin_level(prof, timer);
        match self.direction {
            Direction::TopDown => self.run_top_down(level, prof, timer),
            Direction::BottomUp => self.run_bottom_up(level, prof, timer),
        }
    }
}

impl ExchangeEngine for ShardLevelEngine<'_> {
    fn set_direction(&mut self, dir: Direction) {
        self.direction = dir;
        if dir == Direction::BottomUp {
            // Stale frontier bits from an earlier bottom-up level must not
            // resurrect; peers re-inject the current frontier next.
            for g in self.gf_touched.drain(..) {
                self.gf[g as usize] = 0;
            }
        }
    }

    fn frontier_stats(&self) -> FrontierStats {
        FrontierStats {
            frontier_vertices: self.next_list.len() as u64,
            frontier_edges: self.next_edges,
            unexplored_edges: self.total_instance_edges - self.explored_edges,
        }
    }

    fn take_outbound(&mut self) -> Vec<Vec<FrontierUpdate>> {
        let mut out: Vec<Vec<FrontierUpdate>> = vec![Vec::new(); self.owner.num_shards()];
        let mut touched = std::mem::take(&mut self.remote_touched);
        touched.sort_unstable();
        for g in touched {
            let mask = std::mem::take(&mut self.remote_mask[g as usize]);
            debug_assert_ne!(mask, 0);
            out[self.owner.owner_of(g)].push(FrontierUpdate { vertex: g, mask });
        }
        out
    }

    fn inject_candidates(
        &mut self,
        updates: &[FrontierUpdate],
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    ) {
        let depth = self.last_level as Depth;
        let mut gathers: Vec<u64> = Vec::new();
        let mut scatters: Vec<u64> = Vec::new();
        for upd in updates {
            debug_assert_eq!(self.owner.owner_of(upd.vertex), self.shard);
            let u = self.owner.to_local(upd.vertex);
            gathers.push(self.scratch.status_base + u as u64 * 8);
            let new = upd.mask & !self.visited[u as usize];
            if new != 0 {
                self.mark(u, new, depth);
                scatters.push(self.scratch.status_base + u as u64 * 8);
            }
        }
        for chunk in gathers.chunks(32) {
            prof.warp_gather(chunk.iter().copied(), 8);
        }
        for chunk in scatters.chunks(32) {
            prof.warp_scatter(chunk.iter().copied(), 8);
        }
        timer.phase(prof, PhaseKind::Other);
    }

    fn frontier_snapshot(&self) -> Vec<FrontierUpdate> {
        let mut list = self.next_list.clone();
        list.sort_unstable();
        list.iter()
            .map(|&u| FrontierUpdate {
                vertex: self.owner.to_global(self.shard, u),
                mask: self.next_mask[u as usize],
            })
            .collect()
    }

    fn inject_frontier(
        &mut self,
        updates: &[FrontierUpdate],
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    ) {
        for upd in updates {
            if self.gf[upd.vertex as usize] == 0 {
                self.gf_touched.push(upd.vertex);
            }
            self.gf[upd.vertex as usize] |= upd.mask;
        }
        prof.store_contiguous(self.scratch.gf_base, 0, updates.len() as u64, 8);
        timer.phase(prof, PhaseKind::Other);
    }
}

/// A resident sharded traversal service: the partition is built and
/// uploaded once (one simulated device per shard) and every request runs
/// lockstep waves over it — the sharded analogue of
/// [`ibfs::service::IbfsService`].
pub struct ShardedService<'g> {
    graph: &'g Csr,
    config: ShardedConfig,
    grouping: GroupingStrategy,
    partition: Partition,
    devices: Vec<ShardDevice>,
    /// When set, run_wave records per-shard comm-phase
    /// (encode/exchange/apply) [`ibfs_obs::PhaseRecord`]s into it.
    profiler: Option<Arc<EngineProfiler>>,
}

impl<'g> ShardedService<'g> {
    /// Partitions `graph` (with `reverse = graph.reverse()`) and uploads
    /// each shard to its own simulated device.
    pub fn new(graph: &'g Csr, reverse: &Csr, config: ShardedConfig) -> Self {
        let partition = Partitioner::new(config.shards, config.layout).partition(graph, reverse);
        let devices = partition
            .shards
            .iter()
            .map(|sg| ShardDevice::new(sg, config.device))
            .collect();
        // Waves share one u64 status word per vertex, so groups clamp to
        // WAVE_WIDTH instances.
        let mut grouping = config.grouping.clone();
        if grouping.group_size() > WAVE_WIDTH {
            grouping = match grouping {
                GroupingStrategy::Random { seed, .. } => {
                    GroupingStrategy::Random { seed, group_size: WAVE_WIDTH }
                }
                GroupingStrategy::OutDegreeRules(cfg) => {
                    GroupingStrategy::OutDegreeRules(cfg.with_group_size(WAVE_WIDTH))
                }
            };
        }
        ShardedService { graph, config, grouping, partition, devices, profiler: None }
    }

    /// Attaches a profiler: every subsequent wave records per-shard
    /// comm-phase timings (encode, simulated exchange, apply) into it.
    pub fn set_profiler(&mut self, profiler: Arc<EngineProfiler>) {
        self.profiler = Some(profiler);
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The grouping in effect (after the wave-width clamp).
    pub fn grouping(&self) -> &GroupingStrategy {
        &self.grouping
    }

    /// Shard count.
    pub fn num_shards(&self) -> usize {
        self.partition.num_shards()
    }

    /// The owner map of the resident partition.
    pub fn owner(&self) -> &VertexOwner {
        &self.partition.owner
    }

    /// Validates a request against the resident graph without running it.
    pub fn admit(&self, sources: &[VertexId]) -> Result<(), RequestError> {
        admit_sources(sources, self.graph.num_vertices())
    }

    /// Serves one request. Panics on an invalid request; use
    /// [`ShardedService::try_run_traced`] for typed errors.
    pub fn run(&mut self, sources: &[VertexId]) -> ShardedRun {
        self.try_run_traced(sources, &mut NullSink)
            .unwrap_or_else(|e| panic!("invalid request: {e}"))
    }

    /// Serves one request: groups the sources into lockstep waves, runs
    /// each wave across every shard, and assembles global results.
    pub fn try_run_traced(
        &mut self,
        sources: &[VertexId],
        sink: &mut dyn TraceSink,
    ) -> Result<ShardedRun, RequestError> {
        self.admit(sources)?;
        let grouping = self.grouping.group(self.graph, sources);
        let mut groups = Vec::with_capacity(grouping.groups.len());
        let mut comm = CommStats::default();
        let mut counters = Counters::default();
        let mut sim_seconds = 0.0;
        let mut traversed = 0u64;
        for (gi, group) in grouping.groups.iter().enumerate() {
            let mut stamped = GroupStamp { group: gi as u64, inner: sink };
            let run = self.run_wave(group, &mut comm, &mut stamped);
            counters = counters.add(&run.counters);
            sim_seconds += run.sim_seconds;
            traversed += run.traversed_edges;
            groups.push(run);
        }
        Ok(ShardedRun {
            shards: self.config.shards,
            layout: self.config.layout,
            groups,
            sim_seconds,
            traversed_edges: traversed,
            counters,
            comm,
        })
    }

    /// Runs one wave (≤ [`WAVE_WIDTH`] instances) across every shard in
    /// lockstep.
    fn run_wave(
        &mut self,
        group: &[VertexId],
        comm: &mut CommStats,
        sink: &mut dyn TraceSink,
    ) -> GroupRun {
        let n_global = self.graph.num_vertices();
        let instances = group.len();
        let shards = self.partition.num_shards();
        let owner = self.partition.owner;
        let comm_cfg = self.config.comm;
        let policy = DirectionPolicy::beamer();
        let prof_arc = self.profiler.clone();
        let prof = prof_arc.as_deref();
        // One timeline track per wave; lanes are shard indices.
        let track = prof.map(|p| p.open_track()).unwrap_or(0);

        // Per-shard engines over fresh scratch; seeds go to their owners.
        let mut seeds: Vec<Vec<(u32, u64)>> = vec![Vec::new(); shards];
        for (j, &s) in group.iter().enumerate() {
            seeds[owner.owner_of(s)].push((owner.to_local(s), 1u64 << j));
        }
        let mut engines: Vec<ShardLevelEngine<'_>> = Vec::with_capacity(shards);
        let mut timers: Vec<SimTimer> = Vec::with_capacity(shards);
        let wave_start: Vec<Counters> =
            self.devices.iter().map(|d| d.prof.snapshot()).collect();
        for (sg, dev) in self.partition.shards.iter().zip(self.devices.iter_mut()) {
            let scratch = dev.alloc_scratch(sg.num_owned(), n_global, instances);
            let model = ibfs_gpu_sim::CostModel::new(dev.prof.config);
            timers.push(SimTimer::start(model, &dev.prof));
            engines.push(ShardLevelEngine::new(
                sg,
                owner,
                scratch,
                dev,
                std::mem::take(&mut seeds[sg.shard]),
                instances,
            ));
        }

        // Lockstep init: every shard seeds level 0; the wave pays the
        // slowest shard.
        let mut wave_seconds = 0.0f64;
        {
            let before: Vec<f64> = timers.iter().map(|t| t.seconds()).collect();
            for s in 0..shards {
                engines[s].init(&mut self.devices[s].prof, &mut timers[s]);
            }
            wave_seconds += (0..shards)
                .map(|s| timers[s].seconds() - before[s])
                .fold(0.0f64, f64::max);
        }

        let mut levels: Vec<LevelStats> = Vec::new();
        let mut dir = Direction::TopDown;
        let level_cap = engines[0].level_cap();
        for level in 1..=level_cap {
            let agg = engines
                .iter()
                .map(|e| e.frontier_stats())
                .fold(FrontierStats::default(), |a, b| a.add(&b));
            if agg.frontier_vertices == 0 {
                break;
            }
            dir = policy.next(
                dir,
                agg.frontier_edges,
                agg.frontier_vertices,
                agg.unexplored_edges,
                n_global as u64,
            );
            for e in engines.iter_mut() {
                e.set_direction(dir);
            }

            let before_secs: Vec<f64> = timers.iter().map(|t| t.seconds()).collect();
            let before_counters: Vec<Counters> =
                self.devices.iter().map(|d| d.prof.snapshot()).collect();
            let mut cost = ExchangeCost::default();

            // Bottom-up needs the global frontier on every shard first.
            if dir == Direction::BottomUp && shards > 1 {
                let encode_start = prof.map(|p| p.begin());
                let snaps: Vec<Vec<FrontierUpdate>> =
                    engines.iter().map(|e| e.frontier_snapshot()).collect();
                let payloads: Vec<Payload> = snaps
                    .iter()
                    .enumerate()
                    .map(|(s, sn)| encode_payload(sn, owner.num_owned(s)))
                    .collect();
                cost = allgather_cost(&comm_cfg, &payloads);
                if let (Some(p), Some(e)) = (prof, encode_start) {
                    let secs = e.elapsed_s();
                    for (s, pl) in payloads.iter().enumerate() {
                        p.record(
                            track,
                            s,
                            level as u64,
                            ProfPhase::CommEncode,
                            e.start_s(),
                            secs,
                            pl.bytes,
                            pl.entries,
                        );
                    }
                    // Simulated wire time: one span per shard, offset past
                    // the measured encode.
                    for s in 0..shards {
                        p.record(
                            track,
                            s,
                            level as u64,
                            ProfPhase::CommExchange,
                            e.start_s() + secs,
                            cost.seconds,
                            cost.bytes,
                            cost.messages,
                        );
                    }
                }
                let apply_start = prof.map(|p| p.begin());
                for i in 0..shards {
                    for (j, snap) in snaps.iter().enumerate() {
                        if i != j && !snap.is_empty() {
                            engines[i].inject_frontier(
                                snap,
                                &mut self.devices[i].prof,
                                &mut timers[i],
                            );
                        }
                    }
                }
                if let (Some(p), Some(a)) = (prof, apply_start) {
                    let secs = a.elapsed_s();
                    for i in 0..shards {
                        let (bytes, entries) = payloads
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .fold((0u64, 0u64), |acc, (_, pl)| {
                                (acc.0 + pl.bytes, acc.1 + pl.entries)
                            });
                        p.record(
                            track,
                            i,
                            level as u64,
                            ProfPhase::CommApply,
                            a.start_s(),
                            secs,
                            bytes,
                            entries,
                        );
                    }
                }
            }

            // The level proper, one kernel launch per shard.
            let mut shard_stats: Vec<LevelStats> = Vec::with_capacity(shards);
            for s in 0..shards {
                timers[s].kernel_launch();
                shard_stats.push(engines[s].run_level(
                    level,
                    &mut self.devices[s].prof,
                    &mut timers[s],
                ));
            }

            // Top-down scatters remote candidates to their owners.
            if dir == Direction::TopDown && shards > 1 {
                let encode_start = prof.map(|p| p.begin());
                let outs: Vec<Vec<Vec<FrontierUpdate>>> =
                    engines.iter_mut().map(|e| e.take_outbound()).collect();
                let matrix: Vec<Vec<Payload>> = outs
                    .iter()
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .map(|(d, u)| encode_payload(u, owner.num_owned(d)))
                            .collect()
                    })
                    .collect();
                cost = scatter_cost(&comm_cfg, &matrix);
                if let (Some(p), Some(e)) = (prof, encode_start) {
                    let secs = e.elapsed_s();
                    for (src, row) in matrix.iter().enumerate() {
                        let (bytes, entries) = row
                            .iter()
                            .enumerate()
                            .filter(|&(dst, _)| dst != src)
                            .fold((0u64, 0u64), |acc, (_, pl)| {
                                (acc.0 + pl.bytes, acc.1 + pl.entries)
                            });
                        p.record(
                            track,
                            src,
                            level as u64,
                            ProfPhase::CommEncode,
                            e.start_s(),
                            secs,
                            bytes,
                            entries,
                        );
                    }
                    for s in 0..shards {
                        p.record(
                            track,
                            s,
                            level as u64,
                            ProfPhase::CommExchange,
                            e.start_s() + secs,
                            cost.seconds,
                            cost.bytes,
                            cost.messages,
                        );
                    }
                }
                let apply_start = prof.map(|p| p.begin());
                for (src, row) in outs.iter().enumerate() {
                    for (dst, updates) in row.iter().enumerate() {
                        if src != dst && !updates.is_empty() {
                            engines[dst].inject_candidates(
                                updates,
                                &mut self.devices[dst].prof,
                                &mut timers[dst],
                            );
                        }
                    }
                }
                if let (Some(p), Some(a)) = (prof, apply_start) {
                    let secs = a.elapsed_s();
                    for dst in 0..shards {
                        let (bytes, entries) = matrix
                            .iter()
                            .enumerate()
                            .filter(|&(src, _)| src != dst)
                            .fold((0u64, 0u64), |acc, (_, row)| {
                                (acc.0 + row[dst].bytes, acc.1 + row[dst].entries)
                            });
                        p.record(
                            track,
                            dst,
                            level as u64,
                            ProfPhase::CommApply,
                            a.start_s(),
                            secs,
                            bytes,
                            entries,
                        );
                    }
                }
            }

            comm.push_level(level, &cost);
            let compute = (0..shards)
                .map(|s| timers[s].seconds() - before_secs[s])
                .fold(0.0f64, f64::max);
            let level_seconds = compute + cost.seconds;
            wave_seconds += level_seconds;

            let agg_stats = shard_stats.iter().fold(
                LevelStats {
                    level,
                    direction: dir,
                    unique_frontiers: 0,
                    instance_frontiers: 0,
                    edges_inspected: 0,
                    early_terminations: 0,
                },
                |mut a, s| {
                    a.unique_frontiers += s.unique_frontiers;
                    a.instance_frontiers += s.instance_frontiers;
                    a.edges_inspected += s.edges_inspected;
                    a.early_terminations += s.early_terminations;
                    a
                },
            );
            let delta = self
                .devices
                .iter()
                .zip(&before_counters)
                .fold(Counters::default(), |acc, (d, b)| {
                    acc.add(&d.prof.snapshot().delta(b))
                });
            sink.record(&TraversalEvent {
                group: 0,
                batch: 0,
                level,
                direction: dir,
                unique_frontiers: agg_stats.unique_frontiers,
                instance_frontiers: agg_stats.instance_frontiers,
                edges_inspected: agg_stats.edges_inspected,
                early_terminations: agg_stats.early_terminations,
                load_transactions: delta.global_load_transactions,
                store_transactions: delta.global_store_transactions,
                atomic_transactions: delta.atomic_transactions,
                sim_seconds: level_seconds,
            });
            levels.push(agg_stats);
        }

        // Assemble per-shard local depths back into global vertex order.
        let mut depths = vec![DEPTH_UNVISITED; instances * n_global];
        for (s, e) in engines.iter().enumerate() {
            let owned = e.sg.num_owned();
            for u in 0..owned as u32 {
                let g = owner.to_global(s, u) as usize;
                for j in 0..instances {
                    depths[j * n_global + g] = e.depths[j * owned + u as usize];
                }
            }
        }
        let traversed = traversed_edges_for(self.graph, &depths, instances);
        let wave_counters = self
            .devices
            .iter()
            .zip(&wave_start)
            .fold(Counters::default(), |acc, (d, b)| acc.add(&d.prof.snapshot().delta(b)));
        let kernel_launches: u64 = timers.iter().map(|t| t.launch_count()).sum();

        GroupRun {
            engine: "sharded",
            num_instances: instances,
            num_vertices: n_global,
            depths,
            levels,
            counters: wave_counters,
            sim_seconds: wave_seconds,
            traversed_edges: traversed,
            kernel_launches,
        }
    }
}

/// One-shot sharded traversal: partition, upload, run, discard — the
/// sharded counterpart of [`ibfs::runner::run_ibfs`], pinned bit-identical
/// to it (depths and traversed edges) by the differential suite.
pub fn run_sharded(
    graph: &Csr,
    reverse: &Csr,
    sources: &[VertexId],
    config: &ShardedConfig,
) -> ShardedRun {
    ShardedService::new(graph, reverse, config.clone()).run(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ExchangePattern;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::validate::reference_bfs;

    fn config(shards: usize, layout: OwnershipLayout, pattern: ExchangePattern) -> ShardedConfig {
        ShardedConfig {
            shards,
            layout,
            comm: CommConfig::with_pattern(pattern),
            ..Default::default()
        }
    }

    #[test]
    fn sharded_depths_match_reference_bfs() {
        let g = rmat(8, 8, RmatParams::graph500(), 11);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..32).collect();
        for shards in [1usize, 3, 4] {
            for layout in OwnershipLayout::all() {
                let run = run_sharded(
                    &g,
                    &r,
                    &sources,
                    &config(shards, layout, ExchangePattern::AllToAll),
                );
                assert_eq!(run.num_instances(), 32);
                let grouping = ShardedConfig::default().grouping.group(&g, &sources);
                for (gi, group) in grouping.groups.iter().enumerate() {
                    for (j, &s) in group.iter().enumerate() {
                        assert_eq!(
                            run.groups[gi].instance_depths(j),
                            &reference_bfs(&g, s)[..],
                            "shards={shards} layout={layout:?} source={s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn patterns_change_cost_not_results() {
        let g = rmat(9, 8, RmatParams::graph500(), 23);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..48).collect();
        let a2a = run_sharded(
            &g,
            &r,
            &sources,
            &config(4, OwnershipLayout::Hash, ExchangePattern::AllToAll),
        );
        let bf = run_sharded(
            &g,
            &r,
            &sources,
            &config(4, OwnershipLayout::Hash, ExchangePattern::Butterfly),
        );
        for (ga, gb) in a2a.groups.iter().zip(&bf.groups) {
            assert_eq!(ga.depths, gb.depths);
        }
        assert_eq!(a2a.traversed_edges, bf.traversed_edges);
        assert!(bf.comm.messages <= a2a.comm.messages);
        assert!(bf.comm.messages > 0);
    }

    #[test]
    fn single_shard_run_exchanges_nothing() {
        let g = rmat(7, 8, RmatParams::graph500(), 3);
        let r = g.reverse();
        let run = run_sharded(
            &g,
            &r,
            &(0..16).collect::<Vec<_>>(),
            &config(1, OwnershipLayout::Contiguous, ExchangePattern::AllToAll),
        );
        assert_eq!(run.comm.messages, 0);
        assert_eq!(run.comm.bytes, 0);
        assert!(run.comm.exchange_seconds == 0.0);
        assert!(run.sim_seconds > 0.0);
    }

    #[test]
    fn resident_service_is_reusable_and_deterministic() {
        let g = rmat(8, 8, RmatParams::graph500(), 9);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..24).collect();
        let mut svc = ShardedService::new(
            &g,
            &r,
            config(4, OwnershipLayout::Contiguous, ExchangePattern::Butterfly),
        );
        let a = svc.run(&sources);
        let b = svc.run(&sources);
        assert_eq!(a.groups[0].depths, b.groups[0].depths);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
    }

    #[test]
    fn admission_rejects_bad_requests() {
        let g = rmat(6, 4, RmatParams::graph500(), 1);
        let r = g.reverse();
        let mut svc =
            ShardedService::new(&g, &r, config(2, OwnershipLayout::Hash, ExchangePattern::AllToAll));
        assert_eq!(
            svc.try_run_traced(&[], &mut NullSink).unwrap_err(),
            RequestError::EmptySources
        );
        let bad = g.num_vertices() as VertexId;
        assert!(matches!(
            svc.try_run_traced(&[bad], &mut NullSink).unwrap_err(),
            RequestError::SourceOutOfRange { .. }
        ));
    }

    #[test]
    fn exchange_time_is_charged_into_sim_time() {
        let g = rmat(8, 8, RmatParams::graph500(), 17);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..32).collect();
        let cheap = run_sharded(&g, &r, &sources, &ShardedConfig {
            shards: 4,
            comm: CommConfig { latency_s: 0.0, bytes_per_s: f64::INFINITY, ..Default::default() },
            ..Default::default()
        });
        let pricey = run_sharded(&g, &r, &sources, &ShardedConfig {
            shards: 4,
            comm: CommConfig { latency_s: 1e-3, bytes_per_s: 1e6, ..Default::default() },
            ..Default::default()
        });
        assert_eq!(cheap.groups[0].depths, pricey.groups[0].depths);
        assert!(pricey.comm.exchange_seconds > 0.0);
        assert!(
            (pricey.sim_seconds - cheap.sim_seconds - pricey.comm.exchange_seconds).abs()
                < 1e-9 * pricey.sim_seconds.max(1.0),
            "sim time must grow by exactly the exchange time"
        );
    }

    #[test]
    fn summary_reports_comm_volume() {
        let g = rmat(7, 8, RmatParams::graph500(), 29);
        let r = g.reverse();
        let run = run_sharded(
            &g,
            &r,
            &(0..16).collect::<Vec<_>>(),
            &config(4, OwnershipLayout::Contiguous, ExchangePattern::AllToAll),
        );
        let s = run.summary();
        assert_eq!(s.shards, 4);
        assert_eq!(s.messages, run.comm.messages);
        assert!(s.messages > 0);
        assert!(s.bytes > 0);
        assert!(!run.comm.per_level.is_empty());
    }
}
