//! Graph substrate for the iBFS reproduction.
//!
//! This crate provides everything the paper assumes as given about graphs:
//!
//! * [`Csr`] — Compressed Sparse Row storage, the exact format the paper uses
//!   ("All these graphs are stored in the Compressed Sparse Row (CSR)
//!   format"), including reverse edges to support bottom-up traversal.
//! * [`EdgeList`] and [`CsrBuilder`] — construction from raw edges.
//! * [`generators`] — Graph500 Kronecker / R-MAT, uniform-degree random
//!   (the paper's RD graph), and power-law Chung–Lu generators used to
//!   synthesize stand-ins for the paper's proprietary crawls.
//! * [`suite`] — the paper's 13-graph benchmark suite (FB, FR, HW, KG0, KG1,
//!   KG2, LJ, OR, PK, RD, RM, TW, WK) at laptop scale.
//! * [`io`] — compact binary serialization of CSR graphs.
//! * [`validate`] — reference BFS and traversal-result validation used by the
//!   test suites of every engine crate.

pub mod builder;
pub mod components;
pub mod csr;
pub mod degree;
pub mod dimacs;
pub mod edgelist;
pub mod generators;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod suite;
pub mod tiling;
pub mod validate;
pub mod weighted;

pub use builder::CsrBuilder;
pub use csr::Csr;
pub use edgelist::EdgeList;

/// Vertex identifier. The paper evaluates graphs up to 16.7M vertices; `u32`
/// covers that with half the memory traffic of `u64`, which matters for the
/// simulated-transaction counts.
pub type VertexId = u32;

/// Depth of a vertex in a BFS tree. `DEPTH_UNVISITED` marks unvisited.
pub type Depth = u8;

/// Sentinel depth for vertices not reached by a traversal.
pub const DEPTH_UNVISITED: Depth = Depth::MAX;
