//! Compressed Sparse Row graph storage.
//!
//! The paper stores every benchmark graph in CSR and keeps reversed edges for
//! directed graphs so bottom-up traversal can look up in-neighbors. [`Csr`]
//! mirrors that: `offsets`/`adj` hold out-edges; [`Csr::reverse`] produces the
//! transposed graph.

use crate::VertexId;

/// A directed graph in Compressed Sparse Row form.
///
/// `offsets` has `num_vertices() + 1` entries; the neighbors of vertex `v`
/// are `adj[offsets[v]..offsets[v + 1]]`, sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    adj: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR graph from raw parts.
    ///
    /// # Panics
    /// Panics if `offsets` is empty, non-monotonic, its last entry differs
    /// from `adj.len()`, or any adjacency entry is out of range.
    pub fn from_parts(offsets: Vec<u64>, adj: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            adj.len() as u64,
            "last offset must equal edge count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = (offsets.len() - 1) as u64;
        assert!(
            adj.iter().all(|&v| (v as u64) < n),
            "adjacency entry out of range"
        );
        Csr { offsets, adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbors of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Byte offset of the adjacency list of `v` inside the adjacency array.
    /// Used by the GPU memory model to compute coalesced transaction counts.
    #[inline]
    pub fn adj_start(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// The raw offsets array (length `num_vertices() + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw adjacency array.
    #[inline]
    pub fn adjacency(&self) -> &[VertexId] {
        &self.adj
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all directed edges `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |v| self.neighbors(v).iter().map(move |&w| (v, w)))
    }

    /// Whether the directed edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// The transposed graph (every edge reversed). For undirected inputs the
    /// suite stores both directions so `reverse` equals the original.
    pub fn reverse(&self) -> Csr {
        let n = self.num_vertices();
        let mut in_deg = vec![0u64; n + 1];
        for &w in &self.adj {
            in_deg[w as usize + 1] += 1;
        }
        let mut offsets = in_deg;
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as VertexId; self.num_edges()];
        for v in 0..n as VertexId {
            for &w in self.neighbors(v) {
                let slot = cursor[w as usize];
                adj[slot as usize] = v;
                cursor[w as usize] += 1;
            }
        }
        // Each destination bucket was filled in ascending source order, so
        // the adjacency lists are already sorted.
        Csr { offsets, adj }
    }

    /// Whether the graph is symmetric (u→v implies v→u).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Total bytes of the CSR arrays — the `S` term in the paper's group-size
    /// bound `N <= (M - S - |JFQ|) / |SA|`.
    pub fn storage_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.adj.len() * std::mem::size_of::<VertexId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    /// The 9-vertex example graph of Figure 1, stored undirected (both
    /// directions), used across the whole workspace's tests.
    pub(crate) fn figure1_graph() -> Csr {
        let und = [
            (0u32, 1u32),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 5),
            (3, 5),
            (3, 6),
            (4, 5),
            (5, 7),
            (5, 8),
            (6, 7),
            (7, 8),
        ];
        let mut b = CsrBuilder::new(9);
        for &(u, v) in &und {
            b.add_edge(u, v);
            b.add_edge(v, u);
        }
        b.build()
    }

    #[test]
    fn figure1_basic_shape() {
        let g = figure1_graph();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 28);
        assert!(g.is_symmetric());
        assert_eq!(g.neighbors(0), &[1, 4]);
        assert_eq!(g.neighbors(5), &[2, 3, 4, 7, 8]);
        assert_eq!(g.out_degree(7), 3);
    }

    #[test]
    fn reverse_of_symmetric_graph_is_identity() {
        let g = figure1_graph();
        assert_eq!(g.reverse(), g);
    }

    #[test]
    fn reverse_transposes_directed_graph() {
        let mut b = CsrBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build();
        let r = g.reverse();
        assert_eq!(r.neighbors(1), &[0]);
        assert_eq!(r.neighbors(2), &[0]);
        assert_eq!(r.neighbors(3), &[2]);
        assert_eq!(r.neighbors(0), &[3]);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn has_edge_and_degree() {
        let g = figure1_graph();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 8));
        assert_eq!(g.avg_degree(), 28.0 / 9.0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_parts(vec![0], vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_symmetric());
        assert_eq!(g.reverse().num_vertices(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "adjacency entry out of range")]
    fn from_parts_rejects_out_of_range() {
        Csr::from_parts(vec![0, 1], vec![5]);
    }

    #[test]
    #[should_panic(expected = "last offset must equal edge count")]
    fn from_parts_rejects_bad_last_offset() {
        Csr::from_parts(vec![0, 2], vec![0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_decreasing_offsets() {
        Csr::from_parts(vec![0, 2, 1, 3], vec![0, 1, 2]);
    }

    #[test]
    fn storage_bytes_counts_both_arrays() {
        let g = figure1_graph();
        assert_eq!(g.storage_bytes(), (10 * 8 + 28 * 4) as u64);
    }
}
