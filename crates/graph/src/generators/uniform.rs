//! Uniform-outdegree random graph — the paper's RD benchmark
//! ("RD graph has uniform outdegree distribution, i.e., each vertex has
//! roughly the same outdegree").

use crate::{Csr, CsrBuilder, VertexId};
use ibfs_util::Rng;

/// Generates a random graph with `n` vertices where each vertex gets
/// `degree` undirected edges to uniformly random distinct endpoints
/// (both directions stored). Deterministic in `seed`.
pub fn uniform_random(n: usize, degree: usize, seed: u64) -> Csr {
    assert!(n >= 2 || degree == 0, "need at least 2 vertices for edges");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n).with_edge_capacity(2 * n * degree);
    for u in 0..n as VertexId {
        for _ in 0..degree {
            let mut v = rng.gen_range(0..n as VertexId);
            while v == u {
                v = rng.gen_range(0..n as VertexId);
            }
            b.add_undirected_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_random(256, 8, 5), uniform_random(256, 8, 5));
        assert_ne!(uniform_random(256, 8, 5), uniform_random(256, 8, 6));
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = uniform_random(1024, 16, 3);
        let stats = DegreeStats::of(&g);
        // Each vertex initiates 16 undirected edges and receives ~16 more;
        // with dedup the mean lands a little under 32.
        assert!(stats.avg > 24.0 && stats.avg < 32.5, "avg {}", stats.avg);
        // Uniform graphs have no hubs: max degree within a small factor of
        // the mean (binomial tail), unlike the R-MAT hubs.
        assert!(
            (stats.max as f64) < 2.5 * stats.avg,
            "max {} avg {}",
            stats.max,
            stats.avg
        );
        assert!(g.is_symmetric());
    }

    #[test]
    fn no_self_loops() {
        let g = uniform_random(64, 4, 9);
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn zero_degree_gives_empty_edge_set() {
        let g = uniform_random(10, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
