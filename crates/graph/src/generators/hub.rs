//! Hub-heavy adversarial generator.
//!
//! The worst case for vertex-granular work splitting: one vertex owning
//! the majority of all directed edges. A scheduler that cannot split
//! inside an edge list serializes most of every top-down level behind
//! whichever lane drew the hub; an edge-tiled scheduler spreads the hub's
//! list across all lanes. The tiled-vs-pooled TEPS gate in
//! `bfs cpu-bench --check` runs on exactly this graph.

use crate::{Csr, CsrBuilder, VertexId};
use ibfs_util::Rng;

/// Builds a directed multigraph of `n` vertices where vertex 0 (the hub)
/// owns more than half of all directed edges.
///
/// Structure: the hub keeps `dup` parallel edges to every other vertex
/// (duplicates retained — this is a multigraph by design); every other
/// vertex has one edge back to the hub, one ring edge to its successor,
/// and one seeded random chord. With `dup >= 4` the hub's out-degree
/// `dup·(n−1)` exceeds the `3·(n−1)` edges owned by everyone else
/// combined, so the hub holds `dup/(dup+3) > 50%` of all directed edges.
/// Deterministic in `seed`.
pub fn hub_heavy(n: usize, dup: usize, seed: u64) -> Csr {
    assert!(n >= 3, "hub graph needs at least 3 vertices");
    assert!(dup >= 4, "dup >= 4 keeps the hub above 50% of edges");
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n)
        .keep_duplicates()
        .with_edge_capacity((dup + 3) * (n - 1));
    let last = (n - 1) as VertexId;
    for v in 1..=last {
        for _ in 0..dup {
            b.add_edge(0, v);
        }
        b.add_edge(v, 0);
        // Ring over the non-hub vertices keeps them mutually reachable
        // without going through the hub.
        b.add_edge(v, if v == last { 1 } else { v + 1 });
        let mut w = rng.gen_range(1..n as VertexId);
        if w == v {
            w = if v == last { 1 } else { v + 1 };
        }
        b.add_edge(v, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::reference_bfs;

    #[test]
    fn hub_owns_majority_of_edges() {
        let g = hub_heavy(500, 4, 11);
        let hub_deg = g.out_degree(0);
        assert!(
            2 * hub_deg > g.num_edges(),
            "hub {} of {} edges",
            hub_deg,
            g.num_edges()
        );
        assert_eq!(hub_deg, 4 * 499);
    }

    #[test]
    fn deterministic_and_fully_reachable() {
        assert_eq!(hub_heavy(64, 5, 3), hub_heavy(64, 5, 3));
        let g = hub_heavy(64, 5, 3);
        // From the hub: everything at depth 1.
        let d = reference_bfs(&g, 0);
        assert!(d.iter().skip(1).all(|&x| x == 1));
        // From a ring vertex: hub at depth 1, everyone else within 2.
        let d = reference_bfs(&g, 7);
        assert_eq!(d[0], 1);
        assert!(d.iter().all(|&x| x <= 2));
    }

    #[test]
    fn duplicates_are_retained() {
        let g = hub_heavy(10, 4, 0);
        assert_eq!(g.neighbors(0).iter().filter(|&&w| w == 3).count(), 4);
    }
}
