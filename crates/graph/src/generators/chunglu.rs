//! Chung–Lu power-law generator: stand-in for the paper's real-world crawls.
//!
//! The Chung–Lu model draws each endpoint with probability proportional to a
//! per-vertex weight; power-law weights produce the heavy-tailed degree
//! distribution that drives the paper's GroupBy rules (Figure 7: "many
//! vertices are connected to a high-outdegree vertex"). We use it to build
//! laptop-scale analogues of FB, TW, WK, LJ, OR, FR, PK and HW that preserve
//! each crawl's |V|, average degree, and skew.

use crate::{Csr, CsrBuilder, VertexId};
use ibfs_util::Rng;

/// Power-law weight sequence `w_i = c * (i + i0)^(-1/(gamma-1))` scaled so the
/// weights sum to `n * avg_degree`. Typical social-network `gamma` is 2.1–2.5.
pub fn powerlaw_weights(n: usize, avg_degree: f64, gamma: f64) -> Vec<f64> {
    assert!(gamma > 1.0, "gamma must exceed 1");
    let exponent = -1.0 / (gamma - 1.0);
    let i0 = 1.0_f64;
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(exponent)).collect();
    let sum: f64 = w.iter().sum();
    let target = n as f64 * avg_degree;
    let scale = target / sum;
    for x in &mut w {
        *x *= scale;
    }
    w
}

/// Chung–Lu random graph over the given weight sequence. Generates
/// `sum(weights) / 2` undirected edges by weighted endpoint sampling
/// (alias-free: inverse-CDF on a prefix-sum table), deduplicated, both
/// directions stored. Vertex ids are randomly permuted after generation so
/// an id carries no degree information (matching the Graph 500 convention
/// and real crawls). Deterministic in `seed`.
pub fn chung_lu(weights: &[f64], seed: u64) -> Csr {
    let n = weights.len();
    assert!(n >= 2, "need at least two vertices");
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    for &w in weights {
        assert!(w >= 0.0, "weights must be non-negative");
        prefix.push(prefix.last().unwrap() + w);
    }
    let total = *prefix.last().unwrap();
    assert!(total > 0.0, "total weight must be positive");
    let m = (total / 2.0).round() as usize;

    let mut rng = Rng::seed_from_u64(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let sample = |rng: &mut Rng| -> VertexId {
        let r = rng.gen::<f64>() * total;
        // partition_point returns the first index with prefix > r; vertex
        // index is that minus one.
        let idx = prefix.partition_point(|&p| p <= r);
        (idx.saturating_sub(1)).min(n - 1) as VertexId
    };

    let mut b = CsrBuilder::new(n).with_edge_capacity(2 * m);
    for _ in 0..m {
        let u = sample(&mut rng);
        let mut v = sample(&mut rng);
        let mut tries = 0;
        while v == u && tries < 16 {
            v = sample(&mut rng);
            tries += 1;
        }
        if v != u {
            b.add_undirected_edge(perm[u as usize], perm[v as usize]);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn weights_sum_to_target() {
        let w = powerlaw_weights(1000, 12.0, 2.3);
        let sum: f64 = w.iter().sum();
        assert!((sum - 12_000.0).abs() < 1e-6);
        // Monotone non-increasing.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn deterministic_in_seed() {
        let w = powerlaw_weights(512, 8.0, 2.2);
        assert_eq!(chung_lu(&w, 11), chung_lu(&w, 11));
        assert_ne!(chung_lu(&w, 11), chung_lu(&w, 12));
    }

    #[test]
    fn produces_heavy_tail() {
        let w = powerlaw_weights(2048, 16.0, 2.1);
        let g = chung_lu(&w, 3);
        let stats = DegreeStats::of(&g);
        assert!(
            stats.max as f64 > 6.0 * stats.avg,
            "expected hubs: max {} avg {}",
            stats.max,
            stats.avg
        );
        assert!(g.is_symmetric());
    }

    #[test]
    fn density_close_to_requested() {
        let w = powerlaw_weights(4096, 10.0, 2.4);
        let g = chung_lu(&w, 5);
        // Dedup and self-loop rejection lose some edges; expect within 30%.
        let avg = g.avg_degree();
        assert!(avg > 7.0 && avg < 11.0, "avg degree {avg}");
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn rejects_bad_gamma() {
        powerlaw_weights(10, 4.0, 1.0);
    }
}
