//! Regular mesh generators — DIMACS-style high-diameter graphs.
//!
//! The sync-vs-async crossover (Galois' BFS README; Buluç & Madduri,
//! arXiv:1104.4518) shows up on high-diameter, low-degree inputs like road
//! networks, where per-level barriers dominate: a level-synchronous engine
//! pays one barrier per BFS level and a 2D mesh has O(√n) levels. These
//! generators produce deterministic stand-ins for that graph class.

use crate::{Csr, CsrBuilder, VertexId};

/// A 2D grid (4-neighbor von Neumann mesh) of `rows × cols` vertices,
/// stored undirected. Vertex `(r, c)` has id `r * cols + c`; its BFS
/// diameter from a corner is `rows + cols - 2`, so the graph behaves like
/// a DIMACS road network: tiny frontiers, many levels.
pub fn grid2d(rows: usize, cols: usize) -> Csr {
    let n = rows * cols;
    let mut b = CsrBuilder::new(n).with_edge_capacity(4 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as VertexId;
            if c + 1 < cols {
                b.add_undirected_edge(v, v + 1);
            }
            if r + 1 < rows {
                b.add_undirected_edge(v, v + cols as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::reference_bfs;

    #[test]
    fn grid_shape() {
        let g = grid2d(4, 5);
        assert_eq!(g.num_vertices(), 20);
        // 4*(5-1) horizontal + 5*(4-1) vertical undirected edges, stored
        // in both directions.
        assert_eq!(g.num_edges(), 2 * (4 * 4 + 5 * 3));
        assert!(g.is_symmetric());
        // Interior vertex has 4 neighbors, corner has 2.
        assert_eq!(g.out_degree(6), 4);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = grid2d(7, 9);
        let d = reference_bfs(&g, 0);
        assert_eq!(d[g.num_vertices() - 1], (7 + 9 - 2) as u8);
    }

    #[test]
    fn degenerate_grids() {
        // A 1×n grid is a path.
        let g = grid2d(1, 6);
        assert_eq!(g.num_edges(), 10);
        let d = reference_bfs(&g, 0);
        assert_eq!(d[5], 5);
        // Empty grid builds.
        assert_eq!(grid2d(0, 7).num_vertices(), 0);
    }
}
