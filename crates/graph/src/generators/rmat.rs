//! R-MAT / Graph 500 Kronecker generator (Chakrabarti et al., SDM'04).

use crate::{Csr, CsrBuilder, VertexId};
use ibfs_util::Rng;

/// R-MAT quadrant probabilities. `d` is implied as `1 - a - b - c`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (both halves low).
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Per-level multiplicative noise applied to `a` to avoid exact
    /// self-similarity, as the Graph 500 reference generator does.
    pub noise: f64,
}

impl RmatParams {
    /// The Graph 500 default `(0.57, 0.19, 0.19)` used for KG0/KG1/KG2.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.05,
        }
    }

    /// The DIMACS RM parameterization `(0.45, 0.15, 0.15)` from the paper.
    pub fn dimacs_rm() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.15,
            c: 0.15,
            noise: 0.05,
        }
    }

    fn validate(&self) {
        let d = 1.0 - self.a - self.b - self.c;
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && d >= -1e-9,
            "R-MAT probabilities must be non-negative and sum to <= 1"
        );
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and
/// `edge_factor * 2^scale` undirected edges (stored as both directions),
/// deduplicated, deterministic in `seed`.
///
/// Vertex ids are randomly permuted after generation, as Graph 500 requires,
/// so vertex id carries no degree information.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Csr {
    params.validate();
    assert!(scale < 31, "scale too large for u32 vertex ids");
    let n: usize = 1 << scale;
    let m = edge_factor * n;
    let mut rng = Rng::seed_from_u64(seed);

    // Random vertex relabeling.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }

    let mut b = CsrBuilder::new(n).with_edge_capacity(2 * m);
    for _ in 0..m {
        let (u, v) = sample_edge(scale, &params, &mut rng);
        let (u, v) = (perm[u as usize], perm[v as usize]);
        b.add_undirected_edge(u, v);
    }
    b.build()
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut Rng) -> (VertexId, VertexId) {
    let mut u: VertexId = 0;
    let mut v: VertexId = 0;
    for _ in 0..scale {
        // Per-level noise keeps the degree distribution heavy-tailed without
        // the artificial "staircase" of noiseless R-MAT.
        let jitter = 1.0 + p.noise * (rng.gen::<f64>() * 2.0 - 1.0);
        let a = (p.a * jitter).clamp(0.0, 1.0);
        let rest = 1.0 - p.a;
        let scale_rest = if rest > 0.0 { (1.0 - a) / rest } else { 0.0 };
        let b = p.b * scale_rest;
        let c = p.c * scale_rest;
        let r: f64 = rng.gen();
        u <<= 1;
        v <<= 1;
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= 1;
        } else if r < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let g1 = rmat(8, 8, RmatParams::graph500(), 42);
        let g2 = rmat(8, 8, RmatParams::graph500(), 42);
        assert_eq!(g1, g2);
        let g3 = rmat(8, 8, RmatParams::graph500(), 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn has_requested_shape() {
        let g = rmat(10, 16, RmatParams::graph500(), 1);
        assert_eq!(g.num_vertices(), 1024);
        // Dedup removes some of the 2 * 16 * 1024 directed edges but the
        // bulk should remain.
        assert!(g.num_edges() > 16 * 1024);
        assert!(g.num_edges() <= 2 * 16 * 1024);
        assert!(g.is_symmetric());
    }

    #[test]
    fn graph500_params_are_skewed() {
        // Power-law check: max degree far above average.
        let g = rmat(11, 16, RmatParams::graph500(), 7);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 8.0 * g.avg_degree(),
            "expected a hub: max {max_deg} avg {}",
            g.avg_degree()
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_bad_probabilities() {
        rmat(
            4,
            4,
            RmatParams {
                a: 0.9,
                b: 0.2,
                c: 0.2,
                noise: 0.0,
            },
            0,
        );
    }
}
