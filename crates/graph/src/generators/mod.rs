//! Synthetic graph generators.
//!
//! The paper draws five of its thirteen benchmarks from generators — KG0,
//! KG1, KG2 from the Graph 500 Kronecker generator with
//! `(A, B, C) = (0.57, 0.19, 0.19)`, RM from the same R-MAT theory with
//! `(0.45, 0.15, 0.15)`, and RD from a uniform-outdegree random generator —
//! and the remaining eight are real-world crawls we stand in for with
//! power-law Chung–Lu graphs matching each crawl's size and density (see
//! DESIGN.md §2 for the substitution argument).

mod chunglu;
mod hub;
mod mesh;
mod rmat;
mod uniform;

pub use chunglu::{chung_lu, powerlaw_weights};
pub use hub::hub_heavy;
pub use mesh::grid2d;
pub use rmat::{rmat, RmatParams};
pub use uniform::uniform_random;
