//! The paper's 13-graph benchmark suite at laptop scale, plus the Figure 1
//! example graph used throughout the paper (and throughout our tests).
//!
//! The paper evaluates FB, FR, HW, KG0, KG1, KG2, LJ, OR, PK, RD, RM, TW and
//! WK (Figure 14), with up to 16.7M vertices and 1B edges. We keep the same
//! names, the same *kinds* of graphs (Graph 500 Kronecker for KG*, DIMACS
//! R-MAT for RM, uniform random for RD, power-law social networks for the
//! crawls) and the same relative densities, scaled down ~1000× so the whole
//! suite runs on one machine. Every graph is deterministic in its name.

use crate::generators::{chung_lu, powerlaw_weights, rmat, uniform_random, RmatParams};
use crate::{Csr, CsrBuilder, VertexId};

/// How a suite graph is generated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphKind {
    /// Graph 500 Kronecker, `(A,B,C) = (0.57, 0.19, 0.19)`.
    Kronecker {
        /// log2 of the vertex count.
        scale: u32,
        /// Undirected edges per vertex.
        edge_factor: usize,
    },
    /// DIMACS R-MAT, `(A,B,C) = (0.45, 0.15, 0.15)`.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Undirected edges per vertex.
        edge_factor: usize,
    },
    /// Uniform-outdegree random graph (the RD benchmark).
    Uniform {
        /// Vertex count.
        n: usize,
        /// Undirected edges initiated per vertex.
        degree: usize,
    },
    /// Chung–Lu power-law graph standing in for a real-world crawl.
    PowerLaw {
        /// Vertex count.
        n: usize,
        /// Target average undirected degree.
        avg_degree: f64,
        /// Power-law exponent (2.0–2.5 for social networks).
        gamma: f64,
    },
}

/// A named suite graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphSpec {
    /// The paper's two-letter benchmark name.
    pub name: &'static str,
    /// Generator and parameters.
    pub kind: GraphKind,
    /// Generation seed (fixed per graph for reproducibility).
    pub seed: u64,
}

impl GraphSpec {
    /// Generates the graph. Deterministic.
    pub fn generate(&self) -> Csr {
        match self.kind {
            GraphKind::Kronecker { scale, edge_factor } => {
                rmat(scale, edge_factor, RmatParams::graph500(), self.seed)
            }
            GraphKind::Rmat { scale, edge_factor } => {
                rmat(scale, edge_factor, RmatParams::dimacs_rm(), self.seed)
            }
            GraphKind::Uniform { n, degree } => uniform_random(n, degree, self.seed),
            GraphKind::PowerLaw { n, avg_degree, gamma } => {
                let w = powerlaw_weights(n, avg_degree, gamma);
                chung_lu(&w, self.seed)
            }
        }
    }

    /// Generates a smaller version (vertex count divided by `2^shrink`),
    /// used by fast tests.
    pub fn generate_scaled(&self, shrink: u32) -> Csr {
        let spec = GraphSpec {
            kind: match self.kind {
                GraphKind::Kronecker { scale, edge_factor } => GraphKind::Kronecker {
                    scale: scale.saturating_sub(shrink).max(6),
                    edge_factor,
                },
                GraphKind::Rmat { scale, edge_factor } => GraphKind::Rmat {
                    scale: scale.saturating_sub(shrink).max(6),
                    edge_factor,
                },
                GraphKind::Uniform { n, degree } => GraphKind::Uniform {
                    n: (n >> shrink).max(64),
                    degree,
                },
                GraphKind::PowerLaw { n, avg_degree, gamma } => GraphKind::PowerLaw {
                    n: (n >> shrink).max(64),
                    avg_degree,
                    gamma,
                },
            },
            ..*self
        };
        spec.generate()
    }
}

/// The full 13-graph suite in the paper's alphabetical order.
pub fn suite() -> Vec<GraphSpec> {
    vec![
        // Facebook: 16.7M vertices, 421M edges → avg degree ~25.
        spec("FB", GraphKind::PowerLaw { n: 1 << 14, avg_degree: 25.0, gamma: 2.2 }),
        // Friendster: 16.7M vertices, 439M edges.
        spec("FR", GraphKind::PowerLaw { n: 1 << 14, avg_degree: 26.0, gamma: 2.4 }),
        // Hollywood collaboration: dense, very skewed.
        spec("HW", GraphKind::PowerLaw { n: 1 << 13, avg_degree: 50.0, gamma: 2.1 }),
        // KG0: the high-average-outdegree Kronecker graph (paper: deg 1024).
        spec("KG0", GraphKind::Kronecker { scale: 12, edge_factor: 64 }),
        // KG1: 8.4M vertices, 604M edges (paper: deg 72).
        spec("KG1", GraphKind::Kronecker { scale: 13, edge_factor: 36 }),
        // KG2: the biggest graph (paper: 16.7M vertices, 1.07B edges).
        spec("KG2", GraphKind::Kronecker { scale: 14, edge_factor: 32 }),
        // LiveJournal: 4.8M vertices, 138M edges.
        spec("LJ", GraphKind::PowerLaw { n: 1 << 13, avg_degree: 28.0, gamma: 2.3 }),
        // Orkut: 3.1M vertices, avg outdegree 75.27.
        spec("OR", GraphKind::PowerLaw { n: 1 << 13, avg_degree: 75.0, gamma: 2.2 }),
        // Pokec: the smallest graph, 1.6M vertices, 30.6M edges.
        spec("PK", GraphKind::PowerLaw { n: 1 << 12, avg_degree: 19.0, gamma: 2.3 }),
        // RD: uniform-outdegree random, 11.8M vertices, 189M edges (deg 16).
        spec("RD", GraphKind::Uniform { n: 1 << 14, degree: 8 }),
        // RM: DIMACS R-MAT, 2.1M vertices, 268M edges (deg 128).
        spec("RM", GraphKind::Rmat { scale: 13, edge_factor: 64 }),
        // Twitter: 16.7M vertices, 196M deduplicated follower edges.
        spec("TW", GraphKind::PowerLaw { n: 1 << 14, avg_degree: 12.0, gamma: 2.0 }),
        // Wikipedia links: 3.6M vertices, 45M edges.
        spec("WK", GraphKind::PowerLaw { n: 1 << 13, avg_degree: 13.0, gamma: 2.2 }),
    ]
}

/// The suite graphs used in the paper's CPU/GPU comparison (Figure 22).
pub fn comparison_suite() -> Vec<GraphSpec> {
    suite()
        .into_iter()
        .filter(|s| matches!(s.name, "FB" | "HW" | "KG0" | "LJ" | "OR" | "TW"))
        .collect()
}

/// The suite graphs used in the paper's scalability test (Figure 17).
pub fn scalability_suite() -> Vec<GraphSpec> {
    suite()
        .into_iter()
        .filter(|s| matches!(s.name, "RD" | "FB" | "OR" | "TW" | "RM"))
        .collect()
}

/// Looks up a suite graph by its paper name (case-insensitive).
pub fn by_name(name: &str) -> Option<GraphSpec> {
    suite()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

fn spec(name: &'static str, kind: GraphKind) -> GraphSpec {
    // Seed derived from the name so each benchmark is independent but fixed.
    let seed = name.bytes().fold(0xB5_u64, |h, b| {
        h.wrapping_mul(0x100000001b3).wrapping_add(b as u64)
    });
    GraphSpec { name, kind, seed }
}

/// The 9-vertex example graph of Figure 1 (undirected, stored as both
/// directions). Source vertices 0, 3, 6 and 8 reproduce the paper's BFS-0
/// through BFS-3.
pub fn figure1() -> Csr {
    let und = [
        (0u32, 1u32),
        (0, 4),
        (1, 2),
        (1, 3),
        (1, 4),
        (2, 3),
        (2, 5),
        (3, 5),
        (3, 6),
        (4, 5),
        (5, 7),
        (5, 8),
        (6, 7),
        (7, 8),
    ];
    let mut b = CsrBuilder::new(9);
    for &(u, v) in &und {
        b.add_undirected_edge(u, v);
    }
    b.build()
}

/// The four source vertices of the paper's Figure 1 example.
pub const FIGURE1_SOURCES: [VertexId; 4] = [0, 3, 6, 8];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;

    #[test]
    fn suite_has_thirteen_named_graphs() {
        let s = suite();
        assert_eq!(s.len(), 13);
        let names: Vec<&str> = s.iter().map(|g| g.name).collect();
        assert_eq!(
            names,
            ["FB", "FR", "HW", "KG0", "KG1", "KG2", "LJ", "OR", "PK", "RD", "RM", "TW", "WK"]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let s = by_name("PK").unwrap();
        assert_eq!(s.generate(), s.generate());
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("kg0").unwrap().name, "KG0");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn comparison_and_scalability_subsets() {
        assert_eq!(comparison_suite().len(), 6);
        assert_eq!(scalability_suite().len(), 5);
    }

    #[test]
    fn kg2_is_biggest_kronecker() {
        // Mirror of the paper: KG2 has both the biggest vertex and edge
        // count of the Kronecker graphs.
        let kg0 = by_name("KG0").unwrap().generate_scaled(2);
        let kg2 = by_name("KG2").unwrap().generate_scaled(2);
        assert!(kg2.num_vertices() > kg0.num_vertices());
    }

    #[test]
    fn rd_is_uniform_others_skewed() {
        let rd = by_name("RD").unwrap().generate_scaled(3);
        let tw = by_name("TW").unwrap().generate_scaled(3);
        let rd_stats = DegreeStats::of(&rd);
        let tw_stats = DegreeStats::of(&tw);
        assert!(rd_stats.stddev / rd_stats.avg < 0.5);
        assert!(tw_stats.stddev / tw_stats.avg > 1.0);
    }

    #[test]
    fn figure1_matches_paper() {
        let g = figure1();
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 28);
        assert!(g.is_symmetric());
        // Vertex 5 is the high-degree vertex in the example.
        assert_eq!(g.out_degree(5), 5);
    }
}
