//! Plain edge-list representation and text parsing.
//!
//! Several of the paper's inputs ship as whitespace-separated edge lists
//! (SNAP, DIMACS); this module parses that format and converts to CSR
//! "while preserving the edge sequence" as the paper describes.

use crate::{Csr, CsrBuilder, VertexId};
use ibfs_util::json_struct;

/// A list of directed edges plus a vertex count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (ids in `edges` are `< num_vertices`).
    pub num_vertices: usize,
    /// Directed edges in input order.
    pub edges: Vec<(VertexId, VertexId)>,
}

json_struct!(EdgeList { num_vertices, edges });

/// Error parsing a text edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not contain exactly two integer tokens.
    Malformed { line: usize },
    /// An endpoint failed to parse as an integer.
    BadVertex { line: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line } => write!(f, "line {line}: expected `src dst`"),
            ParseError::BadVertex { line } => write!(f, "line {line}: bad vertex id"),
        }
    }
}

impl std::error::Error for ParseError {}

impl EdgeList {
    /// Parses a SNAP-style text edge list: one `src dst` pair per line,
    /// `#`-prefixed comment lines and blank lines ignored. The vertex count
    /// is `max id + 1`.
    pub fn parse(text: &str) -> Result<EdgeList, ParseError> {
        let mut edges = Vec::new();
        let mut max_id: u64 = 0;
        let mut any = false;
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (a, b) = match (it.next(), it.next(), it.next()) {
                (Some(a), Some(b), None) => (a, b),
                _ => return Err(ParseError::Malformed { line: idx + 1 }),
            };
            let u: VertexId = a
                .parse()
                .map_err(|_| ParseError::BadVertex { line: idx + 1 })?;
            let v: VertexId = b
                .parse()
                .map_err(|_| ParseError::BadVertex { line: idx + 1 })?;
            max_id = max_id.max(u as u64).max(v as u64);
            any = true;
            edges.push((u, v));
        }
        Ok(EdgeList {
            num_vertices: if any { max_id as usize + 1 } else { 0 },
            edges,
        })
    }

    /// Renders the list back to SNAP text form.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.edges.len() * 12);
        for &(u, v) in &self.edges {
            s.push_str(&format!("{u} {v}\n"));
        }
        s
    }

    /// Converts to CSR (deduplicating).
    pub fn to_csr(&self) -> Csr {
        let mut b = CsrBuilder::new(self.num_vertices).with_edge_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Converts to CSR treating each edge as undirected.
    pub fn to_csr_undirected(&self) -> Csr {
        let mut b = CsrBuilder::new(self.num_vertices).with_edge_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            b.add_undirected_edge(u, v);
        }
        b.build()
    }
}

impl From<&Csr> for EdgeList {
    fn from(g: &Csr) -> Self {
        EdgeList {
            num_vertices: g.num_vertices(),
            edges: g.edges().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "# comment\n0 1\n\n1 2\n2 0\n";
        let el = EdgeList::parse(text).unwrap();
        assert_eq!(el.num_vertices, 3);
        assert_eq!(el.edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_empty_is_empty_graph() {
        let el = EdgeList::parse("# only comments\n").unwrap();
        assert_eq!(el.num_vertices, 0);
        assert!(el.edges.is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(
            EdgeList::parse("0 1 2\n"),
            Err(ParseError::Malformed { line: 1 })
        );
        assert_eq!(EdgeList::parse("0\n"), Err(ParseError::Malformed { line: 1 }));
        assert_eq!(
            EdgeList::parse("0 1\nx y\n"),
            Err(ParseError::BadVertex { line: 2 })
        );
    }

    #[test]
    fn round_trips_through_text() {
        let el = EdgeList {
            num_vertices: 4,
            edges: vec![(0, 3), (3, 1), (1, 0)],
        };
        let back = EdgeList::parse(&el.to_text()).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn csr_conversion_round_trip() {
        let el = EdgeList::parse("0 1\n1 2\n2 0\n0 2\n").unwrap();
        let g = el.to_csr();
        assert_eq!(g.num_edges(), 4);
        let back = EdgeList::from(&g);
        assert_eq!(back.to_csr(), g);
    }

    #[test]
    fn undirected_conversion_symmetrizes() {
        let el = EdgeList::parse("0 1\n1 2\n").unwrap();
        assert!(el.to_csr_undirected().is_symmetric());
    }
}
