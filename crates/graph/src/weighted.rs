//! Weighted graphs: CSR with per-edge weights.
//!
//! The paper situates iBFS among shortest-path algorithms (§9: Dijkstra,
//! Bellman-Ford, Floyd-Warshall) and notes its implementation "can be
//! easily configured to ... traverse weighted graphs". [`WeightedCsr`]
//! carries a weight per directed edge, parallel to the adjacency array, so
//! the concurrent-SSSP engine can stream `(neighbor, weight)` pairs with
//! the same coalescing behaviour as unweighted adjacency.

use crate::{Csr, VertexId};
use ibfs_util::Rng;

/// Edge weight. Non-negative; `u32` matches the common SSSP benchmarks.
pub type Weight = u32;

/// Distance accumulator (large enough for |V| × max weight).
pub type Dist = u64;

/// Sentinel for unreachable vertices.
pub const DIST_UNREACHED: Dist = Dist::MAX;

/// A weighted directed graph: a [`Csr`] plus one weight per edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedCsr {
    csr: Csr,
    weights: Vec<Weight>,
}

impl WeightedCsr {
    /// Pairs a CSR with per-edge weights (parallel to its adjacency array).
    ///
    /// # Panics
    /// Panics if the weight count differs from the edge count.
    pub fn new(csr: Csr, weights: Vec<Weight>) -> Self {
        assert_eq!(
            csr.num_edges(),
            weights.len(),
            "one weight per directed edge"
        );
        WeightedCsr { csr, weights }
    }

    /// Assigns uniform random weights in `1..=max_weight` to an existing
    /// graph, *symmetrically*: the weight of `(u, v)` equals the weight of
    /// `(v, u)` when both directions exist (undirected semantics).
    /// Deterministic in `seed`.
    pub fn random_weights(csr: Csr, max_weight: Weight, seed: u64) -> Self {
        assert!(max_weight >= 1);
        let mut rng = Rng::seed_from_u64(seed);
        let mut weights = vec![0 as Weight; csr.num_edges()];
        let offsets = csr.offsets().to_vec();
        for u in csr.vertices() {
            let lo = offsets[u as usize] as usize;
            for (i, &v) in csr.neighbors(u).iter().enumerate() {
                if weights[lo + i] != 0 {
                    continue;
                }
                let w = rng.gen_range(1..=max_weight);
                weights[lo + i] = w;
                // Mirror onto the reverse edge when present.
                if let Ok(pos) = csr.neighbors(v).binary_search(&u) {
                    let vlo = offsets[v as usize] as usize;
                    if weights[vlo + pos] == 0 {
                        weights[vlo + pos] = w;
                    }
                }
            }
        }
        WeightedCsr { csr, weights }
    }

    /// The underlying unweighted structure.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Neighbors of `v` with their edge weights.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let lo = self.csr.adj_start(v) as usize;
        self.csr
            .neighbors(v)
            .iter()
            .zip(&self.weights[lo..])
            .map(|(&w, &wt)| (w, wt))
    }

    /// All weights, parallel to [`Csr::adjacency`].
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// The transposed weighted graph (weights follow their edges).
    pub fn reverse(&self) -> WeightedCsr {
        let mut b = Vec::with_capacity(self.csr.num_edges());
        for u in self.csr.vertices() {
            for (v, w) in self.neighbors(u) {
                b.push((v, u, w));
            }
        }
        b.sort_unstable();
        let mut offsets = vec![0u64; self.csr.num_vertices() + 1];
        for &(v, _, _) in &b {
            offsets[v as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let adj: Vec<VertexId> = b.iter().map(|&(_, u, _)| u).collect();
        let weights: Vec<Weight> = b.iter().map(|&(_, _, w)| w).collect();
        WeightedCsr {
            csr: Csr::from_parts(offsets, adj),
            weights,
        }
    }
}

/// Reference Dijkstra from `source` (binary heap), for validating the
/// concurrent engine.
pub fn dijkstra(g: &WeightedCsr, source: VertexId) -> Vec<Dist> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.csr().num_vertices();
    let mut dist = vec![DIST_UNREACHED; n];
    if n == 0 {
        return dist;
    }
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0 as Dist, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (w, wt) in g.neighbors(v) {
            let nd = d + wt as Dist;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::figure1;
    use crate::CsrBuilder;

    fn small_weighted() -> WeightedCsr {
        // 0 -1-> 1 -1-> 2, plus a heavy shortcut 0 -5-> 2.
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let csr = b.build();
        // Adjacency sorted: 0: [1, 2], 1: [2].
        WeightedCsr::new(csr, vec![1, 5, 1])
    }

    #[test]
    fn neighbors_pair_weights() {
        let g = small_weighted();
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 1), (2, 5)]);
    }

    #[test]
    fn dijkstra_takes_light_path() {
        let g = small_weighted();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 1, 2]); // via 1, not the weight-5 shortcut
    }

    #[test]
    fn dijkstra_marks_unreachable() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        let g = WeightedCsr::new(b.build(), vec![4]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 4, DIST_UNREACHED]);
    }

    #[test]
    fn random_weights_are_symmetric_and_in_range() {
        let g = WeightedCsr::random_weights(figure1(), 10, 3);
        for u in g.csr().vertices() {
            for (v, w) in g.neighbors(u) {
                assert!((1..=10).contains(&w));
                let back = g.neighbors(v).find(|&(x, _)| x == u).unwrap();
                assert_eq!(back.1, w, "weight of ({u},{v}) must mirror");
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        let g = WeightedCsr::random_weights(figure1(), 1, 0);
        let d = dijkstra(&g, 0);
        let bfs = crate::validate::reference_bfs(g.csr(), 0);
        for v in 0..9 {
            assert_eq!(d[v], bfs[v] as Dist);
        }
    }

    #[test]
    fn reverse_keeps_weights_with_edges() {
        let g = small_weighted();
        let r = g.reverse();
        let into2: Vec<_> = r.neighbors(2).collect();
        assert_eq!(into2, vec![(0, 5), (1, 1)]);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    #[should_panic(expected = "one weight per directed edge")]
    fn rejects_mismatched_weights() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 1);
        WeightedCsr::new(b.build(), vec![]);
    }
}
