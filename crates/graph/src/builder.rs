//! Incremental CSR construction with sorting and deduplication.

use crate::{Csr, VertexId};

/// Builds a [`Csr`] from individually added edges.
///
/// Duplicate edges are removed by default (the paper counts "different
/// edges", e.g. TW's 196M deduplicated follower edges); self-loops are kept
/// unless [`CsrBuilder::drop_self_loops`] is set, matching Graph500 semantics
/// where self-loops are legal and counted by TEPS.
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
    drop_self_loops: bool,
}

impl CsrBuilder {
    /// A builder for a graph with `num_vertices` vertices and no edges yet.
    pub fn new(num_vertices: usize) -> Self {
        CsrBuilder {
            num_vertices,
            edges: Vec::new(),
            dedup: true,
            drop_self_loops: false,
        }
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Keep duplicate edges instead of removing them.
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Remove self-loops during `build`.
    pub fn drop_self_loops(mut self) -> Self {
        self.drop_self_loops = true;
        self
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push((u, v));
    }

    /// Adds both `(u, v)` and `(v, u)` — the suite's treatment of undirected
    /// inputs ("each edge is considered as two directed edges").
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Number of edges added so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the CSR graph.
    pub fn build(mut self) -> Csr {
        if self.drop_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        self.edges.sort_unstable();
        if self.dedup {
            self.edges.dedup();
        }
        let mut offsets = vec![0u64; self.num_vertices + 1];
        for &(u, _) in &self.edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..=self.num_vertices {
            offsets[i] += offsets[i - 1];
        }
        let adj = self.edges.iter().map(|&(_, v)| v).collect();
        Csr::from_parts(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        b.add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn dedups_by_default() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.edge_count(), 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn keep_duplicates_preserves_multiplicity() {
        let mut b = CsrBuilder::new(2).keep_duplicates();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn self_loops_kept_unless_dropped() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.build().num_edges(), 2);

        let mut b = CsrBuilder::new(2).drop_self_loops();
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = CsrBuilder::new(3);
        b.add_undirected_edge(0, 2);
        let g = b.build();
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert!(g.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 2);
    }
}
