//! Work partitioning helpers shared by the CPU engines and the multi-GPU
//! cluster simulation.

/// Splits `0..total` into `parts` contiguous ranges whose lengths differ by
/// at most one. Returns exactly `parts` ranges (some possibly empty when
/// `total < parts`).
pub fn even_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "parts must be positive");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Longest-processing-time-first assignment: greedily gives each item
/// (in descending weight order) to the currently lightest bin. Returns the
/// bin index for each item, preserving the input order of `weights`.
/// This is how the cluster simulation balances BFS groups across devices.
pub fn lpt_assign(weights: &[u64], bins: usize) -> Vec<usize> {
    assert!(bins > 0, "bins must be positive");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut load = vec![0u64; bins];
    let mut assignment = vec![0usize; weights.len()];
    for i in order {
        let bin = (0..bins).min_by_key(|&b| load[b]).unwrap();
        load[bin] += weights[i];
        assignment[i] = bin;
    }
    assignment
}

/// The per-bin total weights implied by an assignment.
pub fn bin_loads(weights: &[u64], assignment: &[usize], bins: usize) -> Vec<u64> {
    let mut load = vec![0u64; bins];
    for (i, &b) in assignment.iter().enumerate() {
        load[b] += weights[i];
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_everything_exactly_once() {
        for total in [0usize, 1, 7, 100] {
            for parts in [1usize, 3, 8] {
                let rs = even_ranges(total, parts);
                assert_eq!(rs.len(), parts);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &rs {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
                let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let max = lens.iter().max().unwrap();
                let min = lens.iter().min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn lpt_balances_better_than_worst_case() {
        let weights = vec![10, 9, 8, 7, 6, 5, 4, 3, 2, 1];
        let a = lpt_assign(&weights, 3);
        let loads = bin_loads(&weights, &a, 3);
        let total: u64 = weights.iter().sum();
        let max = *loads.iter().max().unwrap();
        // LPT guarantees makespan <= 4/3 OPT; OPT >= total/bins = 18.33.
        assert!(max <= 25, "makespan {max}");
        assert_eq!(loads.iter().sum::<u64>(), total);
    }

    #[test]
    fn lpt_single_bin_takes_all() {
        let weights = vec![3, 1, 4];
        let a = lpt_assign(&weights, 1);
        assert_eq!(a, vec![0, 0, 0]);
    }

    #[test]
    fn lpt_more_bins_than_items() {
        let weights = vec![5, 2];
        let a = lpt_assign(&weights, 4);
        let loads = bin_loads(&weights, &a, 4);
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2);
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn even_ranges_rejects_zero_parts() {
        even_ranges(10, 0);
    }
}
