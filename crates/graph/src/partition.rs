//! Work and graph partitioning: contiguous range splitting, LPT bin
//! packing for the multi-GPU cluster simulation, and the 1D owner-per-vertex
//! graph [`Partitioner`] behind the sharded traversal stack.
//!
//! The sharded pieces follow the classic distributed-memory BFS design
//! (Buluç & Madduri, arXiv:1104.4518): every vertex has exactly one owner
//! shard, a shard holds the full out-edge and in-edge lists of its owned
//! vertices (targets keep their *global* ids), and both supported ownership
//! layouts — [`OwnershipLayout::Contiguous`] ranges and
//! [`OwnershipLayout::Hash`] (cyclic) — give O(1) closed-form owner lookup
//! and local↔global id translation, so no ghost tables are needed.

use crate::csr::Csr;
use crate::VertexId;
use ibfs_util::json_enum;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Splits `0..total` into `parts` contiguous ranges whose lengths differ by
/// at most one. Returns exactly `parts` ranges (some possibly empty when
/// `total < parts`). This is the range rule behind
/// [`OwnershipLayout::Contiguous`] vertex ownership.
pub fn even_ranges(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0, "parts must be positive");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Longest-processing-time-first assignment: greedily gives each item
/// (in descending weight order) to the currently lightest bin. Returns the
/// bin index for each item, preserving the input order of `weights`.
/// This is how the cluster simulation balances BFS groups across devices.
///
/// The lightest bin is popped from a min-heap keyed on `(load, bin index)`,
/// so each placement is O(log bins) instead of a rescan of every bin, and
/// ties on load still go to the lowest bin index — the exact assignment the
/// historical linear scan produced.
pub fn lpt_assign(weights: &[u64], bins: usize) -> Vec<usize> {
    assert!(bins > 0, "bins must be positive");
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..bins).map(|b| Reverse((0u64, b))).collect();
    let mut assignment = vec![0usize; weights.len()];
    for i in order {
        let Reverse((load, bin)) = heap.pop().unwrap();
        assignment[i] = bin;
        heap.push(Reverse((load + weights[i], bin)));
    }
    assignment
}

/// The per-bin total weights implied by an assignment.
pub fn bin_loads(weights: &[u64], assignment: &[usize], bins: usize) -> Vec<u64> {
    let mut load = vec![0u64; bins];
    for (i, &b) in assignment.iter().enumerate() {
        load[b] += weights[i];
    }
    load
}

/// How global vertex ids map to owner shards in the 1D partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OwnershipLayout {
    /// Shard `s` owns the `s`-th of [`even_ranges`]`(n, shards)` — vertex
    /// ids stay clustered, which keeps range-local structure (and makes the
    /// one-shard partition trivially byte-identical to the input CSR).
    Contiguous,
    /// Cyclic (modular-hash) ownership: vertex `v` belongs to shard
    /// `v % shards` with local id `v / shards`. Scatters hubs across shards
    /// at the price of destroying locality.
    Hash,
}

json_enum!(OwnershipLayout { Contiguous, Hash });

impl OwnershipLayout {
    /// Both layouts, in a stable order (test matrices iterate this).
    pub fn all() -> [OwnershipLayout; 2] {
        [OwnershipLayout::Contiguous, OwnershipLayout::Hash]
    }
}

/// Owner map of a 1D vertex partition: O(1) owner lookup and local↔global
/// id translation for a fixed `(layout, num_vertices, shards)` triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexOwner {
    layout: OwnershipLayout,
    num_vertices: usize,
    shards: usize,
    /// Contiguous layout: every shard owns `base` vertices, the first
    /// `extra` shards one more.
    base: usize,
    extra: usize,
}

impl VertexOwner {
    /// The owner map for `num_vertices` vertices over `shards` shards.
    pub fn new(layout: OwnershipLayout, num_vertices: usize, shards: usize) -> Self {
        assert!(shards > 0, "shards must be positive");
        VertexOwner {
            layout,
            num_vertices,
            shards,
            base: num_vertices / shards,
            extra: num_vertices % shards,
        }
    }

    /// The layout this map implements.
    pub fn layout(&self) -> OwnershipLayout {
        self.layout
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Number of global vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of vertices shard `shard` owns.
    pub fn num_owned(&self, shard: usize) -> usize {
        debug_assert!(shard < self.shards);
        match self.layout {
            OwnershipLayout::Contiguous => self.base + usize::from(shard < self.extra),
            OwnershipLayout::Hash => (self.num_vertices + self.shards - 1 - shard) / self.shards,
        }
    }

    /// First global id of shard `shard`'s contiguous range.
    fn range_start(&self, shard: usize) -> usize {
        shard * self.base + shard.min(self.extra)
    }

    /// The shard owning global vertex `v`.
    pub fn owner_of(&self, v: VertexId) -> usize {
        let v = v as usize;
        debug_assert!(v < self.num_vertices);
        match self.layout {
            OwnershipLayout::Contiguous => {
                let cut = self.extra * (self.base + 1);
                if v < cut {
                    v / (self.base + 1)
                } else {
                    self.extra + (v - cut) / self.base
                }
            }
            OwnershipLayout::Hash => v % self.shards,
        }
    }

    /// Local id of global vertex `v` within its owner shard.
    pub fn to_local(&self, v: VertexId) -> u32 {
        match self.layout {
            OwnershipLayout::Contiguous => {
                (v as usize - self.range_start(self.owner_of(v))) as u32
            }
            OwnershipLayout::Hash => v / self.shards as u32,
        }
    }

    /// Global id of `(shard, local)`.
    pub fn to_global(&self, shard: usize, local: u32) -> VertexId {
        debug_assert!((local as usize) < self.num_owned(shard));
        match self.layout {
            OwnershipLayout::Contiguous => (self.range_start(shard) + local as usize) as VertexId,
            OwnershipLayout::Hash => local * self.shards as u32 + shard as VertexId,
        }
    }
}

/// One shard's slice of the graph under 1D owner-computes partitioning:
/// the out-edge and in-edge lists of its owned vertices, in local row
/// order, with edge endpoints kept as *global* ids (translation back to
/// owner/local is O(1) via [`VertexOwner`]).
///
/// Keeping each owned vertex's full out-edge list on its owner is what
/// makes the sharded traversal's per-instance traversed-edge total equal
/// the single-device definition (out-degrees of visited vertices) shard by
/// shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardGraph {
    /// This shard's index.
    pub shard: usize,
    out_offsets: Vec<u64>,
    out_adj: Vec<VertexId>,
    in_offsets: Vec<u64>,
    in_adj: Vec<VertexId>,
}

impl ShardGraph {
    /// Number of vertices this shard owns.
    pub fn num_owned(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Out-degree of owned local vertex `local` (its global out-degree).
    pub fn out_degree(&self, local: u32) -> u32 {
        (self.out_offsets[local as usize + 1] - self.out_offsets[local as usize]) as u32
    }

    /// Out-neighbors (global ids) of owned local vertex `local`.
    pub fn out_neighbors(&self, local: u32) -> &[VertexId] {
        let lo = self.out_offsets[local as usize] as usize;
        let hi = self.out_offsets[local as usize + 1] as usize;
        &self.out_adj[lo..hi]
    }

    /// In-neighbors (global ids) of owned local vertex `local`.
    pub fn in_neighbors(&self, local: u32) -> &[VertexId] {
        let lo = self.in_offsets[local as usize] as usize;
        let hi = self.in_offsets[local as usize + 1] as usize;
        &self.in_adj[lo..hi]
    }

    /// Out-edges owned by this shard.
    pub fn num_out_edges(&self) -> usize {
        self.out_adj.len()
    }

    /// In-edges terminating at this shard's owned vertices.
    pub fn num_in_edges(&self) -> usize {
        self.in_adj.len()
    }

    /// Local out-CSR offsets (for byte-identity checks and device upload).
    pub fn out_offsets(&self) -> &[u64] {
        &self.out_offsets
    }

    /// Local out-CSR adjacency, global targets.
    pub fn out_adjacency(&self) -> &[VertexId] {
        &self.out_adj
    }

    /// Bytes of CSR storage this shard holds (both directions).
    pub fn storage_bytes(&self) -> u64 {
        (self.out_offsets.len() + self.in_offsets.len()) as u64 * 8
            + (self.out_adj.len() + self.in_adj.len()) as u64 * 4
    }
}

/// A complete 1D partition: the owner map plus every shard's subgraph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Owner map shared by all shards.
    pub owner: VertexOwner,
    /// Per-shard subgraphs, indexed by shard.
    pub shards: Vec<ShardGraph>,
}

impl Partition {
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Splits a CSR graph into per-shard subgraphs under a 1D owner-per-vertex
/// layout.
#[derive(Clone, Copy, Debug)]
pub struct Partitioner {
    /// Number of shards to produce.
    pub shards: usize,
    /// Vertex ownership layout.
    pub layout: OwnershipLayout,
}

impl Partitioner {
    /// A partitioner for `shards` shards under `layout`.
    pub fn new(shards: usize, layout: OwnershipLayout) -> Self {
        assert!(shards > 0, "shards must be positive");
        Partitioner { shards, layout }
    }

    /// Partitions `graph` (and its reverse) into per-shard subgraphs. Every
    /// directed edge `u → w` lands in exactly one shard's out-CSR (the owner
    /// of `u`) and exactly one shard's in-CSR (the owner of `w`).
    pub fn partition(&self, graph: &Csr, reverse: &Csr) -> Partition {
        assert_eq!(graph.num_vertices(), reverse.num_vertices());
        assert_eq!(graph.num_edges(), reverse.num_edges());
        let owner = VertexOwner::new(self.layout, graph.num_vertices(), self.shards);
        let shards = (0..self.shards)
            .map(|s| {
                let owned = owner.num_owned(s);
                let mut out_offsets = Vec::with_capacity(owned + 1);
                let mut in_offsets = Vec::with_capacity(owned + 1);
                let mut out_adj = Vec::new();
                let mut in_adj = Vec::new();
                out_offsets.push(0);
                in_offsets.push(0);
                for local in 0..owned {
                    let g = owner.to_global(s, local as u32);
                    out_adj.extend_from_slice(graph.neighbors(g));
                    in_adj.extend_from_slice(reverse.neighbors(g));
                    out_offsets.push(out_adj.len() as u64);
                    in_offsets.push(in_adj.len() as u64);
                }
                ShardGraph { shard: s, out_offsets, out_adj, in_offsets, in_adj }
            })
            .collect();
        Partition { owner, shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, uniform_random, RmatParams};
    use ibfs_util::prop::Prop;

    #[test]
    fn even_ranges_cover_everything_exactly_once() {
        for total in [0usize, 1, 7, 100] {
            for parts in [1usize, 3, 8] {
                let rs = even_ranges(total, parts);
                assert_eq!(rs.len(), parts);
                let mut covered = 0;
                let mut expected_start = 0;
                for r in &rs {
                    assert_eq!(r.start, expected_start);
                    expected_start = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
                let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let max = lens.iter().max().unwrap();
                let min = lens.iter().min().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn lpt_balances_better_than_worst_case() {
        let weights = vec![10, 9, 8, 7, 6, 5, 4, 3, 2, 1];
        let a = lpt_assign(&weights, 3);
        let loads = bin_loads(&weights, &a, 3);
        let total: u64 = weights.iter().sum();
        let max = *loads.iter().max().unwrap();
        // LPT guarantees makespan <= 4/3 OPT; OPT >= total/bins = 18.33.
        assert!(max <= 25, "makespan {max}");
        assert_eq!(loads.iter().sum::<u64>(), total);
    }

    #[test]
    fn lpt_single_bin_takes_all() {
        let weights = vec![3, 1, 4];
        let a = lpt_assign(&weights, 1);
        assert_eq!(a, vec![0, 0, 0]);
    }

    #[test]
    fn lpt_more_bins_than_items() {
        let weights = vec![5, 2];
        let a = lpt_assign(&weights, 4);
        let loads = bin_loads(&weights, &a, 4);
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2);
    }

    /// Reference implementation of the historical linear-scan LPT, kept to
    /// pin the heap version to the exact same assignments (lowest bin index
    /// wins load ties).
    fn lpt_assign_scan(weights: &[u64], bins: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(weights[i]));
        let mut load = vec![0u64; bins];
        let mut assignment = vec![0usize; weights.len()];
        for i in order {
            let bin = (0..bins).min_by_key(|&b| load[b]).unwrap();
            load[bin] += weights[i];
            assignment[i] = bin;
        }
        assignment
    }

    #[test]
    fn lpt_heap_matches_linear_scan_tie_breaks() {
        Prop::new("lpt_heap_matches_linear_scan").cases(128).run(|rng| {
            let n = rng.gen_range(0..40u64) as usize;
            let bins = rng.gen_range(1..9u64) as usize;
            // Small weight range forces frequent load ties.
            let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(0..4u64)).collect();
            assert_eq!(lpt_assign(&weights, bins), lpt_assign_scan(&weights, bins));
        });
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn even_ranges_rejects_zero_parts() {
        even_ranges(10, 0);
    }

    #[test]
    fn owner_map_round_trips_both_layouts() {
        for layout in OwnershipLayout::all() {
            for (n, shards) in [(0usize, 3usize), (1, 1), (5, 8), (97, 4), (256, 7)] {
                let owner = VertexOwner::new(layout, n, shards);
                let mut owned_seen = vec![0usize; shards];
                for v in 0..n as VertexId {
                    let s = owner.owner_of(v);
                    let l = owner.to_local(v);
                    assert_eq!(owner.to_global(s, l), v, "{layout:?} n={n} shards={shards}");
                    owned_seen[s] += 1;
                }
                for s in 0..shards {
                    assert_eq!(owned_seen[s], owner.num_owned(s));
                }
                assert_eq!((0..shards).map(|s| owner.num_owned(s)).sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn contiguous_layout_matches_even_ranges() {
        let owner = VertexOwner::new(OwnershipLayout::Contiguous, 101, 4);
        for (s, r) in even_ranges(101, 4).into_iter().enumerate() {
            assert_eq!(owner.num_owned(s), r.len());
            for v in r {
                assert_eq!(owner.owner_of(v as VertexId), s);
            }
        }
    }

    #[test]
    fn every_edge_lands_in_exactly_one_shard() {
        Prop::new("partition_covers_every_edge_exactly_once").cases(24).run(|rng| {
            let scale = rng.gen_range(4..8u64) as u32;
            let g = rmat(scale, 8, RmatParams::graph500(), rng.gen_range(0..1000u64));
            let r = g.reverse();
            let shards = rng.gen_range(1..9u64) as usize;
            let layout = OwnershipLayout::all()[rng.gen_range(0..2u64) as usize];
            let p = Partitioner::new(shards, layout).partition(&g, &r);

            // Collect every out-edge from every shard, translated to global.
            let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
            for sg in &p.shards {
                assert_eq!(sg.num_owned(), p.owner.num_owned(sg.shard));
                for local in 0..sg.num_owned() as u32 {
                    let u = p.owner.to_global(sg.shard, local);
                    assert_eq!(sg.out_degree(local) as usize, g.out_degree(u) as usize);
                    for &w in sg.out_neighbors(local) {
                        edges.push((u, w));
                    }
                }
            }
            let mut want: Vec<(VertexId, VertexId)> = g.edges().collect();
            edges.sort_unstable();
            want.sort_unstable();
            assert_eq!(edges, want, "shards={shards} layout={layout:?}");

            // And in-edges partition the reverse graph the same way.
            let total_in: usize = p.shards.iter().map(|sg| sg.num_in_edges()).sum();
            assert_eq!(total_in, g.num_edges());
        });
    }

    #[test]
    fn local_global_translation_round_trips_through_partition() {
        Prop::new("partition_translation_round_trips").cases(24).run(|rng| {
            let n = rng.gen_range(1..400u64) as usize;
            let g = uniform_random(n.max(2), 4, rng.gen_range(0..1000u64));
            let r = g.reverse();
            let shards = rng.gen_range(1..9u64) as usize;
            let layout = OwnershipLayout::all()[rng.gen_range(0..2u64) as usize];
            let p = Partitioner::new(shards, layout).partition(&g, &r);
            for v in 0..g.num_vertices() as VertexId {
                let s = p.owner.owner_of(v);
                let l = p.owner.to_local(v);
                assert!(s < shards);
                assert!((l as usize) < p.shards[s].num_owned());
                assert_eq!(p.owner.to_global(s, l), v);
            }
        });
    }

    #[test]
    fn single_shard_is_byte_identical_to_unpartitioned_csr() {
        for layout in OwnershipLayout::all() {
            let g = rmat(8, 8, RmatParams::graph500(), 77);
            let r = g.reverse();
            let p = Partitioner::new(1, layout).partition(&g, &r);
            assert_eq!(p.num_shards(), 1);
            let sg = &p.shards[0];
            // With one shard local ids equal global ids under both layouts,
            // so the shard's out-CSR is the input CSR, byte for byte.
            assert_eq!(sg.out_offsets(), g.offsets());
            assert_eq!(sg.out_adjacency(), g.adjacency());
            assert_eq!(sg.num_owned(), g.num_vertices());
        }
    }

    #[test]
    fn shard_storage_accounts_both_directions() {
        let g = rmat(6, 4, RmatParams::graph500(), 5);
        let r = g.reverse();
        let p = Partitioner::new(2, OwnershipLayout::Contiguous).partition(&g, &r);
        for sg in &p.shards {
            assert_eq!(
                sg.storage_bytes(),
                (sg.num_owned() as u64 + 1) * 16
                    + sg.num_out_edges() as u64 * 4
                    + sg.num_in_edges() as u64 * 4
            );
        }
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn partitioner_rejects_zero_shards() {
        Partitioner::new(0, OwnershipLayout::Contiguous);
    }
}
