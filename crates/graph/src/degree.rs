//! Out-degree statistics and hub discovery.
//!
//! The GroupBy rules of §5.2 are driven entirely by out-degrees: Rule 1
//! thresholds source out-degree at `p`, Rule 2 asks for a shared neighbor
//! with out-degree above `q`. This module provides the degree summaries and
//! hub lists those rules and the Figure 14 table need.

use crate::{Csr, VertexId};

/// Summary statistics of a graph's out-degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub avg: f64,
    /// Population standard deviation of out-degree.
    pub stddev: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `g`.
    pub fn of(g: &Csr) -> DegreeStats {
        let n = g.num_vertices();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                avg: 0.0,
                stddev: 0.0,
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0u64;
        let mut sum_sq = 0u128;
        for v in g.vertices() {
            let d = g.out_degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += d as u64;
            sum_sq += (d as u128) * (d as u128);
        }
        let avg = sum as f64 / n as f64;
        let var = (sum_sq as f64 / n as f64) - avg * avg;
        DegreeStats {
            min,
            max,
            avg,
            stddev: var.max(0.0).sqrt(),
        }
    }
}

/// Histogram of out-degrees bucketed by powers of two: bucket `i` counts
/// vertices with out-degree in `[2^i, 2^(i+1))`; bucket 0 also holds degree-0
/// and degree-1 vertices.
pub fn log2_degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.vertices() {
        let d = g.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// All vertices with out-degree strictly greater than `q`, sorted by
/// descending degree — the "high-outdegree vertices" of GroupBy Rule 2.
pub fn hubs(g: &Csr, q: usize) -> Vec<VertexId> {
    let mut hs: Vec<VertexId> = g.vertices().filter(|&v| g.out_degree(v) > q).collect();
    hs.sort_unstable_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    hs
}

/// The `k` highest-out-degree vertices.
pub fn top_k_by_degree(g: &Csr, k: usize) -> Vec<VertexId> {
    let mut all: Vec<VertexId> = g.vertices().collect();
    all.sort_unstable_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrBuilder;

    fn star(n: usize) -> Csr {
        // Vertex 0 is a hub connected to all others.
        let mut b = CsrBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_undirected_edge(0, v);
        }
        b.build()
    }

    #[test]
    fn stats_on_star() {
        let g = star(9);
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 8);
        assert!((s.avg - 16.0 / 9.0).abs() < 1e-12);
        assert!(s.stddev > 2.0);
    }

    #[test]
    fn stats_on_empty() {
        let g = CsrBuilder::new(0).build();
        let s = DegreeStats::of(&g);
        assert_eq!(s, DegreeStats { min: 0, max: 0, avg: 0.0, stddev: 0.0 });
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let g = star(9);
        let h = log2_degree_histogram(&g);
        // Eight leaves with degree 1 (bucket 0), one hub with degree 8
        // (bucket 3).
        assert_eq!(h[0], 8);
        assert_eq!(h[3], 1);
        assert_eq!(h.iter().sum::<usize>(), 9);
    }

    #[test]
    fn hubs_finds_high_degree_vertices() {
        let g = star(9);
        assert_eq!(hubs(&g, 4), vec![0]);
        assert!(hubs(&g, 8).is_empty());
        assert_eq!(hubs(&g, 0).len(), 9);
    }

    #[test]
    fn top_k_sorted_by_degree() {
        let g = star(9);
        let top = top_k_by_degree(&g, 2);
        assert_eq!(top[0], 0);
        assert_eq!(top.len(), 2);
    }
}
