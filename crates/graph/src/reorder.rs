//! Vertex reordering for cache locality.
//!
//! Every engine in the repo walks the CSR in whatever vertex order the
//! generator happened to emit, so top-down expansion and the bottom-up
//! unfinished sweep chase pointers across the whole adjacency array.
//! Relabeling the graph once — hubs packed together, or neighborhoods laid
//! out contiguously — turns those scattered reads into near-sequential
//! ones without touching the traversal code at all: BFS depths are a
//! property of the graph, not of its labeling, so a service can relabel at
//! build time, run every group in permuted space, and map depths back out
//! bit-identically (see `ibfs::cpu::CpuOptions::reorder` and
//! `tests/reorder_differential.rs`).
//!
//! Three orderings, one per locality hypothesis:
//!
//! * [`ReorderKind::DegreeDesc`] — degree-descending. The high-traffic
//!   rows (touched by almost every frontier) land in one dense prefix of
//!   the status arrays and the adjacency array.
//! * [`ReorderKind::HubCluster`] — hubs first, each followed by its
//!   still-unplaced neighborhood. A hub's expansion then writes a mostly
//!   contiguous span of status words instead of a scatter.
//! * [`ReorderKind::Rcm`] — reverse Cuthill–McKee from a seeded
//!   pseudo-peripheral root: BFS order with ascending-degree tie-breaks,
//!   reversed. The classic bandwidth reducer; neighbors end up with nearby
//!   ids, which is the best case for the bottom-up sweep's `rev` walks.
//!
//! All three are deterministic: ties break on vertex id, and the RCM root
//! search derives its probes from a caller-supplied seed.

use crate::{Csr, VertexId};
use ibfs_util::Rng;

/// Which vertex ordering a service applies at build time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReorderKind {
    /// Keep the generator's labeling (no permutation is built at all).
    #[default]
    None,
    /// Degree-descending: hubs first.
    DegreeDesc,
    /// Hubs first, each followed by its unplaced neighborhood.
    HubCluster,
    /// Reverse Cuthill–McKee from a seeded pseudo-peripheral root.
    Rcm,
}

impl ReorderKind {
    /// Stable lowercase name, used by the CLI and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            ReorderKind::None => "none",
            ReorderKind::DegreeDesc => "degree",
            ReorderKind::HubCluster => "hub",
            ReorderKind::Rcm => "rcm",
        }
    }

    /// Parses a [`ReorderKind::name`] string.
    pub fn parse(s: &str) -> Option<ReorderKind> {
        ReorderKind::all().into_iter().find(|k| k.name() == s)
    }

    /// Every kind, in CLI help order.
    pub fn all() -> [ReorderKind; 4] {
        [
            ReorderKind::None,
            ReorderKind::DegreeDesc,
            ReorderKind::HubCluster,
            ReorderKind::Rcm,
        ]
    }
}

impl std::fmt::Display for ReorderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A vertex permutation and its inverse.
///
/// `perm[old] = new` maps generator ids into the relabeled space;
/// `inv[new] = old` maps back. Both directions are stored because the hot
/// paths need both: sources map in through `perm`, depths map out through
/// it, and the CSR relabel walks `inv` to emit rows in new-id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPerm {
    perm: Vec<VertexId>,
    inv: Vec<VertexId>,
}

impl VertexPerm {
    /// Builds from the new-id → old-id order (a permutation of `0..n`).
    ///
    /// # Panics
    /// Panics if `order` is not a permutation.
    fn from_new_order(order: Vec<VertexId>) -> VertexPerm {
        let n = order.len();
        let mut perm = vec![VertexId::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            assert!(
                (old as usize) < n && perm[old as usize] == VertexId::MAX,
                "order is not a permutation"
            );
            perm[old as usize] = new as VertexId;
        }
        VertexPerm { perm, inv: order }
    }

    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> VertexPerm {
        let order: Vec<VertexId> = (0..n as VertexId).collect();
        VertexPerm { perm: order.clone(), inv: order }
    }

    /// Builds the permutation for `kind` (`None` yields `None`: the caller
    /// should keep the original graph rather than pay an identity relabel).
    pub fn build(kind: ReorderKind, csr: &Csr, seed: u64) -> Option<VertexPerm> {
        match kind {
            ReorderKind::None => None,
            ReorderKind::DegreeDesc => Some(VertexPerm::degree_descending(csr)),
            ReorderKind::HubCluster => Some(VertexPerm::hub_cluster(csr)),
            ReorderKind::Rcm => Some(VertexPerm::rcm(csr, seed)),
        }
    }

    /// Degree-descending order, ties broken by ascending old id.
    pub fn degree_descending(csr: &Csr) -> VertexPerm {
        let mut order: Vec<VertexId> = csr.vertices().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(csr.out_degree(v)), v));
        VertexPerm::from_new_order(order)
    }

    /// Hub-clustered order: hubs by descending degree, each immediately
    /// followed by its not-yet-placed out-neighbors; the non-hub remainder
    /// keeps ascending old-id order.
    pub fn hub_cluster(csr: &Csr) -> VertexPerm {
        let n = csr.num_vertices();
        // Hubs: degree above 4x average — the vertices whose adjacency
        // rows dominate frontier traffic on skewed graphs. Cap the hub
        // list so a uniform-degree graph does not degrade into a full
        // degree sort of itself.
        let threshold = (4.0 * csr.avg_degree()).max(1.0) as usize;
        let mut hubs: Vec<VertexId> =
            csr.vertices().filter(|&v| csr.out_degree(v) > threshold).collect();
        hubs.sort_by_key(|&v| (std::cmp::Reverse(csr.out_degree(v)), v));
        let mut placed = vec![false; n];
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        for &h in &hubs {
            if !placed[h as usize] {
                placed[h as usize] = true;
                order.push(h);
            }
            for &w in csr.neighbors(h) {
                if !placed[w as usize] {
                    placed[w as usize] = true;
                    order.push(w);
                }
            }
        }
        for v in csr.vertices() {
            if !placed[v as usize] {
                order.push(v);
            }
        }
        VertexPerm::from_new_order(order)
    }

    /// Reverse Cuthill–McKee from a seeded pseudo-peripheral root.
    ///
    /// The root search probes a few seeded random vertices, keeps the one
    /// with minimum degree, then iterates "BFS to the farthest level, take
    /// its min-degree vertex" until the eccentricity stops growing — the
    /// standard pseudo-peripheral heuristic. Each connected component is
    /// ordered in BFS order with ascending-degree (then ascending-id)
    /// neighbor visits; the concatenation is reversed. Unreached
    /// components restart from their own min-degree root, so the result is
    /// always a full permutation.
    pub fn rcm(csr: &Csr, seed: u64) -> VertexPerm {
        let n = csr.num_vertices();
        let mut visited = vec![false; n];
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut rng = Rng::seed_from_u64(seed);

        // Seeded probes for the first root; later components fall back to
        // their min-degree unvisited vertex (deterministic, id tie-break).
        let mut first_root: Option<VertexId> = None;
        if n > 0 {
            let mut best: Option<(usize, VertexId)> = None;
            for _ in 0..8 {
                let v = rng.gen_range(0..n as u64) as VertexId;
                let key = (csr.out_degree(v), v);
                if best.map_or(true, |b| key < b) {
                    best = Some(key);
                }
            }
            first_root = best.map(|(_, v)| v);
        }

        let mut frontier: Vec<VertexId> = Vec::new();
        let mut next: Vec<VertexId> = Vec::new();
        let mut component: Vec<VertexId> = Vec::new();
        let mut scan_from = 0usize;
        while order.len() < n {
            let root = match first_root.take() {
                Some(r) if !visited[r as usize] => r,
                _ => {
                    // Min-degree unvisited vertex; `scan_from` makes the
                    // overall root scan O(n) across all components.
                    while visited[scan_from] {
                        scan_from += 1;
                    }
                    let mut best = scan_from as VertexId;
                    for v in scan_from as VertexId..n as VertexId {
                        if !visited[v as usize] && csr.out_degree(v) < csr.out_degree(best) {
                            best = v;
                        }
                    }
                    best
                }
            };
            let root = pseudo_peripheral(csr, root, &visited);

            // One BFS from the settled root, visiting each vertex's
            // neighbors in ascending (degree, id) order.
            component.clear();
            frontier.clear();
            frontier.push(root);
            visited[root as usize] = true;
            while !frontier.is_empty() {
                next.clear();
                for &v in frontier.iter() {
                    component.push(v);
                    let mut nbrs: Vec<VertexId> = csr
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&w| !visited[w as usize])
                        .collect();
                    nbrs.sort_by_key(|&w| (csr.out_degree(w), w));
                    for w in nbrs {
                        if !visited[w as usize] {
                            visited[w as usize] = true;
                            next.push(w);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            order.extend_from_slice(&component);
        }
        order.reverse();
        VertexPerm::from_new_order(order)
    }

    /// Vertices covered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Old id → new id.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.perm[old as usize]
    }

    /// New id → old id.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.inv[new as usize]
    }

    /// The full old → new map.
    pub fn perm(&self) -> &[VertexId] {
        &self.perm
    }

    /// The full new → old map.
    pub fn inverse(&self) -> &[VertexId] {
        &self.inv
    }

    /// Maps a source list into permuted space (duplicates preserved —
    /// each group instance keeps its slot).
    pub fn map_sources(&self, sources: &[VertexId]) -> Vec<VertexId> {
        sources.iter().map(|&s| self.to_new(s)).collect()
    }

    /// Relabels `csr` into permuted space: vertex `v` becomes
    /// `perm[v]`, rows are emitted in new-id order, and each row is
    /// re-sorted ascending to preserve the CSR invariant. The edge
    /// multiset is preserved exactly (degrees are permutation-invariant).
    pub fn apply(&self, csr: &Csr) -> Csr {
        let n = csr.num_vertices();
        assert_eq!(n, self.len(), "permutation size mismatch");
        let mut offsets = vec![0u64; n + 1];
        for new in 0..n {
            let old = self.inv[new];
            offsets[new + 1] = offsets[new] + csr.out_degree(old) as u64;
        }
        let mut adj: Vec<VertexId> = Vec::with_capacity(csr.num_edges());
        for new in 0..n {
            let old = self.inv[new];
            let row_start = adj.len();
            adj.extend(csr.neighbors(old).iter().map(|&w| self.perm[w as usize]));
            adj[row_start..].sort_unstable();
        }
        Csr::from_parts(offsets, adj)
    }
}

/// Refines `start` toward a pseudo-peripheral vertex of its component:
/// repeat "BFS, pick the min-degree vertex of the farthest level" until
/// the eccentricity stops growing. `visited` marks vertices in other,
/// already-ordered components (never crossed into).
fn pseudo_peripheral(csr: &Csr, start: VertexId, visited: &[bool]) -> VertexId {
    let n = csr.num_vertices();
    let mut root = start;
    let mut ecc = 0usize;
    let mut seen = vec![false; n];
    for _ in 0..8 {
        for s in seen.iter_mut() {
            *s = false;
        }
        let mut frontier = vec![root];
        seen[root as usize] = true;
        let mut last = vec![root];
        let mut depth = 0usize;
        while !frontier.is_empty() {
            last.clone_from(&frontier);
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in csr.neighbors(v) {
                    if !seen[w as usize] && !visited[w as usize] {
                        seen[w as usize] = true;
                        next.push(w);
                    }
                }
            }
            if !next.is_empty() {
                depth += 1;
            }
            frontier = next;
        }
        let candidate = last
            .iter()
            .copied()
            .min_by_key(|&v| (csr.out_degree(v), v))
            .unwrap_or(root);
        if depth <= ecc && candidate == root {
            break;
        }
        if depth <= ecc {
            break;
        }
        ecc = depth;
        root = candidate;
    }
    root
}

/// Mean |u − v| over all directed edges — the locality summary `bfs
/// stats --locality` and the locality figure report. Smaller means
/// neighbor lookups land nearer their source row in the status arrays.
pub fn mean_neighbor_gap(csr: &Csr) -> f64 {
    if csr.num_edges() == 0 {
        return 0.0;
    }
    let mut total: u64 = 0;
    for (u, v) in csr.edges() {
        total += (u as i64 - v as i64).unsigned_abs();
    }
    total as f64 / csr.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{hub_heavy, rmat, RmatParams};
    use crate::validate::reference_bfs;
    use ibfs_util::prop::Prop;

    fn test_graphs() -> Vec<(String, Csr)> {
        vec![
            ("rmat".to_string(), rmat(8, 8, RmatParams::graph500(), 42)),
            ("hub".to_string(), hub_heavy(300, 6, 7)),
            ("grid".to_string(), crate::generators::grid2d(9, 11)),
        ]
    }

    fn edge_multiset(g: &Csr) -> Vec<(VertexId, VertexId)> {
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        edges
    }

    #[test]
    fn kind_names_round_trip() {
        for k in ReorderKind::all() {
            assert_eq!(ReorderKind::parse(k.name()), Some(k));
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(ReorderKind::parse("sorted"), None);
        assert!(VertexPerm::build(ReorderKind::None, &hub_heavy(10, 4, 1), 0).is_none());
    }

    #[test]
    fn every_ordering_is_a_permutation_with_exact_inverse() {
        // Seeded property sweep: perm ∘ inverse = id in both directions,
        // for every kind on randomized R-MAT instances.
        Prop::new("reorder-roundtrip").cases(12).run(|rng| {
            let scale = rng.gen_range(4..8u32);
            let seed = rng.next_u64();
            let g = rmat(scale, 4, RmatParams::graph500(), seed);
            for kind in [ReorderKind::DegreeDesc, ReorderKind::HubCluster, ReorderKind::Rcm] {
                let p = VertexPerm::build(kind, &g, seed).unwrap();
                assert_eq!(p.len(), g.num_vertices());
                for v in g.vertices() {
                    assert_eq!(p.to_old(p.to_new(v)), v, "{kind}: perm∘inv != id at {v}");
                    assert_eq!(p.to_new(p.to_old(v)), v, "{kind}: inv∘perm != id at {v}");
                }
            }
        });
    }

    #[test]
    fn relabel_preserves_the_edge_multiset() {
        for (name, g) in test_graphs() {
            for kind in [ReorderKind::DegreeDesc, ReorderKind::HubCluster, ReorderKind::Rcm] {
                let p = VertexPerm::build(kind, &g, 9).unwrap();
                let rg = p.apply(&g);
                assert_eq!(rg.num_vertices(), g.num_vertices());
                assert_eq!(rg.num_edges(), g.num_edges());
                // Mapping the relabeled edges back must reproduce the
                // original multiset exactly.
                let back: Csr = VertexPerm {
                    perm: p.inv.clone(),
                    inv: p.perm.clone(),
                }
                .apply(&rg);
                assert_eq!(
                    edge_multiset(&back),
                    edge_multiset(&g),
                    "{name}/{kind}: relabel dropped or invented edges"
                );
                // Degrees are carried over row by row.
                for v in g.vertices() {
                    assert_eq!(
                        rg.out_degree(p.to_new(v)),
                        g.out_degree(v),
                        "{name}/{kind}: degree moved at {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn mapped_back_depths_match_unpermuted_reference_bfs() {
        // BFS in permuted space, mapped back out, is bit-identical to BFS
        // in the original space: the invariant every reordered engine
        // leans on.
        for (name, g) in test_graphs() {
            for kind in [ReorderKind::DegreeDesc, ReorderKind::HubCluster, ReorderKind::Rcm] {
                let p = VertexPerm::build(kind, &g, 21).unwrap();
                let rg = p.apply(&g);
                for s in [0 as VertexId, (g.num_vertices() as VertexId) / 2] {
                    let want = reference_bfs(&g, s);
                    let got_permuted = reference_bfs(&rg, p.to_new(s));
                    let got: Vec<_> =
                        g.vertices().map(|v| got_permuted[p.to_new(v) as usize]).collect();
                    assert_eq!(got, want, "{name}/{kind}: depths moved for source {s}");
                }
            }
        }
    }

    #[test]
    fn degree_descending_sorts_and_hub_cluster_places_hub_neighbors_adjacently() {
        let g = hub_heavy(200, 6, 5);
        let p = VertexPerm::degree_descending(&g);
        let rg = p.apply(&g);
        for new in 1..rg.num_vertices() as VertexId {
            assert!(
                rg.out_degree(new - 1) >= rg.out_degree(new),
                "degree order not descending at {new}"
            );
        }
        // Hub clustering puts the top hub at new id 0 with its
        // neighborhood packed right behind it.
        let p = VertexPerm::hub_cluster(&g);
        let hub = g.vertices().max_by_key(|&v| g.out_degree(v)).unwrap();
        assert_eq!(p.to_new(hub), 0);
        let rg = p.apply(&g);
        let gap = mean_neighbor_gap(&rg);
        assert!(gap <= mean_neighbor_gap(&g), "hub clustering must not worsen the gap");
    }

    #[test]
    fn rcm_is_seed_deterministic_and_reduces_grid_bandwidth() {
        let g = crate::generators::grid2d(16, 17);
        let a = VertexPerm::rcm(&g, 42);
        let b = VertexPerm::rcm(&g, 42);
        assert_eq!(a, b, "same seed, same order");
        // A mesh is RCM's home turf: the reordered bandwidth (mean
        // neighbor gap) must beat the row-major original... which is
        // already good, so just require it not to blow up, and require a
        // shuffled labeling to improve substantially.
        let rg = a.apply(&g);
        assert!(mean_neighbor_gap(&rg) <= 2.0 * mean_neighbor_gap(&g));
    }

    #[test]
    fn identity_is_a_noop_relabel() {
        let g = rmat(6, 4, RmatParams::graph500(), 3);
        let p = VertexPerm::identity(g.num_vertices());
        assert_eq!(p.apply(&g), g);
        assert_eq!(p.map_sources(&[0, 5, 5, 9]), vec![0, 5, 5, 9]);
    }
}
