//! Connected components and component-aware utilities.
//!
//! The paper traverses from every vertex (APSP); on graphs with small
//! disconnected fringes most of those traversals die immediately, so
//! benchmark harnesses often restrict sources to the largest component.
//! These helpers compute (weakly) connected components and extract the
//! giant component as its own graph.

use crate::{Csr, CsrBuilder, VertexId};

/// Weakly-connected component labels (0-based, dense) for every vertex,
/// treating every edge as undirected.
pub fn weakly_connected_components(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let rev = if g.is_symmetric() { None } else { Some(g.reverse()) };
    let mut label = vec![u32::MAX; n];
    let mut next_label = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = next_label;
        stack.push(start);
        while let Some(v) = stack.pop() {
            let visit = |w: VertexId, label: &mut Vec<u32>, stack: &mut Vec<VertexId>| {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next_label;
                    stack.push(w);
                }
            };
            for &w in g.neighbors(v) {
                visit(w, &mut label, &mut stack);
            }
            if let Some(r) = &rev {
                for &w in r.neighbors(v) {
                    visit(w, &mut label, &mut stack);
                }
            }
        }
        next_label += 1;
    }
    label
}

/// Sizes of each component, indexed by label.
pub fn component_sizes(labels: &[u32]) -> Vec<usize> {
    let count = labels.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut sizes = vec![0usize; count];
    for &l in labels {
        sizes[l as usize] += 1;
    }
    sizes
}

/// Extracts the largest weakly-connected component as a new graph.
/// Returns the subgraph and the mapping from new vertex ids to original
/// ids.
pub fn largest_component(g: &Csr) -> (Csr, Vec<VertexId>) {
    let labels = weakly_connected_components(g);
    let sizes = component_sizes(&labels);
    let Some((biggest, _)) = sizes.iter().enumerate().max_by_key(|&(_, s)| s) else {
        return (CsrBuilder::new(0).build(), Vec::new());
    };
    let biggest = biggest as u32;
    // Old-id → new-id map.
    let mut old_to_new = vec![u32::MAX; g.num_vertices()];
    let mut new_to_old = Vec::new();
    for v in g.vertices() {
        if labels[v as usize] == biggest {
            old_to_new[v as usize] = new_to_old.len() as u32;
            new_to_old.push(v);
        }
    }
    let mut b = CsrBuilder::new(new_to_old.len());
    for &v in &new_to_old {
        for &w in g.neighbors(v) {
            if labels[w as usize] == biggest {
                b.add_edge(old_to_new[v as usize], old_to_new[w as usize]);
            }
        }
    }
    (b.build(), new_to_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::figure1;

    #[test]
    fn connected_graph_has_one_component() {
        let g = figure1();
        let labels = weakly_connected_components(&g);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(component_sizes(&labels), vec![9]);
    }

    #[test]
    fn disconnected_pieces_get_distinct_labels() {
        let mut b = CsrBuilder::new(7);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(3, 4);
        // 5 and 6 isolated.
        let g = b.build();
        let labels = weakly_connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[6]);
        let mut sizes = component_sizes(&labels);
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 3]);
    }

    #[test]
    fn directed_edges_connect_weakly() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(2, 1); // 2 reaches 1 but nothing reaches 2
        let g = b.build();
        let labels = weakly_connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0]);
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = CsrBuilder::new(8);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 3);
        b.add_undirected_edge(5, 6);
        let g = b.build();
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 6);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert!(sub.is_symmetric());
    }

    #[test]
    fn empty_graph_edge_case() {
        let g = CsrBuilder::new(0).build();
        assert!(weakly_connected_components(&g).is_empty());
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }
}
