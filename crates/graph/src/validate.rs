//! Reference BFS and traversal-result validation.
//!
//! Every engine in the workspace — sequential, naive concurrent, joint,
//! bitwise, MS-BFS, CPU — is tested against [`reference_bfs`], a plain
//! queue-based BFS with no optimizations at all, and against the structural
//! invariants of [`check_depths`], which mirror the Graph 500 validator:
//! depths differ by at most one across any edge, every visited vertex other
//! than the source has a visited neighbor one level shallower, and
//! reachability matches exactly.

use crate::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use std::collections::VecDeque;

/// Textbook queue BFS from `source`; returns the depth of every vertex
/// (`DEPTH_UNVISITED` if unreachable). Optionally truncated at `max_depth`
/// levels, which the reachability-index application uses (k-hop).
pub fn reference_bfs_capped(g: &Csr, source: VertexId, max_depth: Depth) -> Vec<Depth> {
    let mut depth = vec![DEPTH_UNVISITED; g.num_vertices()];
    if g.num_vertices() == 0 {
        return depth;
    }
    depth[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = depth[v as usize];
        if d >= max_depth {
            continue;
        }
        for &w in g.neighbors(v) {
            if depth[w as usize] == DEPTH_UNVISITED {
                depth[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    depth
}

/// Untruncated [`reference_bfs_capped`].
pub fn reference_bfs(g: &Csr, source: VertexId) -> Vec<Depth> {
    reference_bfs_capped(g, source, DEPTH_UNVISITED - 1)
}

/// A violation found by [`check_depths`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepthError {
    /// The source vertex does not have depth 0.
    SourceDepth { got: Depth },
    /// An edge connects vertices whose depths differ by more than one.
    EdgeGap { u: VertexId, v: VertexId },
    /// A visited vertex has no neighbor at the previous depth (no valid
    /// BFS parent), considering in-edges on directed graphs.
    NoParent { v: VertexId },
    /// A vertex is marked visited but is unreachable from the source, or
    /// vice versa.
    Reachability { v: VertexId },
    /// Wrong array length.
    Length { got: usize, want: usize },
}

/// Validates a depth array produced by any BFS engine against the graph.
/// `reverse` must be the transposed graph (equal to `g` when symmetric).
pub fn check_depths(
    g: &Csr,
    reverse: &Csr,
    source: VertexId,
    depth: &[Depth],
) -> Result<(), DepthError> {
    if depth.len() != g.num_vertices() {
        return Err(DepthError::Length {
            got: depth.len(),
            want: g.num_vertices(),
        });
    }
    if depth[source as usize] != 0 {
        return Err(DepthError::SourceDepth {
            got: depth[source as usize],
        });
    }
    // Edge condition: |depth(u) - depth(v)| <= 1 for visited endpoints of
    // each edge (an edge from a visited to an unvisited vertex is legal only
    // under truncation, so full validation also checks reachability below).
    for (u, v) in g.edges() {
        let du = depth[u as usize];
        let dv = depth[v as usize];
        if du != DEPTH_UNVISITED && dv != DEPTH_UNVISITED {
            let gap = (du as i32 - dv as i32).abs();
            if gap > 1 {
                return Err(DepthError::EdgeGap { u, v });
            }
        }
    }
    // Parent condition.
    for v in g.vertices() {
        let d = depth[v as usize];
        if v != source && d != DEPTH_UNVISITED {
            if d == 0 {
                return Err(DepthError::NoParent { v });
            }
            let has_parent = reverse
                .neighbors(v)
                .iter()
                .any(|&p| depth[p as usize] == d - 1);
            if !has_parent {
                return Err(DepthError::NoParent { v });
            }
        }
    }
    // Reachability must match the reference exactly.
    let reference = reference_bfs(g, source);
    for v in g.vertices() {
        let vis = depth[v as usize] != DEPTH_UNVISITED;
        let refvis = reference[v as usize] != DEPTH_UNVISITED;
        if vis != refvis {
            return Err(DepthError::Reachability { v });
        }
    }
    Ok(())
}

/// Counts directed edges whose source is visited in `depth` — the Graph 500
/// "traversed edges" figure used for TEPS.
pub fn traversed_edges(g: &Csr, depth: &[Depth]) -> u64 {
    g.vertices()
        .filter(|&v| depth[v as usize] != DEPTH_UNVISITED)
        .map(|v| g.out_degree(v) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::figure1;
    use crate::CsrBuilder;

    #[test]
    fn figure1_depths_match_paper() {
        // BFS-0 from vertex 0 in Figure 1(b): level 1 = {1,4}, level 2 =
        // {2,3,5}, level 3... The paper's tree shows depths (using its status
        // arrays at levels 3/4): vertex 6,7,8 end at depth 3/3/3? Figure 1(c)
        // bottom half shows SA4 = [., 1, 2, 2, 1, 2, 4, 4, 4] with source 0.
        let g = figure1();
        let d = reference_bfs(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[4], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], 2);
        assert_eq!(d[5], 2);
        assert_eq!(d[6], 3);
        assert_eq!(d[7], 3);
        assert_eq!(d[8], 3);
    }

    #[test]
    fn capped_bfs_stops_at_k() {
        let g = figure1();
        let d = reference_bfs_capped(&g, 0, 2);
        assert_eq!(d[5], 2);
        assert_eq!(d[6], DEPTH_UNVISITED);
        assert_eq!(d[7], DEPTH_UNVISITED);
        assert_eq!(d[8], DEPTH_UNVISITED);
    }

    #[test]
    fn check_accepts_reference() {
        let g = figure1();
        let r = g.reverse();
        for s in g.vertices() {
            let d = reference_bfs(&g, s);
            check_depths(&g, &r, s, &d).unwrap();
        }
    }

    #[test]
    fn check_rejects_bad_source_depth() {
        let g = figure1();
        let r = g.reverse();
        let mut d = reference_bfs(&g, 0);
        d[0] = 1;
        assert!(matches!(
            check_depths(&g, &r, 0, &d),
            Err(DepthError::SourceDepth { .. })
        ));
    }

    #[test]
    fn check_rejects_edge_gap() {
        let g = figure1();
        let r = g.reverse();
        let mut d = reference_bfs(&g, 0);
        d[8] = 9; // 8 is adjacent to 5 (depth 2): gap of 7.
        assert!(matches!(
            check_depths(&g, &r, 0, &d),
            Err(DepthError::EdgeGap { .. }) | Err(DepthError::NoParent { .. })
        ));
    }

    #[test]
    fn check_rejects_wrong_reachability() {
        // Two disconnected components.
        let mut b = CsrBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        let r = g.reverse();
        let mut d = reference_bfs(&g, 0);
        d[2] = 1; // claim the unreachable vertex was visited
        assert!(check_depths(&g, &r, 0, &d).is_err());
    }

    #[test]
    fn check_rejects_wrong_length() {
        let g = figure1();
        let r = g.reverse();
        assert!(matches!(
            check_depths(&g, &r, 0, &[0]),
            Err(DepthError::Length { .. })
        ));
    }

    #[test]
    fn traversed_edges_counts_visited_outdegrees() {
        let g = figure1();
        let d = reference_bfs(&g, 0);
        // Connected graph: every directed edge counted.
        assert_eq!(traversed_edges(&g, &d), g.num_edges() as u64);

        let mut b = CsrBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(2, 3);
        let g2 = b.build();
        let d2 = reference_bfs(&g2, 0);
        assert_eq!(traversed_edges(&g2, &d2), 2);
    }
}
