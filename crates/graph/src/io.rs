//! Compact binary serialization for CSR graphs.
//!
//! Format (little-endian): magic `IBFS`, u32 version, u64 vertex count,
//! u64 edge count, offsets (`|V|+1` × u64), adjacency (`|E|` × u32).
//! The suite caches generated graphs in this format so repeated benchmark
//! runs skip generation.

use crate::{Csr, VertexId};
use std::fs;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"IBFS";
const VERSION: u32 = 1;

/// Errors decoding a binary graph.
#[derive(Debug)]
pub enum DecodeError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Input ended early or lengths are inconsistent.
    Truncated,
    /// Offsets/adjacency failed CSR validation.
    Invalid(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic (not an IBFS graph file)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::Invalid(m) => write!(f, "invalid CSR: {m}"),
            DecodeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

/// Encodes `g` to the binary format.
pub fn encode(g: &Csr) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + g.offsets().len() * 8 + g.adjacency().len() * 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    buf.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    for &o in g.offsets() {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    for &v in g.adjacency() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Little-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
}

impl Cursor<'_> {
    fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        let (head, rest) = self.data.split_at_checked(4).ok_or(DecodeError::Truncated)?;
        self.data = rest;
        Ok(u32::from_le_bytes(head.try_into().unwrap()))
    }

    fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        let (head, rest) = self.data.split_at_checked(8).ok_or(DecodeError::Truncated)?;
        self.data = rest;
        Ok(u64::from_le_bytes(head.try_into().unwrap()))
    }
}

/// Decodes a graph from the binary format.
pub fn decode(data: &[u8]) -> Result<Csr, DecodeError> {
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut cur = Cursor { data: &data[4..] };
    let version = cur.get_u32_le()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let n = cur.get_u64_le()? as usize;
    let m = cur.get_u64_le()? as usize;
    let need = (n + 1)
        .checked_mul(8)
        .and_then(|x| x.checked_add(m.checked_mul(4)?))
        .ok_or(DecodeError::Truncated)?;
    if cur.data.len() < need {
        return Err(DecodeError::Truncated);
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(cur.get_u64_le()?);
    }
    let mut adj: Vec<VertexId> = Vec::with_capacity(m);
    for _ in 0..m {
        adj.push(cur.get_u32_le()?);
    }
    validate_parts(&offsets, &adj)?;
    Ok(Csr::from_parts(offsets, adj))
}

fn validate_parts(offsets: &[u64], adj: &[VertexId]) -> Result<(), DecodeError> {
    if offsets.is_empty() {
        return Err(DecodeError::Invalid("empty offsets".into()));
    }
    if *offsets.last().unwrap() != adj.len() as u64 {
        return Err(DecodeError::Invalid("last offset != edge count".into()));
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(DecodeError::Invalid("offsets not monotone".into()));
    }
    let n = (offsets.len() - 1) as u64;
    if !adj.iter().all(|&v| (v as u64) < n) {
        return Err(DecodeError::Invalid("adjacency out of range".into()));
    }
    Ok(())
}

/// Writes `g` to `path` in the binary format.
pub fn save(g: &Csr, path: &Path) -> io::Result<()> {
    fs::write(path, encode(g))
}

/// Reads a graph from `path`.
pub fn load(path: &Path) -> Result<Csr, DecodeError> {
    let data = fs::read(path)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, RmatParams};
    use crate::CsrBuilder;

    #[test]
    fn round_trip() {
        let g = rmat(8, 8, RmatParams::graph500(), 17);
        let bytes = encode(&g);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_empty() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(decode(&encode(&g)).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(decode(b"NOPE1234"), Err(DecodeError::BadMagic)));
        assert!(matches!(decode(b""), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn rejects_truncated() {
        let g = rmat(6, 4, RmatParams::graph500(), 1);
        let bytes = encode(&g);
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(decode(cut), Err(DecodeError::Truncated)));
    }

    #[test]
    fn rejects_wrong_version() {
        let g = CsrBuilder::new(1).build();
        let mut data = encode(&g).to_vec();
        data[4] = 99;
        assert!(matches!(decode(&data), Err(DecodeError::BadVersion(99))));
    }

    #[test]
    fn rejects_corrupt_adjacency() {
        let mut b = CsrBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        let mut data = encode(&g).to_vec();
        // Overwrite the single adjacency u32 (last 4 bytes) with an
        // out-of-range id.
        let len = data.len();
        data[len - 4..].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(decode(&data), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn file_round_trip() {
        let g = rmat(7, 4, RmatParams::dimacs_rm(), 2);
        let dir = std::env::temp_dir().join("ibfs_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.ibfs");
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, g);
        std::fs::remove_file(&path).ok();
    }
}
