//! Edge-tiling plan for load-balanced traversal.
//!
//! The pooled CPU engine (DESIGN.md "CPU engine architecture") splits
//! top-down work at vertex granularity, so one scale-free hub can pin an
//! entire work-stealing lane for a whole level — exactly the irregularity
//! Galois' SyncTile variant fixes by splitting the edge lists of
//! high-degree vertices into fixed-size *tiles* that flow through the
//! scheduler as independent work items.
//!
//! [`TilePlan`] is the pure policy half of that: given a vertex degree it
//! says how many tiles the edge list splits into and what local edge range
//! each tile covers. The invariants (pinned by the property tests below)
//! are:
//!
//! * the tiles of a vertex partition its edge list exactly — no overlap,
//!   no gap, in ascending order;
//! * every tile spans at most `tile_size` edges;
//! * a vertex with degree at or below `threshold` produces exactly one
//!   tile (degree 0 included: one empty tile, so the partition property
//!   holds uniformly — work-list builders may skip empty tiles).
//!
//! [`TilePlan::autotune`] derives the sizes from the graph's
//! [`log2_degree_histogram`](crate::degree::log2_degree_histogram) at
//! service build time; callers can always override with an explicit size.

use crate::Csr;

/// Default lower bound for autotuned tile sizes. Below this the per-tile
/// scheduling overhead (a claim + a mask load) dominates the edge work.
pub const MIN_TILE_SIZE: usize = 16;

/// Default upper bound for autotuned tile sizes. One tile of this size is
/// already several L1 lines of adjacency; bigger tiles stop helping
/// balance without reducing overhead further.
pub const MAX_TILE_SIZE: usize = 4096;

/// A fixed-size edge-tiling policy: vertices with degree above
/// `threshold` split into tiles of at most `tile_size` edges each.
///
/// Constructed via [`TilePlan::new`] (explicit sizes) or
/// [`TilePlan::autotune`] (degree-histogram heuristic). The constructor
/// clamps `threshold` to at most `tile_size` so the one-tile-per-small-
/// vertex and every-tile-fits invariants can never conflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilePlan {
    /// Degrees at or below this stay a single work item.
    threshold: usize,
    /// Maximum edges per tile for vertices above the threshold.
    tile_size: usize,
}

impl TilePlan {
    /// Builds a plan with an explicit threshold and tile size. Both are
    /// clamped to at least 1, and `threshold` to at most `tile_size`.
    pub fn new(threshold: usize, tile_size: usize) -> TilePlan {
        let tile_size = tile_size.max(1);
        TilePlan { threshold: threshold.max(1).min(tile_size), tile_size }
    }

    /// Builds a plan where only the tile size matters: any degree above
    /// `tile_size` splits. This is the shape the CLI `--tile-size` flag
    /// produces.
    pub fn uniform(tile_size: usize) -> TilePlan {
        TilePlan::new(tile_size, tile_size)
    }

    /// Derives a plan from a graph's degree shape.
    ///
    /// Heuristic: aim tiles at a small multiple of the average degree
    /// (4×, rounded up to a power of two) so a typical vertex stays one
    /// tile while hubs split into roughly `degree / (4·avg)` items, then
    /// clamp into `[MIN_TILE_SIZE, MAX_TILE_SIZE]`. Skewed graphs (max
    /// degree far above average) therefore get many hub tiles; uniform
    /// graphs degenerate to one tile per vertex, which makes the tiled
    /// engine behave exactly like the pooled one.
    pub fn autotune(g: &Csr) -> TilePlan {
        let avg = g.avg_degree().max(1.0);
        let target = (4.0 * avg).ceil() as usize;
        let tile_size = target
            .next_power_of_two()
            .clamp(MIN_TILE_SIZE, MAX_TILE_SIZE);
        TilePlan::uniform(tile_size)
    }

    /// Degrees at or below this produce exactly one tile.
    #[inline]
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Maximum edges per tile.
    #[inline]
    pub fn tile_size(&self) -> usize {
        self.tile_size
    }

    /// Number of tiles the edge list of a degree-`deg` vertex splits into.
    /// Always at least 1 (a degree-0 vertex has one empty tile).
    #[inline]
    pub fn tile_count(&self, deg: usize) -> usize {
        if deg <= self.threshold {
            1
        } else {
            deg.div_ceil(self.tile_size)
        }
    }

    /// The local edge range `[lo, hi)` of tile `t` of a degree-`deg`
    /// vertex. `t` must be below [`TilePlan::tile_count`].
    #[inline]
    pub fn tile_range(&self, deg: usize, t: usize) -> (usize, usize) {
        debug_assert!(t < self.tile_count(deg));
        if deg <= self.threshold {
            (0, deg)
        } else {
            let lo = t * self.tile_size;
            (lo, (lo + self.tile_size).min(deg))
        }
    }

    /// Iterator over the tile ranges of a degree-`deg` vertex, ascending.
    pub fn tiles(&self, deg: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.tile_count(deg)).map(move |t| self.tile_range(deg, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, uniform_random, RmatParams};
    use ibfs_util::prop::Prop;

    #[test]
    fn threshold_clamped_to_tile_size() {
        let p = TilePlan::new(100, 8);
        assert_eq!(p.threshold(), 8);
        assert_eq!(p.tile_size(), 8);
        // Degenerate sizes clamp to 1 rather than panicking.
        let p = TilePlan::new(0, 0);
        assert_eq!((p.threshold(), p.tile_size()), (1, 1));
    }

    #[test]
    fn small_vertex_is_one_tile() {
        let p = TilePlan::new(4, 16);
        for deg in 0..=4 {
            assert_eq!(p.tile_count(deg), 1);
            assert_eq!(p.tiles(deg).collect::<Vec<_>>(), vec![(0, deg)]);
        }
        // Just above the threshold the list splits by tile_size.
        assert_eq!(p.tile_count(5), 1); // ceil(5/16)
        assert_eq!(p.tiles(5).collect::<Vec<_>>(), vec![(0, 5)]);
        assert_eq!(p.tile_count(33), 3);
        assert_eq!(
            p.tiles(33).collect::<Vec<_>>(),
            vec![(0, 16), (16, 32), (32, 33)]
        );
    }

    #[test]
    fn autotune_tracks_average_degree() {
        // Uniform graph, avg degree ~30: tiles land at the power of two
        // above 4*avg and inside the clamp.
        let g = uniform_random(512, 16, 7);
        let p = TilePlan::autotune(&g);
        assert!(p.tile_size() >= MIN_TILE_SIZE && p.tile_size() <= MAX_TILE_SIZE);
        assert!(p.tile_size().is_power_of_two());
        let target = (4.0 * g.avg_degree()).ceil() as usize;
        assert!(p.tile_size() >= target.min(MAX_TILE_SIZE) / 2);
        // R-MAT at the same scale autotunes to a modest size so its hubs
        // split into many tiles.
        let g = rmat(9, 8, RmatParams::graph500(), 42);
        let p = TilePlan::autotune(&g);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(p.tile_count(max_deg) > 1, "hubs must split");
    }

    /// Satellite property: tiles partition each edge list exactly (no
    /// overlap, no gap, ordered), every tile is at most `tile_size`, and
    /// vertices at or below the threshold produce exactly one tile.
    #[test]
    fn prop_tiles_partition_edge_lists() {
        Prop::new("tiles_partition_edge_lists").cases(256).run(|rng| {
            let tile_size = rng.gen_range(1..5000u64) as usize;
            let threshold = rng.gen_range(1..5000u64) as usize;
            let plan = TilePlan::new(threshold, tile_size);
            let deg = rng.gen_range(0..20_000u64) as usize;

            let tiles: Vec<(usize, usize)> = plan.tiles(deg).collect();
            assert!(!tiles.is_empty());
            // Exact partition: starts at 0, ends at deg, each tile abuts
            // the next with lo <= hi.
            assert_eq!(tiles[0].0, 0);
            assert_eq!(tiles.last().unwrap().1, deg);
            for w in tiles.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap or overlap between tiles");
            }
            for &(lo, hi) in &tiles {
                assert!(lo <= hi);
                assert!(hi - lo <= plan.tile_size(), "tile exceeds tile_size");
            }
            if deg <= plan.threshold() {
                assert_eq!(tiles.len(), 1, "small vertex must be one tile");
            }
            // tile_range agrees with the iterator.
            for (t, &r) in tiles.iter().enumerate() {
                assert_eq!(plan.tile_range(deg, t), r);
            }
        });
    }

    #[test]
    fn prop_tile_counts_sum_to_edge_count() {
        Prop::new("tile_counts_cover_graph").cases(32).run(|rng| {
            let scale = rng.gen_range(4..9u64) as u32;
            let g = rmat(scale, 8, RmatParams::graph500(), rng.gen_range(0..1000u64));
            let plan = TilePlan::uniform(rng.gen_range(1..300u64) as usize);
            let mut edges = 0usize;
            for v in g.vertices() {
                let deg = g.out_degree(v);
                for (lo, hi) in plan.tiles(deg) {
                    edges += hi - lo;
                }
            }
            assert_eq!(edges, g.num_edges());
        });
    }
}
