//! Generator determinism snapshots.
//!
//! Pins |V|, |E|, and a degree-histogram hash for one R-MAT and one uniform
//! graph. These values are a contract: they may only change when the PRNG
//! algorithm (`ibfs_util::rng`) or a generator's sampling sequence changes
//! deliberately, and such a change must be called out in CHANGES.md because
//! it invalidates any cached graphs and recorded figures.

use ibfs_graph::generators::{rmat, uniform_random, RmatParams};
use ibfs_graph::Csr;

/// FNV-1a over the degree histogram (`degree -> count`, ascending), so the
/// snapshot is sensitive to the degree distribution but not to vertex order.
fn degree_histogram_hash(g: &Csr) -> u64 {
    let mut histogram = std::collections::BTreeMap::new();
    for v in g.vertices() {
        *histogram.entry(g.out_degree(v)).or_insert(0u64) += 1;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (degree, count) in histogram {
        mix(degree as u64);
        mix(count);
    }
    h
}

#[test]
fn rmat_snapshot_is_stable() {
    let g = rmat(8, 8, RmatParams::graph500(), 42);
    assert_eq!(g.num_vertices(), 256);
    assert_eq!(g.num_edges(), 2611);
    assert_eq!(degree_histogram_hash(&g), 0xb393_ca17_0669_3d39);
}

#[test]
fn uniform_snapshot_is_stable() {
    let g = uniform_random(256, 8, 5);
    assert_eq!(g.num_vertices(), 256);
    assert_eq!(g.num_edges(), 3980);
    assert_eq!(degree_histogram_hash(&g), 0x9c44_4ead_3ff3_19c4);
}

#[test]
fn snapshots_catch_seed_changes() {
    // Sanity: a different seed really does move the snapshot quantities,
    // so the pinned values above are discriminating.
    let a = rmat(8, 8, RmatParams::graph500(), 42);
    let b = rmat(8, 8, RmatParams::graph500(), 43);
    assert_ne!(
        (a.num_edges(), degree_histogram_hash(&a)),
        (b.num_edges(), degree_histogram_hash(&b))
    );
}
