//! Frontier edge-tiling for the CPU engines.
//!
//! The pooled engine's top-down unit of stolen work is a whole vertex, so
//! one power-law hub serializes most of a level behind a single lane. The
//! tiled engine (Galois' SyncTile shape) instead expands the frontier into
//! [`EdgeTile`]s — contiguous slices of a vertex's edge list bounded by
//! the graph's [`TilePlan`] — and steals *tiles*. Because the top-down
//! relaxation is a commutative monotone OR into the `next` status array,
//! any decomposition of the edge list produces the same set of updates:
//! the tiled engine is bit-identical to the pooled one by construction
//! (pinned by `tests/tiled_differential.rs`).

use crate::pool::ChunkCursor;
use ibfs_graph::tiling::TilePlan;
use ibfs_graph::VertexId;

/// One unit of tiled top-down work: edges `lo..hi` of `v`'s list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeTile {
    /// The frontier vertex.
    pub v: VertexId,
    /// First local edge index (into `csr.neighbors(v)`).
    pub lo: u32,
    /// One past the last local edge index.
    pub hi: u32,
}

/// Expands `queue` into tiles under `plan`, appending to `tiles` (cleared
/// first). Degree-0 frontier vertices are skipped — they have no edges to
/// relax. Returns the number of vertices that split into more than one
/// tile.
pub fn build_frontier_tiles(
    queue: &[VertexId],
    deg: impl Fn(VertexId) -> usize,
    plan: &TilePlan,
    tiles: &mut Vec<EdgeTile>,
) -> u64 {
    tiles.clear();
    let mut split = 0u64;
    for &v in queue {
        let d = deg(v);
        if d == 0 {
            continue;
        }
        let count = plan.tile_count(d);
        if count > 1 {
            split += 1;
        }
        for (lo, hi) in plan.tiles(d) {
            tiles.push(EdgeTile { v, lo: lo as u32, hi: hi as u32 });
        }
    }
    split
}

/// Splits `len` weighted items into contiguous balanced steal chunks,
/// appended to `bounds` (cleared first) as `(start, end)` index pairs.
/// Aim: roughly `threads * chunks_per_lane` chunks of near-equal total
/// weight, so a lane stuck on a heavy chunk simply claims fewer of them
/// through the [`ChunkCursor`].
pub fn build_weighted_bounds(
    len: usize,
    weight: impl Fn(usize) -> u64,
    threads: usize,
    chunks_per_lane: usize,
    bounds: &mut Vec<(u32, u32)>,
) {
    bounds.clear();
    if len == 0 {
        return;
    }
    if threads == 1 {
        bounds.push((0, len as u32));
        return;
    }
    let chunk_goal = (threads * chunks_per_lane).max(1) as u64;
    let total: u64 = (0..len).map(&weight).sum();
    let target = total.div_ceil(chunk_goal).max(1);
    let mut start = 0u32;
    let mut acc = 0u64;
    for i in 0..len {
        acc += weight(i);
        if acc >= target {
            bounds.push((start, i as u32 + 1));
            start = i as u32 + 1;
            acc = 0;
        }
    }
    if (start as usize) < len {
        bounds.push((start, len as u32));
    }
}

/// [`build_weighted_bounds`] over a tile list, weighting each tile by its
/// edge span plus one (the constant covers per-tile scheduling overhead,
/// mirroring the pooled engine's `deg + 1` vertex weight).
pub fn build_tile_bounds(
    tiles: &[EdgeTile],
    threads: usize,
    chunks_per_lane: usize,
    bounds: &mut Vec<(u32, u32)>,
) {
    build_weighted_bounds(
        tiles.len(),
        |i| (tiles[i].hi - tiles[i].lo) as u64 + 1,
        threads,
        chunks_per_lane,
        bounds,
    );
}

/// Per-lane claim counters for the steal-balance metric: `claims[lane]`
/// counts chunks this lane won from the shared cursor during one phase.
pub struct ClaimTally(Vec<std::sync::atomic::AtomicU64>);

impl ClaimTally {
    /// A tally for `threads` lanes.
    pub fn new(threads: usize) -> Self {
        ClaimTally((0..threads).map(|_| std::sync::atomic::AtomicU64::new(0)).collect())
    }

    /// Claims the next chunk from `cursor`, attributing it to `lane`.
    #[inline]
    pub fn claim(&self, cursor: &ChunkCursor, limit: usize, lane: usize) -> Option<usize> {
        let i = cursor.claim(limit)?;
        self.0[lane].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(i)
    }

    /// `lane`'s claim count so far this phase (read by the profiler hooks
    /// at the end of a lane's body, before the coordinator drains).
    #[inline]
    pub fn lane_count(&self, lane: usize) -> u64 {
        self.0[lane].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drains the tally, returning `(max_per_lane, total)` and resetting
    /// every counter to zero.
    pub fn drain(&self) -> (u64, u64) {
        let mut max = 0u64;
        let mut total = 0u64;
        for c in &self.0 {
            let v = c.swap(0, std::sync::atomic::Ordering::Relaxed);
            max = max.max(v);
            total += v;
        }
        (max, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degs(d: &[usize]) -> impl Fn(VertexId) -> usize + '_ {
        move |v| d[v as usize]
    }

    #[test]
    fn tiles_cover_frontier_edges_exactly() {
        let d = [0usize, 5, 40, 16, 0, 1];
        let plan = TilePlan::uniform(16);
        let queue: Vec<VertexId> = (0..6).collect();
        let mut tiles = Vec::new();
        let split = build_frontier_tiles(&queue, degs(&d), &plan, &mut tiles);
        // Vertex 2 (deg 40) splits into 3 tiles; degree-0 vertices vanish.
        assert_eq!(split, 1);
        assert_eq!(tiles.len(), 1 + 3 + 1 + 1);
        let covered: usize = tiles.iter().map(|t| (t.hi - t.lo) as usize).sum();
        assert_eq!(covered, d.iter().sum::<usize>());
        // Tiles of one vertex stay contiguous and ordered.
        let v2: Vec<_> = tiles.iter().filter(|t| t.v == 2).collect();
        assert_eq!(v2.len(), 3);
        assert_eq!((v2[0].lo, v2[0].hi), (0, 16));
        assert_eq!((v2[2].lo, v2[2].hi), (32, 40));
    }

    #[test]
    fn small_vertices_stay_single_tiles() {
        let d = [3usize, 4, 2];
        let plan = TilePlan::new(4, 64);
        let mut tiles = Vec::new();
        build_frontier_tiles(&[0, 1, 2], degs(&d), &plan, &mut tiles);
        assert_eq!(tiles.len(), 3);
        assert!(tiles.iter().all(|t| t.lo == 0 && t.hi as usize == d[t.v as usize]));
    }

    #[test]
    fn weighted_bounds_partition_and_balance() {
        // A hub-shaped weight profile: one huge item among many tiny ones.
        let w = |i: usize| if i == 10 { 1000 } else { 1 };
        let mut bounds = Vec::new();
        build_weighted_bounds(100, w, 4, 8, &mut bounds);
        let mut expected = 0u32;
        for &(lo, hi) in &bounds {
            assert_eq!(lo, expected);
            assert!(hi > lo);
            expected = hi;
        }
        assert_eq!(expected, 100);
        // The hub lands in a chunk of its own.
        let hub_chunk = bounds.iter().find(|&&(lo, hi)| lo <= 10 && 10 < hi).unwrap();
        assert!(hub_chunk.1 - hub_chunk.0 <= 11);
        // One lane: a single chunk, no balancing pass.
        build_weighted_bounds(100, w, 1, 8, &mut bounds);
        assert_eq!(bounds, vec![(0, 100)]);
        build_weighted_bounds(0, w, 4, 8, &mut bounds);
        assert!(bounds.is_empty());
    }

    #[test]
    fn tile_bounds_split_a_tiled_hub_across_chunks() {
        // 64 tiles of 16 edges each (one split hub): with 4 lanes the
        // bounds must spread the tiles over many chunks, which is the
        // whole point of tiling.
        let tiles: Vec<EdgeTile> =
            (0..64).map(|i| EdgeTile { v: 7, lo: i * 16, hi: (i + 1) * 16 }).collect();
        let mut bounds = Vec::new();
        build_tile_bounds(&tiles, 4, 8, &mut bounds);
        assert!(bounds.len() >= 8, "hub tiles must spread: {} chunks", bounds.len());
    }

    #[test]
    fn claim_tally_tracks_max_and_total() {
        let tally = ClaimTally::new(3);
        let cursor = ChunkCursor::default();
        while tally.claim(&cursor, 5, 0).is_some() {}
        assert_eq!(tally.claim(&cursor, 5, 1), None);
        assert_eq!(tally.drain(), (5, 5));
        // Drained: counters reset.
        assert_eq!(tally.drain(), (0, 0));
    }
}
