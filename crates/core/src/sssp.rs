//! Concurrent SSSP on weighted graphs — the "traverse weighted graphs"
//! configuration the paper mentions (§8) and its positioning among
//! shortest-path algorithms (§9: "our iBFS applies to all types of
//! shortest path problems on a unweighted graph"; with weights the same
//! joint machinery runs a frontier-based Bellman–Ford).
//!
//! The engine keeps a joint distance table (`[vertex][instance]`
//! contiguous, like the JSA) and a joint frontier queue of vertices whose
//! distance improved for *any* instance; each round loads a frontier's
//! adjacency-with-weights once for all sharing instances and relaxes.
//! Non-negative weights guarantee convergence in at most `|V|` rounds.

use crate::engine::GpuGraph;
use ibfs_graph::weighted::{Dist, WeightedCsr, DIST_UNREACHED};
use ibfs_graph::VertexId;
use ibfs_gpu_sim::{CostModel, Counters, PhaseKind, Profiler, SimTimer};

/// Maximum concurrent SSSP instances per group (mask width).
pub const MAX_SSSP_GROUP: usize = 128;

/// Result of one concurrent SSSP group run.
#[derive(Clone, Debug)]
pub struct SsspRun {
    /// Instances in the group.
    pub num_instances: usize,
    /// Vertices in the graph.
    pub num_vertices: usize,
    /// Distances, flattened `[instance][vertex]` (`DIST_UNREACHED` if
    /// unreachable).
    pub dists: Vec<Dist>,
    /// Relaxation rounds executed.
    pub rounds: u32,
    /// Device counter activity.
    pub counters: Counters,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Edge relaxations performed (across instances).
    pub relaxations: u64,
}

impl SsspRun {
    /// Instance `j`'s distance array.
    pub fn instance_dists(&self, j: usize) -> &[Dist] {
        &self.dists[j * self.num_vertices..(j + 1) * self.num_vertices]
    }
}

/// A weighted graph resident on the simulated device.
#[derive(Debug)]
pub struct WeightedGpuGraph<'a> {
    /// The weighted graph.
    pub graph: &'a WeightedCsr,
    /// Structural device addresses (adjacency, offsets).
    pub gpu: GpuGraph<'a>,
    /// Device base address of the weights array (u32 per edge).
    pub weights_base: u64,
}

impl<'a> WeightedGpuGraph<'a> {
    /// Uploads the weighted graph (structure + weights) to the device.
    /// `reverse` must be `graph.csr().reverse()` (owned by the caller).
    pub fn new(
        graph: &'a WeightedCsr,
        reverse: &'a ibfs_graph::Csr,
        prof: &mut Profiler,
    ) -> Self {
        let gpu = GpuGraph::new(graph.csr(), reverse, prof);
        let weights_base = prof.alloc(graph.csr().num_edges() as u64 * 4);
        WeightedGpuGraph { graph, gpu, weights_base }
    }
}

/// Whether instances share frontier work (joint) or run back to back with
/// private state (the sequential baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsspMode {
    /// Joint frontier queue + shared adjacency loads.
    Joint,
    /// One instance at a time, private everything.
    Sequential,
}

/// The concurrent SSSP engine.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentSssp {
    /// Joint or sequential execution.
    pub mode: SsspMode,
}

impl Default for ConcurrentSssp {
    fn default() -> Self {
        ConcurrentSssp { mode: SsspMode::Joint }
    }
}

impl ConcurrentSssp {
    /// The sequential baseline.
    pub fn sequential() -> Self {
        ConcurrentSssp { mode: SsspMode::Sequential }
    }

    /// Runs SSSP from every source concurrently (per `mode`).
    pub fn run_group(
        &self,
        g: &WeightedGpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
    ) -> SsspRun {
        match self.mode {
            SsspMode::Joint => run_joint(g, sources, prof),
            SsspMode::Sequential => run_sequential(g, sources, prof),
        }
    }
}

fn run_joint(g: &WeightedGpuGraph<'_>, sources: &[VertexId], prof: &mut Profiler) -> SsspRun {
    let ni = sources.len();
    assert!(ni <= MAX_SSSP_GROUP, "SSSP group limited to {MAX_SSSP_GROUP}");
    let csr = g.graph.csr();
    let n = csr.num_vertices();
    let before = prof.snapshot();
    let model = CostModel::new(prof.config);

    // Joint distance table, vertex-major like the JSA.
    let mut dist = vec![DIST_UNREACHED; n * ni.max(1)];
    let dist_base = prof.alloc((n * ni.max(1)) as u64 * 8);
    let jfq_base = prof.alloc(n as u64 * 4);
    let mut timer = SimTimer::start(model, prof);

    let mut frontier_masks: Vec<u128> = vec![0; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for (j, &s) in sources.iter().enumerate() {
        dist[s as usize * ni + j] = 0;
        prof.store_block(dist_base + (s as usize * ni + j) as u64 * 8, 8);
        if frontier_masks[s as usize] == 0 {
            frontier.push(s);
        }
        frontier_masks[s as usize] |= 1 << j;
    }
    timer.phase(prof, PhaseKind::Other);

    let mut rounds = 0u32;
    let mut relaxations = 0u64;
    let mut next_masks: Vec<u128> = vec![0; n];

    while !frontier.is_empty() && rounds < n as u32 + 1 {
        rounds += 1;
        timer.kernel_launch();
        prof.load_contiguous(jfq_base, 0, frontier.len() as u64, 4);

        let mut next_frontier: Vec<VertexId> = Vec::new();
        for &v in &frontier {
            let mask = frontier_masks[v as usize];
            debug_assert!(mask != 0);
            let deg = csr.out_degree(v) as u64;
            // Adjacency + weights loaded once for all sharing instances.
            prof.load_contiguous(g.gpu.adj_base, csr.adj_start(v), deg, 4);
            prof.load_contiguous(g.weights_base, csr.adj_start(v), deg, 4);
            prof.shared_store(deg);
            // Source distances of the sharing instances (one block).
            prof.load_block(dist_base + (v as usize * ni) as u64 * 8, (ni * 8) as u32);
            for (w, wt) in g.graph.neighbors(v) {
                // All sharing instances inspect w's distance block together.
                prof.load_block(dist_base + (w as usize * ni) as u64 * 8, (ni * 8) as u32);
                let mut m = mask;
                let mut wrote = false;
                while m != 0 {
                    let j = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let dv = dist[v as usize * ni + j];
                    if dv == DIST_UNREACHED {
                        continue;
                    }
                    relaxations += 1;
                    prof.lanes(1);
                    let nd = dv + wt as Dist;
                    if nd < dist[w as usize * ni + j] {
                        dist[w as usize * ni + j] = nd;
                        if next_masks[w as usize] == 0 {
                            next_frontier.push(w);
                        }
                        next_masks[w as usize] |= 1 << j;
                        wrote = true;
                    }
                }
                if wrote {
                    prof.store_block(dist_base + (w as usize * ni) as u64 * 8, (ni * 8) as u32);
                }
            }
        }
        timer.phase(prof, PhaseKind::Inspection);

        // Swap frontier state; queue stores for the next round.
        for &v in &frontier {
            frontier_masks[v as usize] = 0;
        }
        for &v in &next_frontier {
            frontier_masks[v as usize] = next_masks[v as usize];
            next_masks[v as usize] = 0;
        }
        prof.store_contiguous(jfq_base, 0, next_frontier.len() as u64, 4);
        frontier = next_frontier;
        timer.phase(prof, PhaseKind::FrontierGeneration);
    }

    // Transpose to instance-major output.
    let mut out = vec![DIST_UNREACHED; ni * n];
    for v in 0..n {
        for j in 0..ni {
            out[j * n + v] = dist[v * ni + j];
        }
    }
    SsspRun {
        num_instances: ni,
        num_vertices: n,
        dists: out,
        rounds,
        counters: prof.snapshot().delta(&before),
        sim_seconds: timer.seconds(),
        relaxations,
    }
}

fn run_sequential(
    g: &WeightedGpuGraph<'_>,
    sources: &[VertexId],
    prof: &mut Profiler,
) -> SsspRun {
    let csr = g.graph.csr();
    let n = csr.num_vertices();
    let before = prof.snapshot();
    let model = CostModel::new(prof.config);
    let mut timer = SimTimer::start(model, prof);
    let mut out = vec![DIST_UNREACHED; sources.len() * n];
    let mut rounds = 0u32;
    let mut relaxations = 0u64;

    for (j, &s) in sources.iter().enumerate() {
        let dist_base = prof.alloc(n as u64 * 8);
        let fq_base = prof.alloc(n as u64 * 4);
        let dist = &mut out[j * n..(j + 1) * n];
        dist[s as usize] = 0;
        let mut frontier = vec![s];
        let mut queued = vec![false; n];
        let mut r = 0u32;
        while !frontier.is_empty() && r < n as u32 + 1 {
            r += 1;
            timer.kernel_launch();
            prof.load_contiguous(fq_base, 0, frontier.len() as u64, 4);
            let mut next: Vec<VertexId> = Vec::new();
            for &v in &frontier {
                let deg = csr.out_degree(v) as u64;
                prof.load_contiguous(g.gpu.adj_base, csr.adj_start(v), deg, 4);
                prof.load_contiguous(g.weights_base, csr.adj_start(v), deg, 4);
                prof.load_block(dist_base + v as u64 * 8, 8);
                for (w, wt) in g.graph.neighbors(v) {
                    relaxations += 1;
                    prof.lanes(1);
                    prof.load_block(dist_base + w as u64 * 8, 8);
                    let nd = dist[v as usize] + wt as Dist;
                    if nd < dist[w as usize] {
                        dist[w as usize] = nd;
                        prof.store_block(dist_base + w as u64 * 8, 8);
                        if !queued[w as usize] {
                            queued[w as usize] = true;
                            next.push(w);
                        }
                    }
                }
            }
            for &w in &next {
                queued[w as usize] = false;
            }
            prof.store_contiguous(fq_base, 0, next.len() as u64, 4);
            frontier = next;
            timer.phase(prof, PhaseKind::Inspection);
        }
        rounds = rounds.max(r);
    }
    SsspRun {
        num_instances: sources.len(),
        num_vertices: n,
        dists: out,
        rounds,
        counters: prof.snapshot().delta(&before),
        sim_seconds: timer.seconds(),
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::figure1;
    use ibfs_graph::weighted::dijkstra;
    use ibfs_gpu_sim::DeviceConfig;

    fn weighted_fig1(max_w: u32) -> WeightedCsr {
        WeightedCsr::random_weights(figure1(), max_w, 11)
    }

    fn check_against_dijkstra(g: &WeightedCsr, sources: &[VertexId], mode: SsspMode) {
        let rev = g.csr().reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let wg = WeightedGpuGraph::new(g, &rev, &mut prof);
        let run = ConcurrentSssp { mode }.run_group(&wg, sources, &mut prof);
        for (j, &s) in sources.iter().enumerate() {
            assert_eq!(
                run.instance_dists(j),
                &dijkstra(g, s)[..],
                "{mode:?} from source {s}"
            );
        }
        assert!(run.sim_seconds > 0.0);
    }

    #[test]
    fn joint_matches_dijkstra_on_figure1() {
        let g = weighted_fig1(9);
        check_against_dijkstra(&g, &[0, 3, 6, 8], SsspMode::Joint);
    }

    #[test]
    fn sequential_matches_dijkstra_on_figure1() {
        let g = weighted_fig1(9);
        check_against_dijkstra(&g, &[0, 3, 6, 8], SsspMode::Sequential);
    }

    #[test]
    fn unit_weights_match_bfs_depths() {
        let g = WeightedCsr::random_weights(figure1(), 1, 0);
        let rev = g.csr().reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let wg = WeightedGpuGraph::new(&g, &rev, &mut prof);
        let run = ConcurrentSssp::default().run_group(&wg, &[0], &mut prof);
        let bfs = ibfs_graph::validate::reference_bfs(g.csr(), 0);
        for (v, &depth) in bfs.iter().enumerate() {
            assert_eq!(run.instance_dists(0)[v], depth as Dist);
        }
    }

    #[test]
    fn joint_shares_adjacency_loads() {
        use ibfs_graph::generators::{rmat, RmatParams};
        let g = WeightedCsr::random_weights(rmat(9, 8, RmatParams::graph500(), 5), 16, 7);
        let rev = g.csr().reverse();
        let sources: Vec<VertexId> = (0..32).collect();

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let w1 = WeightedGpuGraph::new(&g, &rev, &mut p1);
        let joint = ConcurrentSssp::default().run_group(&w1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let w2 = WeightedGpuGraph::new(&g, &rev, &mut p2);
        let seq = ConcurrentSssp::sequential().run_group(&w2, &sources, &mut p2);

        assert_eq!(joint.dists, seq.dists);
        assert!(
            joint.sim_seconds < seq.sim_seconds,
            "joint {} should beat sequential {}",
            joint.sim_seconds,
            seq.sim_seconds
        );
        for (j, &s) in sources.iter().enumerate() {
            assert_eq!(joint.instance_dists(j), &dijkstra(&g, s)[..]);
        }
    }

    #[test]
    fn handles_unreachable_vertices() {
        let mut b = ibfs_graph::CsrBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = WeightedCsr::new(b.build(), vec![3, 4]);
        let rev = g.csr().reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let wg = WeightedGpuGraph::new(&g, &rev, &mut prof);
        let run = ConcurrentSssp::default().run_group(&wg, &[0], &mut prof);
        assert_eq!(run.instance_dists(0), &[0, 3, DIST_UNREACHED, DIST_UNREACHED]);
    }

    #[test]
    #[should_panic(expected = "SSSP group limited")]
    fn rejects_oversized_group() {
        let g = weighted_fig1(4);
        let rev = g.csr().reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let wg = WeightedGpuGraph::new(&g, &rev, &mut prof);
        let sources: Vec<VertexId> = (0..129).map(|i| i % 9).collect();
        ConcurrentSssp::default().run_group(&wg, &sources, &mut prof);
    }
}
