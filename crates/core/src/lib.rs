//! iBFS: concurrent breadth-first search (SIGMOD 2016) on a simulated GPU.
//!
//! This crate implements the paper's contribution and every baseline it
//! compares against:
//!
//! | Engine | Paper role | Module |
//! |---|---|---|
//! | [`sequential::SequentialEngine`] | "Sequential" baseline and the B40C-like single-BFS GPU traversal (direction-optimizing, Enterprise-style) | [`sequential`] |
//! | [`naive::NaiveEngine`] | "Naive" concurrent baseline: private frontier queues + status arrays, one kernel per instance through Hyper-Q | [`naive`] |
//! | [`joint::JointEngine`] | Joint traversal: single kernel, joint frontier queue + joint status array + shared-memory adjacency cache (§4) | [`joint`] |
//! | [`bitwise::BitwiseEngine`] | Bitwise status array with early termination (§6); also the MS-BFS-style per-level-reset variant used as the Figure 20 baseline | [`bitwise`] |
//! | [`spmm::SpmmEngine`] | SpMM-BC-like top-down-only concurrent baseline | [`spmm`] |
//! | [`cpu::CpuIbfs`], [`cpu::CpuMsBfs`] | real multithreaded CPU implementations (Figure 22, Table 1) | [`cpu`] |
//!
//! GroupBy (§5) lives in [`groupby`]; the sharing-degree/-ratio theory of
//! Lemma 1/Theorem 1 in [`sharing`]; orchestration of full MSSP/APSP runs in
//! [`runner`]; the weighted-graph configuration (concurrent SSSP validated
//! against Dijkstra) in [`sssp`].
//!
//! # Quick start
//!
//! ```
//! use ibfs_graph::suite;
//! use ibfs::{engine::GpuGraph, bitwise::BitwiseEngine, engine::Engine};
//! use ibfs_gpu_sim::{DeviceConfig, Profiler};
//!
//! let graph = suite::figure1();
//! let reverse = graph.reverse();
//! let mut prof = Profiler::new(DeviceConfig::k40());
//! let g = GpuGraph::new(&graph, &reverse, &mut prof);
//! let run = BitwiseEngine::default().run_group(&g, &suite::FIGURE1_SOURCES, &mut prof);
//! // Depth of vertex 8 in the traversal from source 0 (paper Figure 1):
//! assert_eq!(run.depth_of(0, 8), 3);
//! ```

pub mod asyncq;
pub mod bitwise;
pub mod cpu;
pub mod cpu_baseline;
pub mod direction;
pub mod driver;
pub mod engine;
pub mod frontier;
pub mod groupby;
pub mod joint;
pub mod metrics;
pub mod naive;
pub mod pool;
pub mod runner;
pub mod sequential;
pub mod service;
pub mod sharing;
pub mod spmm;
pub mod sssp;
pub mod status;
pub mod tile;
pub mod trace;
pub mod word;

pub use cpu::{CpuEngine, CpuIbfs, CpuMsBfs, CpuOptions, CpuRun, CpuService, CPU_GROUP};
pub use driver::{LevelDriver, LevelEngine};
pub use engine::{Engine, EngineKind, GpuGraph, GroupRun};
pub use groupby::{GroupByConfig, Grouping, GroupingStrategy};
pub use runner::{IbfsRun, RunConfig};
pub use service::{
    admit_sources, BackToBack, DeviceScheduler, HyperQOverlap, IbfsService, RequestError,
};
pub use trace::{GroupStamp, JsonlSink, NullSink, RecorderSink, TraceSink, TraversalEvent};
pub use word::{StatusWord, WordWidth};
