//! The pre-pool CPU joint-BFS implementation, frozen as a baseline.
//!
//! This is the original `run_cpu` hot path before the persistent-pool
//! rewrite in [`crate::cpu`]: it respawns scoped threads in 3–4 waves per
//! BFS level, copies the entire status array (O(n)) every level, allocates
//! its `Vec<AtomicU64>` scratch per group, partitions the frontier queue
//! with static [`even_ranges`](ibfs_graph::partition::even_ranges), writes
//! depths in `[vertex][instance]` layout, and transposes at the end. It is
//! kept for two jobs:
//!
//! * the **differential oracle**: the pooled engine must produce bit-identical
//!   depths and `traversed_edges` (`tests/cpu_differential.rs`);
//! * the **measured old path** in `bfs cpu-bench`, so `BENCH_cpu.json`
//!   records pooled-vs-baseline wall-clock on the same workload.
//!
//! Capacity is the historical 64 instances (one `u64` register word).

use crate::cpu::CpuRun;
use crate::direction::{Direction, DirectionPolicy};
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Maximum instances per baseline group (one `u64` register word).
pub const BASELINE_GROUP: usize = 64;

fn full_mask(ni: usize) -> u64 {
    if ni >= 64 {
        u64::MAX
    } else {
        (1u64 << ni) - 1
    }
}

fn ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    ibfs_graph::partition::even_ranges(n, threads.max(1))
}

/// The frozen pre-pool level-synchronous implementation.
///
/// `early_termination` enables the iBFS bottom-up break; `per_level_reset`
/// adds the MS-BFS `visit`-map maintenance (an extra full sweep per level),
/// the cost difference the paper attributes to [26].
#[allow(clippy::too_many_arguments)]
pub fn run_cpu_baseline(
    csr: &Csr,
    rev: &Csr,
    sources: &[VertexId],
    policy: DirectionPolicy,
    threads: usize,
    early_termination: bool,
    per_level_reset: bool,
    max_levels: u32,
) -> CpuRun {
    let ni = sources.len();
    assert!(ni <= BASELINE_GROUP, "baseline group limited to {BASELINE_GROUP} instances");
    let n = csr.num_vertices();
    let total_edges = csr.num_edges() as u64;
    let full = full_mask(ni);
    let threads = if threads == 0 { crate::cpu::available_threads() } else { threads };

    let start = Instant::now();
    let mut level_seconds = Vec::new();
    // Status words; `cur` is read-only within a level, `next` is written.
    let cur: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    // Depths in `[vertex][instance]` order during the run so identification
    // threads (which own vertex ranges) write disjoint slices.
    let mut depths_vm = vec![DEPTH_UNVISITED; n * ni.max(1)];

    for (j, &s) in sources.iter().enumerate() {
        cur[s as usize].fetch_or(1 << j, Ordering::Relaxed);
        if ni > 0 {
            depths_vm[s as usize * ni + j] = 0;
        }
    }
    for v in 0..n {
        next[v].store(cur[v].load(Ordering::Relaxed), Ordering::Relaxed);
    }

    let mut queue: Vec<VertexId> = {
        let mut q: Vec<VertexId> = sources.to_vec();
        q.sort_unstable();
        q.dedup();
        q
    };
    let mut direction = Direction::TopDown;
    let mut frontier_edges: u64 = sources.iter().map(|&s| csr.out_degree(s) as u64).sum();
    let mut visited_edges = frontier_edges;
    let mut cur_ref: &[AtomicU64] = &cur;
    let mut next_ref: &[AtomicU64] = &next;

    let level_cap = if max_levels == 0 {
        crate::sequential::MAX_LEVELS
    } else {
        max_levels.min(crate::sequential::MAX_LEVELS)
    };
    for level in 1..=level_cap {
        if queue.is_empty() || ni == 0 {
            break;
        }
        let level_start = Instant::now();
        let depth = level as Depth;

        // next <- cur (parallelized sweep).
        std::thread::scope(|scope| {
            for r in ranges(n, threads) {
                let (cur_ref, next_ref) = (cur_ref, next_ref);
                scope.spawn(move || {
                    for v in r {
                        next_ref[v].store(cur_ref[v].load(Ordering::Relaxed), Ordering::Relaxed);
                    }
                });
            }
        });
        if per_level_reset {
            // MS-BFS maintains an extra visit map each level: model the
            // cost with one more sweep over the words.
            std::thread::scope(|scope| {
                for r in ranges(n, threads) {
                    let next_ref = next_ref;
                    scope.spawn(move || {
                        for v in r {
                            // A load+store of the visit word.
                            let w = next_ref[v].load(Ordering::Relaxed);
                            next_ref[v].store(w, Ordering::Relaxed);
                        }
                    });
                }
            });
        }

        // Traversal.
        match direction {
            Direction::TopDown => {
                std::thread::scope(|scope| {
                    for r in ranges(queue.len(), threads) {
                        let q = &queue[r];
                        let (cur_ref, next_ref) = (cur_ref, next_ref);
                        scope.spawn(move || {
                            for &f in q {
                                let mask = cur_ref[f as usize].load(Ordering::Relaxed);
                                for &w in csr.neighbors(f) {
                                    let old = next_ref[w as usize].load(Ordering::Relaxed);
                                    if mask & !old != 0 {
                                        next_ref[w as usize].fetch_or(mask, Ordering::Relaxed);
                                    }
                                }
                            }
                        });
                    }
                });
            }
            Direction::BottomUp => {
                std::thread::scope(|scope| {
                    for r in ranges(queue.len(), threads) {
                        let q = &queue[r];
                        let (cur_ref, next_ref) = (cur_ref, next_ref);
                        scope.spawn(move || {
                            for &f in q {
                                // Only this thread writes f's word.
                                let mut acc = next_ref[f as usize].load(Ordering::Relaxed);
                                for &p in rev.neighbors(f) {
                                    if early_termination && acc & full == full {
                                        break;
                                    }
                                    acc |= cur_ref[p as usize].load(Ordering::Relaxed);
                                }
                                next_ref[f as usize].store(acc, Ordering::Relaxed);
                            }
                        });
                    }
                });
            }
        }

        // Identification: diff words, record depths, build the next queue.
        struct Part {
            new_marked: u64,
            new_edges: u64,
            td_queue: Vec<VertexId>,
            bu_queue: Vec<VertexId>,
        }
        let rs = ranges(n, threads);
        let mut parts: Vec<Part> = Vec::with_capacity(rs.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest: &mut [Depth] = &mut depths_vm;
            let mut offset = 0usize;
            for r in rs {
                let take = (r.end - r.start) * ni;
                debug_assert_eq!(r.start * ni, offset);
                let (mine, tail) = rest.split_at_mut(take);
                rest = tail;
                offset += take;
                let (cur_ref, next_ref) = (cur_ref, next_ref);
                handles.push(scope.spawn(move || {
                    let mut part = Part {
                        new_marked: 0,
                        new_edges: 0,
                        td_queue: Vec::new(),
                        bu_queue: Vec::new(),
                    };
                    for (i, v) in r.clone().enumerate() {
                        let old = cur_ref[v].load(Ordering::Relaxed);
                        let new = next_ref[v].load(Ordering::Relaxed);
                        let diff = new & !old;
                        if diff != 0 {
                            let mut m = diff;
                            while m != 0 {
                                let j = m.trailing_zeros() as usize;
                                m &= m - 1;
                                mine[i * ni + j] = depth;
                            }
                            part.new_marked += diff.count_ones() as u64;
                            part.new_edges +=
                                diff.count_ones() as u64 * csr.out_degree(v as VertexId) as u64;
                            part.td_queue.push(v as VertexId);
                        }
                        if new & full != full {
                            part.bu_queue.push(v as VertexId);
                        }
                    }
                    part
                }));
            }
            for h in handles {
                parts.push(h.join().unwrap());
            }
        });

        let new_marked: u64 = parts.iter().map(|p| p.new_marked).sum();
        let new_edges: u64 = parts.iter().map(|p| p.new_edges).sum();
        visited_edges += new_edges;
        frontier_edges = new_edges;

        let next_direction = policy.next(
            direction,
            frontier_edges,
            new_marked,
            (total_edges * ni as u64).saturating_sub(visited_edges),
            (n * ni) as u64,
        );
        queue = match next_direction {
            Direction::TopDown => parts.into_iter().flat_map(|p| p.td_queue).collect(),
            Direction::BottomUp => parts.into_iter().flat_map(|p| p.bu_queue).collect(),
        };
        direction = next_direction;
        // Swap buffers.
        std::mem::swap(&mut cur_ref, &mut next_ref);
        level_seconds.push(level_start.elapsed().as_secs_f64());
        if new_marked == 0 {
            break;
        }
    }

    // Transpose depths to `[instance][vertex]`.
    let mut depths = vec![DEPTH_UNVISITED; ni * n];
    for v in 0..n {
        for j in 0..ni {
            depths[j * n + v] = depths_vm[v * ni + j];
        }
    }
    let traversed = crate::engine::traversed_edges_for(csr, &depths, ni);
    CpuRun {
        num_instances: ni,
        num_vertices: n,
        depths,
        wall_seconds: start.elapsed().as_secs_f64(),
        traversed_edges: traversed,
        level_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::reference_bfs;

    #[test]
    fn baseline_matches_reference_figure1() {
        let g = figure1();
        let r = g.reverse();
        let run = run_cpu_baseline(
            &g,
            &r,
            &FIGURE1_SOURCES,
            DirectionPolicy::default(),
            2,
            true,
            false,
            0,
        );
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..]);
        }
        assert!(!run.level_seconds.is_empty());
    }
}
