//! Orchestration of full iBFS runs: group the requested sources, run each
//! group through the chosen engine on one simulated device, aggregate.
//!
//! This is the top of the paper's stack: `i` sources (SSSP when `i = 1`,
//! MSSP for `1 < i < |V|`, APSP when `i = |V|`), partitioned into groups of
//! at most `N` by a [`GroupingStrategy`], each group traversed jointly, the
//! groups executed back to back on the device.
//!
//! [`run_ibfs`]/[`run_apsp`] are one-shot conveniences over
//! [`crate::service::IbfsService`], which owns the uploaded graph across
//! requests; use the service directly when serving more than one batch.

use crate::engine::{EngineKind, GroupRun};
use crate::frontier::{FQ_ID_BYTES, JFQ_MASK_BYTES};
use crate::groupby::GroupingStrategy;
use crate::service::IbfsService;
use crate::status::SA_BYTES_PER_VERTEX;
use ibfs_graph::{Csr, VertexId};
use ibfs_gpu_sim::{Counters, DeviceConfig};

/// Configuration of a full run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Which engine executes each group.
    pub engine: EngineKind,
    /// How sources are grouped.
    pub grouping: GroupingStrategy,
    /// Simulated device.
    pub device: DeviceConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            engine: EngineKind::Bitwise,
            grouping: GroupingStrategy::group_by(),
            device: DeviceConfig::k40(),
        }
    }
}

/// Aggregated result of a full iBFS run.
#[derive(Debug)]
pub struct IbfsRun {
    /// Per-group results, in execution order.
    pub groups: Vec<GroupRun>,
    /// Total simulated seconds (groups run back to back on one device).
    pub sim_seconds: f64,
    /// Total traversed edges across instances.
    pub traversed_edges: u64,
    /// Total device counters for the whole run.
    pub counters: Counters,
}

impl IbfsRun {
    /// Aggregate traversal rate.
    pub fn teps(&self) -> f64 {
        crate::metrics::teps(self.traversed_edges, self.sim_seconds)
    }

    /// Number of instances run.
    pub fn num_instances(&self) -> usize {
        self.groups.iter().map(|g| g.num_instances).sum()
    }

    /// Overall sharing degree across groups (weighted by joint-queue size).
    pub fn sharing_degree(&self) -> f64 {
        crate::metrics::sharing_degree(self.groups.iter().flat_map(|g| g.levels.iter()))
    }
}

/// The §3 device-memory bound on group size for this graph and engine:
/// `N <= (M - S - |JFQ|) / |SA|`, with `S` the CSR bytes (both directions),
/// `|JFQ|` a full-|V| joint queue with ballot masks, and `|SA|` one byte per
/// vertex per instance (the JSA; the bitwise engine needs 8x less, so this
/// is the conservative bound).
pub fn device_group_bound(graph: &Csr, device: &DeviceConfig, cap: u32) -> u32 {
    let graph_bytes = graph.storage_bytes() * 2;
    let jfq_bytes = graph.num_vertices() as u64 * (FQ_ID_BYTES + JFQ_MASK_BYTES);
    let sa_bytes = graph.num_vertices() as u64 * SA_BYTES_PER_VERTEX;
    device.max_group_size(graph_bytes, jfq_bytes, sa_bytes, cap)
}

/// Runs iBFS from every source in `sources` on `graph`.
///
/// `reverse` must be `graph.reverse()` (pass the same graph when symmetric —
/// the suite graphs are). The grouping's group size is clamped to the §3
/// device-memory bound. One-shot wrapper over
/// [`IbfsService`]: upload, serve one request, discard the device.
pub fn run_ibfs(graph: &Csr, reverse: &Csr, sources: &[VertexId], config: &RunConfig) -> IbfsRun {
    IbfsService::new(graph, reverse, config.clone()).run(sources)
}

/// Convenience: all-pairs shortest path — BFS from every vertex (optionally
/// capped at `max_sources` for laptop-scale reproduction runs, keeping the
/// per-group behaviour identical).
pub fn run_apsp(graph: &Csr, reverse: &Csr, max_sources: usize, config: &RunConfig) -> IbfsRun {
    let n = graph.num_vertices().min(max_sources);
    let sources: Vec<VertexId> = (0..n as VertexId).collect();
    run_ibfs(graph, reverse, &sources, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::validate::reference_bfs;

    fn small_graph() -> Csr {
        rmat(8, 8, RmatParams::graph500(), 31)
    }

    #[test]
    fn full_run_produces_correct_depths_for_every_engine() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..48).collect();
        for engine in EngineKind::all() {
            let config = RunConfig {
                engine,
                grouping: GroupingStrategy::Random { seed: 3, group_size: 16 },
                ..Default::default()
            };
            let run = run_ibfs(&g, &r, &sources, &config);
            assert_eq!(run.num_instances(), 48);
            // Reassemble (group, instance) → source and validate depths.
            let grouping = config.grouping.group(&g, &sources);
            for (gi, group) in grouping.groups.iter().enumerate() {
                for (j, &s) in group.iter().enumerate() {
                    assert_eq!(
                        run.groups[gi].instance_depths(j),
                        &reference_bfs(&g, s)[..],
                        "engine {engine:?} group {gi} source {s}"
                    );
                }
            }
            assert!(run.sim_seconds > 0.0);
            assert!(run.teps() > 0.0);
        }
    }

    #[test]
    fn groupby_run_beats_random_run() {
        // Figure 15's final bar: GroupBy ≈ 2× over random grouping for the
        // bitwise engine.
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = g.vertices().collect();

        let random = run_ibfs(&g, &r, &sources, &RunConfig {
            engine: EngineKind::Bitwise,
            grouping: GroupingStrategy::Random { seed: 5, group_size: 64 },
            ..Default::default()
        });
        let grouped = run_ibfs(&g, &r, &sources, &RunConfig {
            engine: EngineKind::Bitwise,
            grouping: GroupingStrategy::OutDegreeRules(
                crate::groupby::GroupByConfig::default().with_group_size(64).with_q(32),
            ),
            ..Default::default()
        });
        assert!(grouped.sharing_degree() > random.sharing_degree());
        assert!(
            grouped.sim_seconds < random.sim_seconds,
            "groupby {} vs random {}",
            grouped.sim_seconds,
            random.sim_seconds
        );
    }

    #[test]
    fn group_size_clamped_by_device_memory() {
        // A device with barely more memory than the graph forces smaller
        // groups (the paper's §3 bound).
        let g = small_graph();
        let r = g.reverse();
        let mut device = ibfs_gpu_sim::DeviceConfig::k40();
        // Room for the graph plus ~8 status arrays only.
        device.global_mem_bytes =
            g.storage_bytes() * 2 + g.num_vertices() as u64 * 20 + g.num_vertices() as u64 * 10;
        let bound = device_group_bound(&g, &device, 128);
        assert!((1..=16).contains(&bound), "bound {bound}");
        let sources: Vec<VertexId> = (0..64).collect();
        let run = run_ibfs(&g, &r, &sources, &RunConfig {
            engine: EngineKind::Bitwise,
            grouping: GroupingStrategy::Random { seed: 1, group_size: 128 },
            device,
        });
        assert!(run
            .groups
            .iter()
            .all(|gr| gr.num_instances <= bound as usize));
        assert_eq!(run.num_instances(), 64);
    }

    #[test]
    fn apsp_caps_sources() {
        let g = small_graph();
        let r = g.reverse();
        let run = run_apsp(&g, &r, 10, &RunConfig::default());
        assert_eq!(run.num_instances(), 10);
    }
}
