//! Naive concurrent baseline: one kernel per instance through Hyper-Q.
//!
//! "A naive implementation of concurrent BFS will run all BFS instances
//! separately and keep its own private frontier queue and status array ...
//! four kernels will run four BFS instances in parallel from four source
//! vertices" (§2). Each instance does exactly the work of the sequential
//! engine — same private data structures, same traffic — but the kernels
//! execute concurrently on one device, sharing its memory bandwidth.
//! Because BFS is memory-bound, concurrency buys almost nothing; the paper
//! measures naive at roughly sequential performance, and the Hyper-Q model
//! reproduces that.

use crate::direction::DirectionPolicy;
use crate::engine::{traversed_edges_for, Engine, GpuGraph, GroupRun};
use crate::sequential::{merge_level_stats, run_single};
use crate::trace::TraceSink;
use ibfs_graph::VertexId;
use ibfs_gpu_sim::hyperq::concurrent_cycles;
use ibfs_gpu_sim::{CostModel, Profiler};

/// The naive concurrent engine.
#[derive(Clone, Copy, Debug)]
pub struct NaiveEngine {
    /// Direction-switch policy for each private instance.
    pub policy: DirectionPolicy,
    /// Bandwidth-efficiency penalty when many kernels interleave their
    /// memory streams (DRAM row locality lost). The paper observes naive
    /// sometimes *underperforming* sequential (78% on KG1); this is the
    /// knob that reproduces it.
    pub contention: f64,
}

impl Default for NaiveEngine {
    fn default() -> Self {
        NaiveEngine {
            policy: DirectionPolicy::default(),
            contention: 1.15,
        }
    }
}

impl Engine for NaiveEngine {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn run_group_traced(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
        sink: &mut dyn TraceSink,
    ) -> GroupRun {
        let before = prof.snapshot();
        let model = CostModel::new(prof.config);
        let n = g.num_vertices();
        let mut depths = Vec::with_capacity(sources.len() * n);
        let mut all_levels = Vec::with_capacity(sources.len());
        let mut demands = Vec::with_capacity(sources.len());
        let mut total_phases = 0u64;
        for &s in sources {
            let mut run = run_single(g, s, self.policy, prof, sink);
            depths.extend_from_slice(&run.depths);
            all_levels.push(run.levels);
            // Interleaved kernels lose DRAM row locality: bandwidth-side
            // demand inflates by the contention factor when more than one
            // kernel shares the device.
            if sources.len() > 1 {
                run.demand.memory_cycles *= self.contention;
            }
            demands.push(run.demand);
            total_phases += run.launches;
        }
        // Kernels overlap through Hyper-Q on the device, but every kernel
        // launch still passes through the host driver serially.
        let cycles = concurrent_cycles(&demands, prof.config.hyperq_streams)
            + total_phases as f64 * model.launch_overhead_cycles;
        let counters = prof.snapshot().delta(&before);
        let traversed = traversed_edges_for(g.csr, &depths, sources.len());
        GroupRun {
            engine: self.name(),
            num_instances: sources.len(),
            num_vertices: n,
            depths,
            levels: merge_level_stats(&all_levels),
            counters,
            sim_seconds: model.seconds(cycles),
            traversed_edges: traversed,
            kernel_launches: total_phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialEngine;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::reference_bfs;
    use ibfs_gpu_sim::DeviceConfig;

    #[test]
    fn matches_reference_on_figure1() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = NaiveEngine::default().run_group(&gg, &FIGURE1_SOURCES, &mut prof);
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..]);
        }
    }

    #[test]
    fn same_traffic_as_sequential_but_not_slower() {
        // The paper: naive ≈ sequential in time, identical total work.
        let g = rmat(9, 8, RmatParams::graph500(), 3);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..16).collect();

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let g1 = GpuGraph::new(&g, &r, &mut p1);
        let seq = SequentialEngine::default().run_group(&g1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let g2 = GpuGraph::new(&g, &r, &mut p2);
        let naive = NaiveEngine::default().run_group(&g2, &sources, &mut p2);

        assert_eq!(
            seq.counters.global_load_transactions,
            naive.counters.global_load_transactions
        );
        assert_eq!(
            seq.counters.global_store_transactions,
            naive.counters.global_store_transactions
        );
        assert_eq!(seq.depths, naive.depths);
        // The paper's observation: naive runs "approximately the same" as
        // sequential — concurrency overlaps compute but launches serialize
        // on the host and bandwidth contention eats the rest.
        let ratio = naive.sim_seconds / seq.sim_seconds;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "naive/seq ratio {ratio} out of the 'roughly equal' band"
        );
    }

    #[test]
    fn empty_source_list_is_empty_run() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = NaiveEngine::default().run_group(&gg, &[], &mut prof);
        assert_eq!(run.num_instances, 0);
        assert_eq!(run.traversed_edges, 0);
        assert!(run.depths.is_empty());
    }
}
