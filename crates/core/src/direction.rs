//! Direction-optimizing BFS policy (Beamer et al., SC'12).
//!
//! "BFS typically starts the traversal in top-down and switches to bottom-up
//! in a later stage" (§2). The switch heuristic is the standard
//! direction-optimizing one: go bottom-up when the frontier's out-edges
//! exceed a fraction of the unexplored edges, return to top-down when the
//! frontier shrinks back below a fraction of the vertices. All engines share
//! this policy so their traversal orders — and therefore their per-level
//! frontier sets — are comparable.

use ibfs_util::{json_enum, json_struct};

/// Traversal direction at one BFS level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Expand from the frontier to unvisited neighbors.
    TopDown,
    /// Unvisited vertices search their neighbors for a visited parent.
    BottomUp,
}

json_enum!(Direction { TopDown, BottomUp });

/// The α/β heuristic of direction-optimizing BFS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectionPolicy {
    /// Switch top-down → bottom-up when
    /// `frontier_edges > unexplored_edges / alpha`.
    pub alpha: f64,
    /// Switch bottom-up → top-down when
    /// `frontier_vertices < total_vertices / beta`.
    pub beta: f64,
}

// `top_down_only()` carries `alpha = +inf`; the util codec maps non-finite
// floats to strings so this round-trips.
json_struct!(DirectionPolicy { alpha, beta });

impl DirectionPolicy {
    /// Beamer's published defaults.
    pub fn beamer() -> Self {
        DirectionPolicy { alpha: 14.0, beta: 24.0 }
    }

    /// A policy that never leaves top-down (the SpMM-BC baseline "does not
    /// support bottom-up BFS").
    pub fn top_down_only() -> Self {
        DirectionPolicy { alpha: f64::INFINITY, beta: 0.0 }
    }

    /// Decides the direction of the next level.
    ///
    /// * `current` — direction just executed.
    /// * `frontier_edges` — out-edges of the next frontier.
    /// * `frontier_vertices` — size of the next frontier.
    /// * `unexplored_edges` — out-edges of still-unvisited vertices.
    /// * `total_vertices` — `|V|`.
    pub fn next(
        &self,
        current: Direction,
        frontier_edges: u64,
        frontier_vertices: u64,
        unexplored_edges: u64,
        total_vertices: u64,
    ) -> Direction {
        match current {
            Direction::TopDown => {
                if self.alpha.is_finite()
                    && frontier_edges as f64 > unexplored_edges as f64 / self.alpha
                {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                }
            }
            Direction::BottomUp => {
                if (frontier_vertices as f64) < total_vertices as f64 / self.beta {
                    Direction::TopDown
                } else {
                    Direction::BottomUp
                }
            }
        }
    }
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        DirectionPolicy::beamer()
    }
}

/// Bounds and step of the online α/β autotuner.
pub mod tune {
    /// Groups observed before the tuner freezes.
    pub const TUNE_GROUPS: u64 = 4;
    /// Lower clamp for both α and β.
    pub const MIN: f64 = 4.0;
    /// Upper clamp for both α and β.
    pub const MAX: f64 = 64.0;
    /// Multiplicative adjustment per retune.
    pub const STEP: f64 = 1.25;
    /// Deadband around a cost ratio of 1.0: measured ratios inside
    /// `[1/DEADBAND, DEADBAND]` are treated as noise and not acted on.
    pub const DEADBAND: f64 = 1.25;
}

/// Online α/β autotuner driven by measured per-direction phase cost.
///
/// The Beamer thresholds encode a cost model: switch to bottom-up when
/// scanning the unvisited set becomes cheaper than expanding the frontier.
/// The right constants depend on the machine and the layout — exactly what
/// the profiler measures. The tuner watches the first
/// [`tune::TUNE_GROUPS`] groups of a service's lifetime and compares the
/// measured *per steal-chunk* cost of bottom-up sweeps against top-down
/// expansions (steal chunks are degree-balanced, so they are a
/// unit-of-work proxy that is valid across directions):
///
/// * bottom-up measurably cheaper → raise α (switch earlier) and lower β
///   (switch back later);
/// * bottom-up measurably dearer → the reverse.
///
/// Every move is one bounded multiplicative [`tune::STEP`], clamped to
/// `[`[`tune::MIN`]`, `[`tune::MAX`]`]`, with a deadband so timing noise
/// near parity never causes churn; after the window the policy is frozen.
/// The wall-clock inputs are inherently nondeterministic, but the tuner's
/// *decision function* is deterministic in them, its excursion is bounded
/// by clamp and window, and — the invariant the differential walls pin —
/// BFS depths are independent of the direction schedule, so no tuner state
/// can ever change a result bit.
#[derive(Clone, Copy, Debug)]
pub struct DirectionTuner {
    policy: DirectionPolicy,
    groups_seen: u64,
    retunes: u64,
}

impl DirectionTuner {
    /// Starts from `initial` (usually the configured policy).
    pub fn new(initial: DirectionPolicy) -> Self {
        DirectionTuner { policy: initial, groups_seen: 0, retunes: 0 }
    }

    /// The current (possibly retuned) policy to run the next group with.
    pub fn policy(&self) -> DirectionPolicy {
        self.policy
    }

    /// Whether the observation window is exhausted.
    pub fn frozen(&self) -> bool {
        self.groups_seen >= tune::TUNE_GROUPS
    }

    /// Retunes applied so far.
    pub fn retunes(&self) -> u64 {
        self.retunes
    }

    /// Feeds one group's measured phase totals: seconds and degree-balanced
    /// steal chunks claimed, per direction. Returns `true` when α/β moved.
    /// Groups that never ran both directions (or ran them too briefly to
    /// time) advance the window without moving anything.
    pub fn observe(
        &mut self,
        td_seconds: f64,
        td_chunks: u64,
        bu_seconds: f64,
        bu_chunks: u64,
    ) -> bool {
        if self.frozen() {
            return false;
        }
        self.groups_seen += 1;
        if td_chunks == 0 || bu_chunks == 0 || td_seconds <= 0.0 || bu_seconds <= 0.0 {
            return false;
        }
        // Only tune policies that actually switch directions: an
        // `alpha = +inf` top-down-only policy is a semantic choice
        // (baseline parity), not a performance setting.
        if !self.policy.alpha.is_finite() || self.policy.beta <= 0.0 {
            return false;
        }
        let td_cost = td_seconds / td_chunks as f64;
        let bu_cost = bu_seconds / bu_chunks as f64;
        let ratio = bu_cost / td_cost;
        let (alpha, beta) = if ratio * tune::DEADBAND < 1.0 {
            // Bottom-up cheap: switch earlier, return later.
            (self.policy.alpha * tune::STEP, self.policy.beta / tune::STEP)
        } else if ratio > tune::DEADBAND {
            (self.policy.alpha / tune::STEP, self.policy.beta * tune::STEP)
        } else {
            return false;
        };
        let alpha = alpha.clamp(tune::MIN, tune::MAX);
        let beta = beta.clamp(tune::MIN, tune::MAX);
        if alpha == self.policy.alpha && beta == self.policy.beta {
            return false;
        }
        self.policy = DirectionPolicy { alpha, beta };
        self.retunes += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_top_down_for_small_frontiers() {
        let p = DirectionPolicy::beamer();
        let d = p.next(Direction::TopDown, 10, 5, 10_000, 1_000);
        assert_eq!(d, Direction::TopDown);
    }

    #[test]
    fn switches_to_bottom_up_on_frontier_explosion() {
        let p = DirectionPolicy::beamer();
        // frontier edges 2000 > 10_000/14 ≈ 714.
        let d = p.next(Direction::TopDown, 2_000, 500, 10_000, 1_000);
        assert_eq!(d, Direction::BottomUp);
    }

    #[test]
    fn returns_to_top_down_when_frontier_shrinks() {
        let p = DirectionPolicy::beamer();
        let stay = p.next(Direction::BottomUp, 0, 500, 0, 1_000);
        assert_eq!(stay, Direction::BottomUp);
        // 30 < 1000/24 ≈ 41.7.
        let back = p.next(Direction::BottomUp, 0, 30, 0, 1_000);
        assert_eq!(back, Direction::TopDown);
    }

    #[test]
    fn top_down_only_never_switches() {
        let p = DirectionPolicy::top_down_only();
        let d = p.next(Direction::TopDown, u64::MAX / 2, 999, 1, 1_000);
        assert_eq!(d, Direction::TopDown);
    }

    #[test]
    fn tuner_moves_toward_the_cheap_direction_within_bounds() {
        let mut t = DirectionTuner::new(DirectionPolicy::beamer());
        // Bottom-up 4x cheaper per chunk: α must rise, β must fall.
        assert!(t.observe(4.0, 100, 1.0, 100));
        let p = t.policy();
        assert!(p.alpha > 14.0 && p.beta < 24.0, "got {p:?}");
        // Keep feeding the same signal: the excursion stays clamped.
        for _ in 0..20 {
            t.observe(4.0, 100, 1.0, 100);
        }
        let p = t.policy();
        assert!(p.alpha <= tune::MAX && p.beta >= tune::MIN, "clamp violated: {p:?}");
        assert!(t.frozen(), "window must close after TUNE_GROUPS groups");
        assert!(t.retunes() >= 1 && t.retunes() <= tune::TUNE_GROUPS);
    }

    #[test]
    fn tuner_is_inert_on_noise_partial_observations_and_fixed_policies() {
        // Inside the deadband: no move.
        let mut t = DirectionTuner::new(DirectionPolicy::beamer());
        assert!(!t.observe(1.0, 100, 1.1, 100));
        assert_eq!(t.policy(), DirectionPolicy::beamer());
        // A group that never went bottom-up cannot tune (but still counts
        // against the window).
        assert!(!t.observe(1.0, 100, 0.0, 0));
        // Top-down-only policies are semantic, never tuned.
        let mut fixed = DirectionTuner::new(DirectionPolicy::top_down_only());
        assert!(!fixed.observe(10.0, 100, 1.0, 100));
        assert_eq!(fixed.policy(), DirectionPolicy::top_down_only());
        // After the window, even a loud signal is ignored.
        let mut t = DirectionTuner::new(DirectionPolicy::beamer());
        for _ in 0..tune::TUNE_GROUPS {
            t.observe(1.0, 100, 1.0, 100);
        }
        assert!(t.frozen());
        assert!(!t.observe(100.0, 100, 1.0, 100));
    }

    #[test]
    fn tuner_moves_are_deterministic_in_their_inputs() {
        let feed = [(2.0, 80u64, 1.0, 40u64), (1.0, 50, 3.0, 60), (5.0, 10, 1.0, 10)];
        let run = || {
            let mut t = DirectionTuner::new(DirectionPolicy::beamer());
            for (a, b, c, d) in feed {
                t.observe(a, b, c, d);
            }
            (t.policy(), t.retunes())
        };
        assert_eq!(run(), run());
    }
}
