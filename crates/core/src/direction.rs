//! Direction-optimizing BFS policy (Beamer et al., SC'12).
//!
//! "BFS typically starts the traversal in top-down and switches to bottom-up
//! in a later stage" (§2). The switch heuristic is the standard
//! direction-optimizing one: go bottom-up when the frontier's out-edges
//! exceed a fraction of the unexplored edges, return to top-down when the
//! frontier shrinks back below a fraction of the vertices. All engines share
//! this policy so their traversal orders — and therefore their per-level
//! frontier sets — are comparable.

use ibfs_util::{json_enum, json_struct};

/// Traversal direction at one BFS level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Expand from the frontier to unvisited neighbors.
    TopDown,
    /// Unvisited vertices search their neighbors for a visited parent.
    BottomUp,
}

json_enum!(Direction { TopDown, BottomUp });

/// The α/β heuristic of direction-optimizing BFS.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectionPolicy {
    /// Switch top-down → bottom-up when
    /// `frontier_edges > unexplored_edges / alpha`.
    pub alpha: f64,
    /// Switch bottom-up → top-down when
    /// `frontier_vertices < total_vertices / beta`.
    pub beta: f64,
}

// `top_down_only()` carries `alpha = +inf`; the util codec maps non-finite
// floats to strings so this round-trips.
json_struct!(DirectionPolicy { alpha, beta });

impl DirectionPolicy {
    /// Beamer's published defaults.
    pub fn beamer() -> Self {
        DirectionPolicy { alpha: 14.0, beta: 24.0 }
    }

    /// A policy that never leaves top-down (the SpMM-BC baseline "does not
    /// support bottom-up BFS").
    pub fn top_down_only() -> Self {
        DirectionPolicy { alpha: f64::INFINITY, beta: 0.0 }
    }

    /// Decides the direction of the next level.
    ///
    /// * `current` — direction just executed.
    /// * `frontier_edges` — out-edges of the next frontier.
    /// * `frontier_vertices` — size of the next frontier.
    /// * `unexplored_edges` — out-edges of still-unvisited vertices.
    /// * `total_vertices` — `|V|`.
    pub fn next(
        &self,
        current: Direction,
        frontier_edges: u64,
        frontier_vertices: u64,
        unexplored_edges: u64,
        total_vertices: u64,
    ) -> Direction {
        match current {
            Direction::TopDown => {
                if self.alpha.is_finite()
                    && frontier_edges as f64 > unexplored_edges as f64 / self.alpha
                {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                }
            }
            Direction::BottomUp => {
                if (frontier_vertices as f64) < total_vertices as f64 / self.beta {
                    Direction::TopDown
                } else {
                    Direction::BottomUp
                }
            }
        }
    }
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        DirectionPolicy::beamer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_top_down_for_small_frontiers() {
        let p = DirectionPolicy::beamer();
        let d = p.next(Direction::TopDown, 10, 5, 10_000, 1_000);
        assert_eq!(d, Direction::TopDown);
    }

    #[test]
    fn switches_to_bottom_up_on_frontier_explosion() {
        let p = DirectionPolicy::beamer();
        // frontier edges 2000 > 10_000/14 ≈ 714.
        let d = p.next(Direction::TopDown, 2_000, 500, 10_000, 1_000);
        assert_eq!(d, Direction::BottomUp);
    }

    #[test]
    fn returns_to_top_down_when_frontier_shrinks() {
        let p = DirectionPolicy::beamer();
        let stay = p.next(Direction::BottomUp, 0, 500, 0, 1_000);
        assert_eq!(stay, Direction::BottomUp);
        // 30 < 1000/24 ≈ 41.7.
        let back = p.next(Direction::BottomUp, 0, 30, 0, 1_000);
        assert_eq!(back, Direction::TopDown);
    }

    #[test]
    fn top_down_only_never_switches() {
        let p = DirectionPolicy::top_down_only();
        let d = p.next(Direction::TopDown, u64::MAX / 2, 999, 1, 1_000);
        assert_eq!(d, Direction::TopDown);
    }
}
