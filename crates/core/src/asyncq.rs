//! Asynchronous (label-correcting) FIFO engine — the `async.rs` of the
//! CPU engine round 2 (named `asyncq` because `async` is a Rust keyword).
//!
//! The pooled and tiled engines are *level-synchronous*: every BFS level
//! costs three to four pool barriers, which dominates on high-diameter
//! inputs — a road-network-like mesh has O(√n) levels of tiny frontiers,
//! so the engine spends its time in condvar handshakes, not edge work
//! (Buluç & Madduri, arXiv:1104.4518; Galois' Async variant). This engine
//! removes the level barrier entirely:
//!
//! * **One parallel phase.** The whole traversal is a single
//!   [`WorkerPool::run`] dispatch; lanes run until global quiescence.
//! * **CAS-min depth words.** Per-`(instance, vertex)` depths in
//!   [`AtomicDepth`] cells, lowered through a compare-exchange min (the
//!   parlay `multi_BFS` idiom). Depths only ever decrease, so work order
//!   is free: any interleaving converges to the true BFS depths.
//! * **Concurrent FIFO of tile blocks.** The winner of a relaxation
//!   enqueues the vertex's [`TilePlan`] tiles as work items; items travel
//!   in blocks through a shared deque, with a per-lane buffer absorbing
//!   the common case (AsyncTile: hubs split here too).
//! * **Quiescence counter.** A pending-items counter is incremented
//!   before items become visible and decremented only after a block is
//!   fully processed; lanes exit when the queue, their own buffer, and
//!   the counter are all drained. The counter over-approximates live
//!   work, so no lane can exit while another still holds items — and no
//!   lane blocks on another's progress, so thread counts far above the
//!   frontier width cannot deadlock (pinned by `tests/async_equivalence.rs`).
//!
//! The price of reordering: per-level timings and the level-synchronous
//! direction machinery do not exist here, and a vertex may be relaxed
//! several times as better depths race in. Final depths are the invariant
//! (equal to `reference_bfs`); `traversed_edges` is still reported because
//! it is *derived from depths*, but the amount of work actually performed
//! is nondeterministic — which is why the async test wall pins depths, not
//! edge counts.
//!
//! Vertex reordering ([`CpuOptions::reorder`]) composes with this engine
//! for free: [`crate::cpu::CpuService::run_group`] hands `run_async` the
//! relabeled CSR and pre-mapped sources and maps the depth table back out
//! afterward, so nothing here knows whether the space is permuted —
//! `tests/reorder_differential.rs` pins the async rows of that wall.

use crate::cpu::{CpuOptions, CpuRun, CpuStats};
use crate::pool::WorkerPool;
use crate::word::AtomicDepth;
use ibfs_graph::tiling::TilePlan;
use ibfs_graph::{Csr, VertexId, DEPTH_UNVISITED};
use ibfs_obs::{EngineProfiler, ProfPhase};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Items per FIFO block: big enough to amortize the deque lock, small
/// enough that stragglers get shared promptly.
const BLOCK: usize = 256;

/// One unit of async work: tile `t` of instance `j`'s copy of vertex `v`.
#[derive(Clone, Copy)]
struct Item {
    v: VertexId,
    j: u32,
    t: u32,
}

struct Fifo {
    global: Mutex<VecDeque<Vec<Item>>>,
    /// Items created but not yet fully processed (see module docs).
    pending: AtomicUsize,
    items: AtomicU64,
    relaxed: AtomicU64,
}

/// Runs one group through the asynchronous engine. Width plays no role
/// here (depths are per-instance bytes, not shared status words); the
/// group size limit is enforced by the caller's admission.
pub(crate) fn run_async(
    csr: &Csr,
    opts: &CpuOptions,
    pool: &WorkerPool,
    plan: &TilePlan,
    stats: &mut CpuStats,
    prof: Option<&EngineProfiler>,
    sources: &[VertexId],
) -> CpuRun {
    let ni = sources.len();
    let n = csr.num_vertices();
    let cap = if opts.max_levels == 0 {
        crate::sequential::MAX_LEVELS
    } else {
        opts.max_levels.min(crate::sequential::MAX_LEVELS)
    } as u8;

    let start = Instant::now();
    let depths: Vec<AtomicDepth> = (0..ni * n).map(|_| AtomicDepth::unvisited()).collect();
    let fifo = Fifo {
        global: Mutex::new(VecDeque::new()),
        pending: AtomicUsize::new(0),
        items: AtomicU64::new(0),
        relaxed: AtomicU64::new(0),
    };

    // Seed: depth 0 for every source, its tiles as the initial work.
    {
        let mut seed: Vec<Item> = Vec::new();
        for (j, &s) in sources.iter().enumerate() {
            depths[j * n + s as usize].store(0);
            let deg = csr.out_degree(s);
            if deg > 0 {
                for t in 0..plan.tile_count(deg) {
                    seed.push(Item { v: s, j: j as u32, t: t as u32 });
                }
            }
        }
        fifo.pending.store(seed.len(), Ordering::Relaxed);
        let mut q = fifo.global.lock().unwrap();
        for block in seed.chunks(BLOCK) {
            q.push_back(block.to_vec());
        }
    }

    let phase_start = Instant::now();
    let track = prof.map(|p| p.open_track()).unwrap_or(0);
    let (depths_ref, fifo_ref) = (&depths[..], &fifo);
    // The whole traversal is one barrier-free drain phase; level 0 stands
    // in for "no levels here" (see module docs).
    pool.run_profiled(prof, track, 0, ProfPhase::AsyncDrain, |_lane| {
        let mut out: Vec<Item> = Vec::with_capacity(BLOCK);
        let mut items = 0u64;
        let mut relaxed = 0u64;
        loop {
            let block = fifo_ref.global.lock().unwrap().pop_front();
            let block = match block {
                Some(b) => b,
                None if !out.is_empty() => std::mem::take(&mut out),
                None => {
                    // `pending` counts every item not yet fully processed,
                    // including blocks mid-flight on other lanes whose
                    // relaxations may still enqueue new work here.
                    if fifo_ref.pending.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                }
            };
            for &Item { v, j, t } in &block {
                items += 1;
                // Re-read the depth at processing time: it can only have
                // improved since the enqueue, and relaxing from the
                // better depth is both correct and less work.
                let d = depths_ref[j as usize * n + v as usize].load();
                if d >= cap {
                    continue;
                }
                let nd = d + 1;
                let (lo, hi) = plan.tile_range(csr.out_degree(v), t as usize);
                for &w in &csr.neighbors(v)[lo..hi] {
                    if depths_ref[j as usize * n + w as usize].relax_to(nd) {
                        relaxed += 1;
                        let deg = csr.out_degree(w);
                        if deg == 0 {
                            continue;
                        }
                        let count = plan.tile_count(deg);
                        // Publish the count before the items can reach the
                        // shared deque, so `pending == 0` implies no work
                        // anywhere.
                        fifo_ref.pending.fetch_add(count, Ordering::Release);
                        for t in 0..count {
                            out.push(Item { v: w, j, t: t as u32 });
                        }
                        if out.len() >= BLOCK {
                            let full = std::mem::replace(&mut out, Vec::with_capacity(BLOCK));
                            fifo_ref.global.lock().unwrap().push_back(full);
                        }
                    }
                }
            }
            // Only now is the block's work (including its enqueues) done.
            fifo_ref.pending.fetch_sub(block.len(), Ordering::AcqRel);
        }
        fifo_ref.items.fetch_add(items, Ordering::Relaxed);
        fifo_ref.relaxed.fetch_add(relaxed, Ordering::Relaxed);
        (items, relaxed)
    });
    let phase_seconds = phase_start.elapsed().as_secs_f64();

    debug_assert_eq!(fifo.pending.load(Ordering::Relaxed), 0);
    stats.groups += 1;
    stats.async_items += fifo.items.load(Ordering::Relaxed);
    stats.async_relaxed += fifo.relaxed.load(Ordering::Relaxed);

    let depths: Vec<u8> = depths.iter().map(|c| c.load()).collect();
    debug_assert!(sources
        .iter()
        .enumerate()
        .all(|(j, &s)| depths[j * n + s as usize] == 0));
    let _ = DEPTH_UNVISITED; // sentinel identity: AtomicDepth::unvisited() == DEPTH_UNVISITED
    let traversed = crate::engine::traversed_edges_for(csr, &depths, ni);
    CpuRun {
        num_instances: ni,
        num_vertices: n,
        depths,
        wall_seconds: start.elapsed().as_secs_f64(),
        traversed_edges: traversed,
        level_seconds: vec![phase_seconds],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuService;
    use ibfs_graph::generators::{grid2d, rmat, RmatParams};
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::reference_bfs;

    fn async_opts(threads: usize) -> CpuOptions {
        CpuOptions {
            engine: crate::cpu::CpuEngine::Async,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn async_matches_reference_figure1() {
        let g = figure1();
        let r = g.reverse();
        let mut svc = CpuService::new(&g, &r, async_opts(3));
        let run = svc.run_group(&FIGURE1_SOURCES).unwrap();
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..]);
        }
        assert_eq!(run.level_seconds.len(), 1, "async is a single phase");
        assert!(svc.stats().stats.async_items > 0);
    }

    #[test]
    fn async_matches_reference_on_rmat_hubs() {
        let g = rmat(9, 8, RmatParams::graph500(), 19);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..40).collect();
        let mut svc = CpuService::new(&g, &r, async_opts(4));
        let run = svc.run_group(&sources).unwrap();
        for (j, &s) in sources.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..], "source {s}");
        }
    }

    #[test]
    fn async_mesh_more_threads_than_frontier() {
        // A path-like mesh keeps every frontier at width <= 2 while 8
        // lanes hunt for work: the quiescence protocol must terminate.
        let g = grid2d(2, 40);
        let r = g.reverse();
        let mut svc = CpuService::new(&g, &r, async_opts(8));
        let run = svc.run_group(&[0]).unwrap();
        assert_eq!(run.instance_depths(0), &reference_bfs(&g, 0)[..]);
    }

    #[test]
    fn async_respects_level_cap() {
        let g = grid2d(1, 30); // a path: vertex i at depth i
        let r = g.reverse();
        let mut svc = CpuService::new(
            &g,
            &r,
            CpuOptions { max_levels: 5, ..async_opts(2) },
        );
        let run = svc.run_group(&[0]).unwrap();
        let d = run.instance_depths(0);
        assert_eq!(d[5], 5);
        assert_eq!(d[6], DEPTH_UNVISITED, "cap must stop the wave");
    }
}
