//! Frontier queues: private (FQ) and joint (JFQ).
//!
//! The joint frontier queue (§4) stores each frontier *once* no matter how
//! many instances share it, so it needs at most `|V|` slots versus `i × |V|`
//! for private queues — and, more importantly for the Figure 18 result, each
//! shared frontier costs one global store instead of one per instance.
//! Alongside each joint frontier iBFS keeps the `__ballot()` mask of which
//! instances share it.

use ibfs_graph::VertexId;
use ibfs_gpu_sim::Profiler;

/// Bytes per frontier-queue entry: one `u32` vertex id. Shared by the FQ and
/// the JFQ's id slots — the §3 memory bound prices JFQ entries at
/// `FQ_ID_BYTES + JFQ_MASK_BYTES`.
pub const FQ_ID_BYTES: u64 = 4;

/// Bytes per JFQ `__ballot()` mask: 128 instance bits.
pub const JFQ_MASK_BYTES: u64 = 16;

/// Private per-instance frontier queue.
#[derive(Clone, Debug)]
pub struct FrontierQueue {
    items: Vec<VertexId>,
    /// Simulated device base address.
    pub base: u64,
}

impl FrontierQueue {
    /// Allocates a queue with capacity for every vertex.
    pub fn new(capacity: usize, prof: &mut Profiler) -> Self {
        FrontierQueue {
            items: Vec::with_capacity(capacity),
            base: prof.alloc(capacity as u64 * FQ_ID_BYTES),
        }
    }

    /// Appends a frontier.
    #[inline]
    pub fn push(&mut self, v: VertexId) {
        self.items.push(v);
    }

    /// The queued frontiers.
    #[inline]
    pub fn items(&self) -> &[VertexId] {
        &self.items
    }

    /// Number of queued frontiers.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty (traversal finished).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Device byte address of slot `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + i as u64 * 4
    }

    /// Clears for the next level (keeps capacity — the workhorse-collection
    /// pattern).
    #[inline]
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// Joint frontier queue: unique frontiers plus, for each, the ballot mask of
/// instances that consider it a frontier (bit `j` = instance `j`).
#[derive(Clone, Debug)]
pub struct JointFrontierQueue {
    vertices: Vec<VertexId>,
    masks: Vec<u128>,
    /// Simulated device base address of the vertex slots.
    pub base: u64,
    /// Simulated device base address of the mask slots.
    pub mask_base: u64,
}

impl JointFrontierQueue {
    /// Allocates a JFQ with capacity for every vertex — "this queue requires
    /// the maximum size of |V|".
    pub fn new(capacity: usize, prof: &mut Profiler) -> Self {
        JointFrontierQueue {
            vertices: Vec::with_capacity(capacity),
            masks: Vec::with_capacity(capacity),
            base: prof.alloc(capacity as u64 * FQ_ID_BYTES),
            mask_base: prof.alloc(capacity as u64 * JFQ_MASK_BYTES),
        }
    }

    /// Appends a frontier shared by the instances in `mask`.
    ///
    /// # Panics
    /// Panics if `mask` is zero — a vertex no instance wants is not a
    /// frontier.
    #[inline]
    pub fn push(&mut self, v: VertexId, mask: u128) {
        assert!(mask != 0, "joint frontier must be shared by some instance");
        self.vertices.push(v);
        self.masks.push(mask);
    }

    /// The queued frontier vertices.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The per-frontier instance masks, parallel to [`Self::vertices`].
    #[inline]
    pub fn masks(&self) -> &[u128] {
        &self.masks
    }

    /// Iterator over `(vertex, mask)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, u128)> + '_ {
        self.vertices.iter().copied().zip(self.masks.iter().copied())
    }

    /// Number of unique frontiers.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether no instance has any frontier left.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Sum over frontiers of how many instances share each — the numerator
    /// of the per-level sharing degree.
    pub fn total_instance_frontiers(&self) -> u64 {
        self.masks.iter().map(|m| m.count_ones() as u64).sum()
    }

    /// Device byte address of vertex slot `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + i as u64 * 4
    }

    /// Clears for the next level (keeps capacity).
    #[inline]
    pub fn clear(&mut self) {
        self.vertices.clear();
        self.masks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_gpu_sim::DeviceConfig;

    fn prof() -> Profiler {
        Profiler::new(DeviceConfig::k40())
    }

    #[test]
    fn fq_push_and_clear_keeps_capacity() {
        let mut p = prof();
        let mut q = FrontierQueue::new(8, &mut p);
        assert!(q.is_empty());
        q.push(3);
        q.push(5);
        assert_eq!(q.items(), &[3, 5]);
        assert_eq!(q.addr(1) - q.addr(0), 4);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn jfq_stores_vertex_once_with_mask() {
        let mut p = prof();
        let mut q = JointFrontierQueue::new(8, &mut p);
        q.push(7, 0b1100); // shared by instances 2 and 3
        assert_eq!(q.len(), 1);
        assert_eq!(q.vertices(), &[7]);
        assert_eq!(q.masks(), &[0b1100]);
        assert_eq!(q.total_instance_frontiers(), 2);
        let pairs: Vec<_> = q.iter().collect();
        assert_eq!(pairs, vec![(7, 0b1100)]);
    }

    #[test]
    #[should_panic(expected = "shared by some instance")]
    fn jfq_rejects_empty_mask() {
        let mut p = prof();
        let mut q = JointFrontierQueue::new(4, &mut p);
        q.push(1, 0);
    }

    #[test]
    fn jfq_total_counts_multiplicity() {
        let mut p = prof();
        let mut q = JointFrontierQueue::new(4, &mut p);
        q.push(0, 0b1);
        q.push(1, u128::MAX);
        assert_eq!(q.total_instance_frontiers(), 1 + 128);
    }
}
