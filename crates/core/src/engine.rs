//! Common engine interface, result types, and accounting conventions.
//!
//! # Accounting conventions (shared by every engine)
//!
//! So that transaction counts are comparable across engines — which is what
//! Figures 15, 18, 19, 20 and 21 compare — all engines charge the simulated
//! device identically:
//!
//! * **Frontier-queue generation**: a contiguous scan of the status
//!   array(s) (loads), plus coalesced stores of the enqueued frontiers.
//! * **Expansion**: a contiguous load of each expanded frontier's adjacency
//!   list. The joint engines load each *unique* frontier's list once (via
//!   the CTA shared-memory cache); the private engines load it once per
//!   instance that has the frontier.
//! * **Inspection**: warp-level gathers/scatters of neighbor statuses, one
//!   lane-instruction per edge inspected. Private SA bytes scatter; JSA
//!   blocks coalesce; BSA words are one load per vertex for all instances.
//! * **Levels are kernel phases**: each level boundary pays the kernel
//!   launch overhead through [`ibfs_gpu_sim::SimTimer`].

use crate::direction::Direction;
use crate::trace::{NullSink, TraceSink};
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};
use ibfs_gpu_sim::{Counters, Profiler};
use ibfs_util::{json_enum, json_struct};

/// A graph resident on the simulated device: the CSR arrays plus their
/// device base addresses.
#[derive(Debug)]
pub struct GpuGraph<'a> {
    /// Out-edge CSR.
    pub csr: &'a Csr,
    /// In-edge CSR (equal to `csr` for symmetric graphs); bottom-up
    /// traversal searches it for parents.
    pub reverse: &'a Csr,
    /// Device base address of the out-adjacency array (u32 elements).
    pub adj_base: u64,
    /// Device base address of the in-adjacency array.
    pub radj_base: u64,
    /// Device base address of the offsets array (u64 elements).
    pub offsets_base: u64,
}

impl<'a> GpuGraph<'a> {
    /// Uploads `csr`/`reverse` to the simulated device (allocates their
    /// address ranges).
    pub fn new(csr: &'a Csr, reverse: &'a Csr, prof: &mut Profiler) -> Self {
        assert_eq!(csr.num_vertices(), reverse.num_vertices());
        assert_eq!(csr.num_edges(), reverse.num_edges());
        GpuGraph {
            csr,
            reverse,
            adj_base: prof.alloc(csr.num_edges() as u64 * 4),
            radj_base: prof.alloc(reverse.num_edges() as u64 * 4),
            offsets_base: prof.alloc((csr.num_vertices() as u64 + 1) * 8),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }
}

/// Per-level traversal statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelStats {
    /// Level number (depth assigned at this level).
    pub level: u32,
    /// Direction executed.
    pub direction: Direction,
    /// Unique frontiers in the (joint) queue this level.
    pub unique_frontiers: u64,
    /// Sum over instances of per-instance frontier counts
    /// (`Σ_j |FQ_j(k)|`) — the sharing-degree numerator.
    pub instance_frontiers: u64,
    /// Edges inspected across all instances this level.
    pub edges_inspected: u64,
    /// Bottom-up inspections cut short by early termination.
    pub early_terminations: u64,
}

json_struct!(LevelStats {
    level,
    direction,
    unique_frontiers,
    instance_frontiers,
    edges_inspected,
    early_terminations,
});

/// Result of running one group of concurrent BFS instances.
#[derive(Clone, Debug)]
pub struct GroupRun {
    /// Engine name.
    pub engine: &'static str,
    /// Number of instances in the group.
    pub num_instances: usize,
    /// Number of vertices in the graph.
    pub num_vertices: usize,
    /// Depths, flattened `[instance][vertex]`.
    pub depths: Vec<Depth>,
    /// Per-level statistics.
    pub levels: Vec<LevelStats>,
    /// Counter activity attributable to this run.
    pub counters: Counters,
    /// Simulated wall time of the run in seconds.
    pub sim_seconds: f64,
    /// Directed edges traversed, summed over instances (TEPS numerator).
    pub traversed_edges: u64,
    /// Kernel launches charged during the run (one per level per kernel
    /// stream; the scheduler layer re-prices these under overlap).
    pub kernel_launches: u64,
}

impl GroupRun {
    /// Depth of `v` in instance `j`'s traversal.
    pub fn depth_of(&self, j: usize, v: VertexId) -> Depth {
        self.depths[j * self.num_vertices + v as usize]
    }

    /// Instance `j`'s full depth array.
    pub fn instance_depths(&self, j: usize) -> &[Depth] {
        &self.depths[j * self.num_vertices..(j + 1) * self.num_vertices]
    }

    /// Traversed edges per simulated second.
    pub fn teps(&self) -> f64 {
        crate::metrics::teps(self.traversed_edges, self.sim_seconds)
    }

    /// The run's sharing degree `SD = Σ_k Σ_j |FQ_j(k)| / Σ_k |JFQ(k)|`
    /// (Equation 1). For private-queue engines every frontier is its own
    /// queue entry, so SD is 1 by construction.
    pub fn sharing_degree(&self) -> f64 {
        crate::metrics::sharing_degree(&self.levels)
    }

    /// Sharing ratio: sharing degree over group size (§5.1).
    pub fn sharing_ratio(&self) -> f64 {
        crate::metrics::sharing_ratio(self.sharing_degree(), self.num_instances)
    }
}

/// Computes the traversed-edge total for a set of depth arrays: out-degrees
/// of visited vertices, summed over instances.
pub fn traversed_edges_for(csr: &Csr, depths: &[Depth], num_instances: usize) -> u64 {
    let n = csr.num_vertices();
    let mut total = 0u64;
    for j in 0..num_instances {
        for v in 0..n {
            if depths[j * n + v] != DEPTH_UNVISITED {
                total += csr.out_degree(v as VertexId) as u64;
            }
        }
    }
    total
}

/// A concurrent-BFS engine: runs one group of instances to completion.
pub trait Engine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Runs BFS from every source in `sources` concurrently (per the
    /// engine's strategy), emitting one [`crate::trace::TraversalEvent`] per
    /// level into `sink`, and returns depths plus accounting. Sinks are
    /// observers only: the run is bit-identical with any sink attached.
    fn run_group_traced(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
        sink: &mut dyn TraceSink,
    ) -> GroupRun;

    /// [`Engine::run_group_traced`] with tracing disabled.
    fn run_group(&self, g: &GpuGraph<'_>, sources: &[VertexId], prof: &mut Profiler) -> GroupRun {
        self.run_group_traced(g, sources, prof, &mut NullSink)
    }
}

/// Engine selector used by the runner and the figure harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Per-instance direction-optimizing BFS, run back-to-back
    /// (the paper's "sequential" and its B40C comparison point).
    Sequential,
    /// Private queues/status arrays, all instances concurrent via Hyper-Q.
    Naive,
    /// Joint traversal: JFQ + JSA + shared-memory adjacency cache (§4).
    Joint,
    /// Bitwise status array with early termination (§6) — full iBFS.
    Bitwise,
    /// Bitwise with per-level status reset and no early termination — the
    /// MS-BFS-style GPU baseline of Figure 20.
    BitwiseMsBfsStyle,
    /// Top-down-only concurrent BFS (the SpMM-BC comparison point).
    Spmm,
}

json_enum!(EngineKind { Sequential, Naive, Joint, Bitwise, BitwiseMsBfsStyle, Spmm });

impl EngineKind {
    /// Instantiates the engine with default settings.
    pub fn build(self) -> Box<dyn Engine> {
        match self {
            EngineKind::Sequential => Box::new(crate::sequential::SequentialEngine::default()),
            EngineKind::Naive => Box::new(crate::naive::NaiveEngine::default()),
            EngineKind::Joint => Box::new(crate::joint::JointEngine::default()),
            EngineKind::Bitwise => Box::new(crate::bitwise::BitwiseEngine::default()),
            EngineKind::BitwiseMsBfsStyle => {
                Box::new(crate::bitwise::BitwiseEngine::ms_bfs_style())
            }
            EngineKind::Spmm => Box::new(crate::spmm::SpmmEngine),
        }
    }

    /// All kinds, in the order of the paper's Figure 15 bars plus extras.
    pub fn all() -> [EngineKind; 6] {
        [
            EngineKind::Sequential,
            EngineKind::Naive,
            EngineKind::Joint,
            EngineKind::Bitwise,
            EngineKind::BitwiseMsBfsStyle,
            EngineKind::Spmm,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::figure1;
    use ibfs_gpu_sim::DeviceConfig;

    #[test]
    fn gpu_graph_allocates_device_ranges() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        assert_ne!(gg.adj_base, gg.radj_base);
        assert!(prof.allocated_bytes() >= (28 * 4 * 2 + 10 * 8) as u64);
        assert_eq!(gg.num_vertices(), 9);
        assert_eq!(gg.num_edges(), 28);
    }

    #[test]
    fn group_run_accessors() {
        let run = GroupRun {
            engine: "test",
            num_instances: 2,
            num_vertices: 3,
            depths: vec![0, 1, 2, 255, 0, 1],
            levels: vec![
                LevelStats {
                    level: 1,
                    direction: Direction::TopDown,
                    unique_frontiers: 2,
                    instance_frontiers: 4,
                    edges_inspected: 10,
                    early_terminations: 0,
                },
                LevelStats {
                    level: 2,
                    direction: Direction::BottomUp,
                    unique_frontiers: 1,
                    instance_frontiers: 2,
                    edges_inspected: 5,
                    early_terminations: 1,
                },
            ],
            counters: Counters::default(),
            sim_seconds: 2.0,
            traversed_edges: 50,
            kernel_launches: 3,
        };
        assert_eq!(run.depth_of(0, 1), 1);
        assert_eq!(run.depth_of(1, 0), 255);
        assert_eq!(run.instance_depths(1), &[255, 0, 1]);
        assert_eq!(run.teps(), 25.0);
        assert_eq!(run.sharing_degree(), 2.0);
        assert_eq!(run.sharing_ratio(), 1.0);
    }

    #[test]
    fn traversed_edges_sums_instances() {
        let g = figure1();
        let n = g.num_vertices();
        // Instance 0 visits everything, instance 1 visits only vertex 0.
        let mut depths = vec![0u8; n];
        depths.extend(std::iter::repeat_n(DEPTH_UNVISITED, n));
        depths[n] = 0;
        let total = traversed_edges_for(&g, &depths, 2);
        assert_eq!(total, g.num_edges() as u64 + g.out_degree(0) as u64);
    }

    #[test]
    fn engine_kind_builds_every_engine() {
        for kind in EngineKind::all() {
            let e = kind.build();
            assert!(!e.name().is_empty());
        }
    }
}
