//! Bitwise iBFS (§6): one status bit per (vertex, instance), bitwise
//! inspection, bitwise frontier identification, and bottom-up early
//! termination.
//!
//! One thread inspects a vertex *for all concurrent instances at once*:
//!
//! * **Top-down** (Algorithm 1): a thread loads the frontier's status word
//!   `BSA_k[f]` and ORs it into each neighbor — `BSA_{k+1}[v] |=atomic
//!   BSA_k[f]`. Updates are first merged in CTA shared memory, then pushed
//!   with one atomic per distinct neighbor.
//! * **Bottom-up**: `BSA_{k+1}[f] |= BSA_k[v]`, breaking out as soon as
//!   `BSA_{k+1}[f]` is all ones — **early termination**, possible only
//!   because iBFS's BSA accumulates every visited vertex instead of
//!   resetting per level.
//! * **Frontier identification** (Algorithm 2): top-down enqueues vertices
//!   whose word changed (`XOR`); bottom-up enqueues vertices with unset bits
//!   (`NOT`).
//!
//! The same engine, with [`BitwiseStyle::MsBfs`], models the MS-BFS
//! baseline the paper compares against in Figure 20: per-level status reset
//! (extra `seen`/`visit` array traffic each level) and *no* early
//! termination.
//!
//! The per-level loop runs under [`crate::driver::LevelDriver`]; this module
//! implements the word-generic [`crate::driver::LevelEngine`].

use crate::direction::{Direction, DirectionPolicy};
use crate::driver::{LevelDriver, LevelEngine};
use crate::engine::{traversed_edges_for, Engine, GpuGraph, GroupRun, LevelStats};
use crate::frontier::FQ_ID_BYTES;
use crate::sequential::MAX_LEVELS;
use crate::status::BitwiseStatusArray;
use crate::trace::{NullSink, TraceSink};
use crate::word::{StatusWord, W256};
use ibfs_graph::{Depth, VertexId, DEPTH_UNVISITED};
use ibfs_gpu_sim::{CostModel, PhaseKind, PhaseTimer, Profiler, SimTimer};

/// Which bitwise semantics to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BitwiseStyle {
    /// iBFS: accumulate visited bits, XOR identification, early termination.
    #[default]
    Ibfs,
    /// MS-BFS-style baseline: per-level reset bookkeeping and no early
    /// termination (the `[26]` baseline of Figure 20).
    MsBfs,
}

/// The bitwise concurrent-BFS engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitwiseEngine {
    /// Direction-switch policy (applied group-wide: GroupBy makes the
    /// instances of a group behave alike, which is what lets a single
    /// thread handle all of them).
    pub policy: DirectionPolicy,
    /// iBFS or the MS-BFS-style baseline.
    pub style: BitwiseStyle,
    /// Cap on traversal levels; 0 means unlimited. The k-hop reachability
    /// index builds truncated traversals with this.
    pub max_levels: u32,
}

impl BitwiseEngine {
    /// The MS-BFS-style baseline engine.
    pub fn ms_bfs_style() -> Self {
        BitwiseEngine {
            policy: DirectionPolicy::default(),
            style: BitwiseStyle::MsBfs,
            max_levels: 0,
        }
    }

    /// Caps the traversal at `k` levels (k-hop truncation).
    pub fn with_max_levels(mut self, k: u32) -> Self {
        self.max_levels = k;
        self
    }

    /// Runs a group with an explicit status-word type (`u32` ≈ `int`,
    /// `u64` ≈ `long`, `u128` ≈ `int4`, [`W256`] ≈ `long4`). The word must
    /// hold at least `sources.len()` bits. Exposed for the vector-width
    /// ablation bench.
    pub fn run_group_with_word<W: StatusWord>(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
    ) -> GroupRun {
        run_generic::<W>(self, g, sources, prof, &mut NullSink)
    }
}

impl Engine for BitwiseEngine {
    fn name(&self) -> &'static str {
        match self.style {
            BitwiseStyle::Ibfs => "bitwise",
            BitwiseStyle::MsBfs => "bitwise-msbfs",
        }
    }

    fn run_group_traced(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
        sink: &mut dyn TraceSink,
    ) -> GroupRun {
        // Pick the narrowest CUDA-native word that fits the group, as the
        // paper does with int/long/vector types.
        match sources.len() {
            0..=32 => run_generic::<u32>(self, g, sources, prof, sink),
            33..=64 => run_generic::<u64>(self, g, sources, prof, sink),
            65..=128 => run_generic::<u128>(self, g, sources, prof, sink),
            129..=256 => run_generic::<W256>(self, g, sources, prof, sink),
            n => panic!("bitwise group limited to 256 instances, got {n}"),
        }
    }
}

/// A bitwise group as a [`LevelEngine`]: the double-buffered BSA plus the
/// group-wide queue, direction, and depth recording.
struct BitwiseProcess<'e, 'g, W: StatusWord> {
    g: &'e GpuGraph<'g>,
    sources: &'e [VertexId],
    policy: DirectionPolicy,
    style: BitwiseStyle,
    level_cap: u32,
    full: W,
    cur: BitwiseStatusArray<W>,
    next: BitwiseStatusArray<W>,
    jfq_base: u64,
    depths: Vec<Depth>,
    queue: Vec<VertexId>,
    instance_frontier_count: u64,
    direction: Direction,
    frontier_edges: u64,
    visited_edges: u64,
    // Scratch for CTA-level merging of top-down updates.
    cta_touched: Vec<VertexId>,
}

impl<W: StatusWord> LevelEngine for BitwiseProcess<'_, '_, W> {
    fn level_cap(&self) -> u32 {
        self.level_cap
    }

    fn has_work(&self) -> bool {
        // Frontier identification leaves the queue empty when no new vertex
        // was marked, so this doubles as the convergence check.
        !self.queue.is_empty()
    }

    fn init(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer) {
        // Level 0: set source bits in both buffers, queue the unique sources.
        let n = self.g.csr.num_vertices();
        let word_bytes = W::bytes();
        for (j, &s) in self.sources.iter().enumerate() {
            self.cur.or_word(s, W::bit(j as u32));
            self.depths[j * n + s as usize] = 0;
            prof.atomic_rmw(self.cur.addr(s), word_bytes);
        }
        self.next.copy_from(&self.cur);
        let mut uniq: Vec<VertexId> = self.sources.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        self.queue = uniq;
        self.instance_frontier_count = self.sources.len() as u64;
        timer.phase(prof, PhaseKind::Other);
    }

    fn run_level(
        &mut self,
        level: u32,
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    ) -> LevelStats {
        let csr = self.g.csr;
        let rev = self.g.reverse;
        let n = csr.num_vertices();
        let ni = self.sources.len();
        let total_edges = csr.num_edges() as u64;
        let full = self.full;
        let word_bytes = W::bytes();
        let depth = level as Depth;

        // --- BSA_{k+1} <- BSA_k (Algorithm 1, line 1). ---
        self.next.copy_from(&self.cur);
        prof.load_contiguous(self.cur.base, 0, n as u64, word_bytes);
        prof.store_contiguous(self.next.base, 0, n as u64, word_bytes);
        if self.style == BitwiseStyle::MsBfs {
            // MS-BFS keeps separate seen/visit/visitNext arrays and resets
            // the visit map every level: one more array swept per level.
            prof.load_contiguous(self.cur.base, 0, n as u64, word_bytes);
            prof.store_contiguous(self.next.base, 0, n as u64, word_bytes);
        }
        timer.phase(prof, PhaseKind::Other);

        // --- Traversal (Algorithm 1). ---
        prof.load_contiguous(self.jfq_base, 0, self.queue.len() as u64, 4);
        let mut edges_inspected = 0u64;
        let mut early_terms = 0u64;

        match self.direction {
            Direction::TopDown => {
                let cta = prof.config.cta_size as usize;
                for batch in self.queue.chunks(cta) {
                    self.cta_touched.clear();
                    // Each thread loads its frontier's status word.
                    for fchunk in batch.chunks(32) {
                        prof.warp_gather(fchunk.iter().map(|&f| self.cur.addr(f)), word_bytes);
                    }
                    for &f in batch {
                        let mask = self.cur.word(f);
                        debug_assert!(!mask.is_zero());
                        let neighbors = csr.neighbors(f);
                        prof.load_contiguous(
                            self.g.adj_base,
                            csr.adj_start(f),
                            neighbors.len() as u64,
                            4,
                        );
                        prof.lanes(neighbors.len() as u64);
                        edges_inspected += neighbors.len() as u64;
                        // Merge updates in shared memory within the CTA
                        // ("avoids the overhead of atomic operations at this
                        // step").
                        prof.shared_store(neighbors.len() as u64);
                        for &w in neighbors {
                            self.next.or_word(w, mask);
                            self.cta_touched.push(w);
                        }
                    }
                    // Push the combined updates to global memory with one
                    // atomic per distinct vertex touched by this CTA.
                    self.cta_touched.sort_unstable();
                    self.cta_touched.dedup();
                    for wchunk in self.cta_touched.chunks(32) {
                        prof.warp_atomic(wchunk.iter().map(|&w| self.next.addr(w)), word_bytes);
                    }
                }
            }
            Direction::BottomUp => {
                for fchunk in self.queue.chunks(32) {
                    prof.warp_gather(fchunk.iter().map(|&f| self.next.addr(f)), word_bytes);
                    for &f in fchunk {
                        let parents = rev.neighbors(f);
                        let mut acc = self.next.word(f);
                        let mut scanned = 0u64;
                        for &p in parents {
                            if self.style == BitwiseStyle::Ibfs && acc.and(full) == full {
                                // Early termination: every instance found a
                                // parent for f.
                                break;
                            }
                            scanned += 1;
                            acc = acc.or(self.cur.word(p));
                        }
                        // One thread streams f's parents and their words.
                        prof.load_contiguous(self.g.radj_base, rev.adj_start(f), scanned, 4);
                        for pchunk in parents[..scanned as usize].chunks(32) {
                            prof.warp_gather(
                                pchunk.iter().map(|&p| self.cur.addr(p)),
                                word_bytes,
                            );
                        }
                        prof.lanes(scanned);
                        edges_inspected += scanned;
                        if scanned < parents.len() as u64 {
                            early_terms += 1;
                        }
                        if acc != self.next.word(f) {
                            self.next.set_word(f, acc);
                        }
                    }
                    // Tree-based merging within the warp, then one store per
                    // updated frontier word ("avoiding atomic operations").
                    prof.warp_scatter(fchunk.iter().map(|&f| self.next.addr(f)), word_bytes);
                }
            }
        }
        timer.phase(prof, PhaseKind::Inspection);

        // --- Frontier identification (Algorithm 2) + depth recording. ---
        prof.load_contiguous(self.cur.base, 0, n as u64, word_bytes);
        prof.load_contiguous(self.next.base, 0, n as u64, word_bytes);
        prof.lanes(n as u64);
        let mut new_queue: Vec<VertexId> = Vec::new();
        let mut new_frontier_edges = 0u64;
        let mut new_marked_total = 0u64;
        let mut next_instance_frontiers = 0u64;
        let mut any_unvisited = false;

        // Peek at the direction the policy would choose for the next level
        // to identify the right frontier kind; stats first, then decide.
        for v in 0..n as VertexId {
            let diff = self.next.word(v).xor(self.cur.word(v));
            if !diff.is_zero() {
                for j in diff.iter_ones() {
                    self.depths[j as usize * n + v as usize] = depth;
                }
                new_marked_total += diff.count_ones() as u64;
                new_frontier_edges += diff.count_ones() as u64 * csr.out_degree(v) as u64;
            }
            if self.next.word(v).and(full) != full {
                any_unvisited = true;
            }
        }
        self.visited_edges += new_frontier_edges;
        self.frontier_edges = new_frontier_edges;

        let next_direction = self.policy.next(
            self.direction,
            self.frontier_edges,
            new_marked_total,
            (total_edges * ni as u64).saturating_sub(self.visited_edges),
            n as u64 * ni as u64,
        );
        if new_marked_total > 0 {
            match next_direction {
                Direction::TopDown => {
                    for v in 0..n as VertexId {
                        let diff = self.next.word(v).xor(self.cur.word(v));
                        if !diff.is_zero() {
                            new_queue.push(v);
                            next_instance_frontiers += diff.count_ones() as u64;
                        }
                    }
                }
                Direction::BottomUp => {
                    if any_unvisited {
                        for v in 0..n as VertexId {
                            let missing = self.next.word(v).and(full).xor(full);
                            if !missing.is_zero() {
                                new_queue.push(v);
                                next_instance_frontiers += missing.count_ones() as u64;
                            }
                        }
                    }
                }
            }
        }
        prof.store_contiguous(self.jfq_base, 0, new_queue.len() as u64, 4);
        timer.phase(prof, PhaseKind::FrontierGeneration);

        let stats = LevelStats {
            level,
            direction: self.direction,
            unique_frontiers: self.queue.len() as u64,
            instance_frontiers: self.instance_frontier_count,
            edges_inspected,
            early_terminations: early_terms,
        };

        std::mem::swap(&mut self.cur, &mut self.next);
        self.queue = new_queue;
        self.instance_frontier_count = next_instance_frontiers;
        self.direction = next_direction;
        stats
    }
}

fn run_generic<W: StatusWord>(
    engine: &BitwiseEngine,
    g: &GpuGraph<'_>,
    sources: &[VertexId],
    prof: &mut Profiler,
    sink: &mut dyn TraceSink,
) -> GroupRun {
    let ni = sources.len();
    assert!(
        ni as u32 <= W::BITS,
        "group of {ni} does not fit a {}-bit status word",
        W::BITS
    );
    let csr = g.csr;
    let n = csr.num_vertices();
    let before = prof.snapshot();
    let model = CostModel::new(prof.config);

    let cur: BitwiseStatusArray<W> = BitwiseStatusArray::new(n, prof);
    let next: BitwiseStatusArray<W> = BitwiseStatusArray::new(n, prof);
    let jfq_base = prof.alloc(n as u64 * FQ_ID_BYTES);
    let mut timer = SimTimer::start(model, prof);

    let level_cap = if engine.max_levels == 0 {
        MAX_LEVELS
    } else {
        engine.max_levels.min(MAX_LEVELS)
    };
    let mut process = BitwiseProcess {
        g,
        sources,
        policy: engine.policy,
        style: engine.style,
        level_cap,
        full: W::low_mask(ni as u32),
        cur,
        next,
        jfq_base,
        depths: vec![DEPTH_UNVISITED; ni * n],
        queue: Vec::new(),
        instance_frontier_count: 0,
        // Level 1 always runs top-down from the sources; the per-level
        // direction for later levels is chosen during frontier
        // identification (the queue's contents depend on it, so the
        // decision and the queue travel together).
        direction: Direction::TopDown,
        frontier_edges: sources.iter().map(|&s| csr.out_degree(s) as u64).sum(),
        visited_edges: sources.iter().map(|&s| csr.out_degree(s) as u64).sum(),
        cta_touched: Vec::new(),
    };
    let levels = LevelDriver { prof, timer: &mut timer, sink }.drive(&mut process);

    let counters = prof.snapshot().delta(&before);
    let traversed = traversed_edges_for(csr, &process.depths, ni);
    GroupRun {
        engine: engine.name(),
        num_instances: ni,
        num_vertices: n,
        depths: process.depths,
        levels,
        counters,
        sim_seconds: timer.seconds(),
        traversed_edges: traversed,
        kernel_launches: timer.launch_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::JointEngine;
    use ibfs_graph::generators::{rmat, uniform_random, RmatParams};
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::{check_depths, reference_bfs};
    use ibfs_gpu_sim::DeviceConfig;

    fn check_engine(engine: &BitwiseEngine, g: &ibfs_graph::Csr, sources: &[VertexId]) {
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(g, &r, &mut prof);
        let run = engine.run_group(&gg, sources, &mut prof);
        for (j, &s) in sources.iter().enumerate() {
            assert_eq!(
                run.instance_depths(j),
                &reference_bfs(g, s)[..],
                "{} instance {j} source {s}",
                engine.name()
            );
            check_depths(g, &r, s, run.instance_depths(j)).unwrap();
        }
    }

    #[test]
    fn matches_reference_on_figure1() {
        check_engine(&BitwiseEngine::default(), &figure1(), &FIGURE1_SOURCES);
    }

    #[test]
    fn msbfs_style_matches_reference_too() {
        check_engine(&BitwiseEngine::ms_bfs_style(), &figure1(), &FIGURE1_SOURCES);
    }

    #[test]
    fn matches_reference_on_rmat_all_word_widths() {
        let g = rmat(8, 8, RmatParams::graph500(), 21);
        // 16 instances → u32; 48 → u64; 100 → u128; 150 → W256.
        for count in [16usize, 48, 100, 150] {
            let sources: Vec<VertexId> =
                (0..count as u32).map(|i| i % g.num_vertices() as u32).collect();
            let mut uniq = sources.clone();
            uniq.sort_unstable();
            uniq.dedup();
            check_engine(&BitwiseEngine::default(), &g, &uniq);
        }
    }

    #[test]
    fn matches_reference_on_uniform_graph() {
        let g = uniform_random(512, 4, 9);
        let sources: Vec<VertexId> = (0..64).collect();
        check_engine(&BitwiseEngine::default(), &g, &sources);
    }

    #[test]
    fn explicit_word_widths_agree() {
        let g = rmat(7, 8, RmatParams::graph500(), 2);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..24).collect();
        let e = BitwiseEngine::default();

        let mut runs = Vec::new();
        macro_rules! run_w {
            ($w:ty) => {{
                let mut prof = Profiler::new(DeviceConfig::k40());
                let gg = GpuGraph::new(&g, &r, &mut prof);
                e.run_group_with_word::<$w>(&gg, &sources, &mut prof)
            }};
        }
        runs.push(run_w!(u32));
        runs.push(run_w!(u64));
        runs.push(run_w!(u128));
        runs.push(run_w!(W256));
        for pair in runs.windows(2) {
            assert_eq!(pair[0].depths, pair[1].depths);
        }
        // Wider words move more status bytes: u32 should not lose to W256
        // on load traffic for the same 24 instances.
        assert!(
            runs[0].counters.global_load_transactions
                <= runs[3].counters.global_load_transactions
        );
    }

    /// Two hubs adjacent to every leaf: a coherent group (all sources are
    /// leaves) fills each leaf's status word from the first hub scanned, so
    /// bitwise bottom-up early termination must fire — this is the
    /// paper's Figure 13(b) situation where one neighbor "can set all bits
    /// of this frontier".
    fn two_hub_graph(leaves: usize) -> ibfs_graph::Csr {
        let mut b = ibfs_graph::CsrBuilder::new(leaves + 2);
        for leaf in 2..(leaves + 2) as VertexId {
            b.add_undirected_edge(0, leaf);
            b.add_undirected_edge(1, leaf);
        }
        b.build()
    }

    #[test]
    fn early_termination_only_in_ibfs_style() {
        let g = two_hub_graph(64);
        let r = g.reverse();
        let sources: Vec<VertexId> = (2..34).collect();
        // Force bottom-up as soon as the frontier has any weight.
        let bu_policy = crate::direction::DirectionPolicy { alpha: 1e6, beta: 1e6 };

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let g1 = GpuGraph::new(&g, &r, &mut p1);
        let ibfs = BitwiseEngine { policy: bu_policy, style: BitwiseStyle::Ibfs, max_levels: 0 }
            .run_group(&g1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let g2 = GpuGraph::new(&g, &r, &mut p2);
        let msbfs = BitwiseEngine { policy: bu_policy, style: BitwiseStyle::MsBfs, max_levels: 0 }
            .run_group(&g2, &sources, &mut p2);

        assert_eq!(ibfs.depths, msbfs.depths);
        for (j, &s) in sources.iter().enumerate() {
            assert_eq!(ibfs.instance_depths(j), &reference_bfs(&g, s)[..]);
        }
        let et_ibfs: u64 = ibfs.levels.iter().map(|l| l.early_terminations).sum();
        let et_msbfs: u64 = msbfs.levels.iter().map(|l| l.early_terminations).sum();
        assert!(et_ibfs > 0, "iBFS should terminate early somewhere");
        assert_eq!(et_msbfs, 0, "MS-BFS style never terminates early");
        // Early termination inspects strictly fewer edges.
        let edges_ibfs: u64 = ibfs.levels.iter().map(|l| l.edges_inspected).sum();
        let edges_msbfs: u64 = msbfs.levels.iter().map(|l| l.edges_inspected).sum();
        assert!(edges_ibfs < edges_msbfs);
        // And that plus the per-level reset costs time.
        assert!(ibfs.sim_seconds < msbfs.sim_seconds);
    }

    #[test]
    fn bitwise_beats_joint_on_traffic_and_time() {
        // Figure 15/21: bitwise over joint is the big win (~11× time, ~40%
        // fewer loads in the paper). The advantage needs enough concurrent
        // instances to amortize the status words — 128 instances on a
        // scale-10 graph shows it for every generator seed.
        let g = rmat(10, 16, RmatParams::graph500(), 8);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..128).collect();

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let g1 = GpuGraph::new(&g, &r, &mut p1);
        let joint = JointEngine::default().run_group(&g1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let g2 = GpuGraph::new(&g, &r, &mut p2);
        let bitwise = BitwiseEngine::default().run_group(&g2, &sources, &mut p2);

        assert_eq!(joint.depths, bitwise.depths);
        assert!(
            bitwise.counters.global_load_transactions < joint.counters.global_load_transactions
        );
        assert!(bitwise.sim_seconds < joint.sim_seconds);
    }

    #[test]
    fn duplicate_sources_rejected_by_word_capacity_only() {
        // 300 instances exceed every supported word.
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let sources: Vec<VertexId> = (0..300).map(|i| (i % 9) as u32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BitwiseEngine::default().run_group(&gg, &sources, &mut prof)
        }));
        assert!(result.is_err());
    }
}
