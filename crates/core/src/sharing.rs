//! Frontier-sharing statistics: the measurements behind Figures 2, 6 and 9
//! and the Sharing Degree / Sharing Ratio theory of §5.1.
//!
//! All sharing quantities are functions of the per-instance depth arrays, so
//! they are engine-independent: at a top-down level `k` instance `j`'s
//! frontier is `{v : d_j(v) = k}`; at a bottom-up level it is the unvisited
//! set `{v : d_j(v) ≥ k or unreachable}`.

use crate::engine::GroupRun;
use ibfs_graph::{Csr, Depth, VertexId, DEPTH_UNVISITED};

/// Average percentage of frontiers shared between two instances, separately
/// for top-down and bottom-up levels (the two bars of Figure 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairSharing {
    /// Mean over top-down levels of `|F_a ∩ F_b| / |F_a ∪ F_b|`, as a
    /// percentage.
    pub top_down_pct: f64,
    /// Same for bottom-up levels (unvisited-set sharing).
    pub bottom_up_pct: f64,
}

/// Computes [`PairSharing`] for two depth arrays over the same graph.
///
/// Top-down levels are `1..=min(max_a, max_b)` (frontier-set sharing);
/// bottom-up levels are those where both instances still have unvisited
/// reachable vertices — the stage where a direction-optimized traversal
/// actually runs bottom-up.
pub fn pair_sharing(a: &[Depth], b: &[Depth]) -> PairSharing {
    assert_eq!(a.len(), b.len());
    let max_a = max_depth(a);
    let max_b = max_depth(b);
    let max_level = max_a.max(max_b);

    let mut td_sum = 0.0;
    let mut td_levels = 0u32;
    let mut bu_sum = 0.0;
    let mut bu_levels = 0u32;
    for k in 1..=max_level {
        // Top-down: exact-depth frontier sets.
        let mut inter = 0u64;
        let mut union = 0u64;
        for i in 0..a.len() {
            let fa = a[i] == k;
            let fb = b[i] == k;
            if fa && fb {
                inter += 1;
            }
            if fa || fb {
                union += 1;
            }
        }
        if union > 0 {
            td_sum += inter as f64 / union as f64;
            td_levels += 1;
        }

        // Bottom-up: unvisited sets at the start of level k, restricted to
        // levels where both traversals are still discovering vertices.
        if k <= max_a && k <= max_b {
            let mut inter = 0u64;
            let mut union = 0u64;
            for i in 0..a.len() {
                let ua = a[i] >= k; // includes DEPTH_UNVISITED
                let ub = b[i] >= k;
                if ua && ub {
                    inter += 1;
                }
                if ua || ub {
                    union += 1;
                }
            }
            if union > 0 {
                bu_sum += inter as f64 / union as f64;
                bu_levels += 1;
            }
        }
    }
    PairSharing {
        top_down_pct: if td_levels == 0 { 0.0 } else { 100.0 * td_sum / td_levels as f64 },
        bottom_up_pct: if bu_levels == 0 { 0.0 } else { 100.0 * bu_sum / bu_levels as f64 },
    }
}

fn max_depth(d: &[Depth]) -> Depth {
    d.iter().copied().filter(|&x| x != DEPTH_UNVISITED).max().unwrap_or(0)
}

/// Average [`PairSharing`] over consecutive source pairs — the Figure 2
/// measurement ("average frontier sharing percentage between two different
/// BFS instances").
pub fn average_pair_sharing(g: &Csr, sources: &[VertexId]) -> PairSharing {
    assert!(sources.len() >= 2, "need at least two sources");
    let depths: Vec<Vec<Depth>> = sources
        .iter()
        .map(|&s| ibfs_graph::validate::reference_bfs(g, s))
        .collect();
    let mut td = 0.0;
    let mut bu = 0.0;
    let mut pairs = 0u32;
    for w in depths.windows(2) {
        let p = pair_sharing(&w[0], &w[1]);
        td += p.top_down_pct;
        bu += p.bottom_up_pct;
        pairs += 1;
    }
    PairSharing {
        top_down_pct: td / pairs as f64,
        bottom_up_pct: bu / pairs as f64,
    }
}

/// Per-level sharing degree of a group run
/// (`SD(k) = Σ_j |FQ_j(k)| / |JFQ(k)|`) — the Figure 6 series.
pub fn per_level_sharing_degree(run: &GroupRun) -> Vec<(u32, f64)> {
    run.levels
        .iter()
        .filter(|l| l.unique_frontiers > 0)
        .map(|l| {
            (
                l.level,
                l.instance_frontiers as f64 / l.unique_frontiers as f64,
            )
        })
        .collect()
}

/// Group sharing degree computed *analytically* from depth arrays under
/// pure top-down semantics — the quantity of Lemma 1's proof, where
/// `Σ_k |FQ_j(k)| = |V_reached,j|` and `JFQ(k)` is the union of the
/// per-depth frontier sets.
pub fn analytic_sharing_degree(depth_arrays: &[Vec<Depth>]) -> f64 {
    assert!(!depth_arrays.is_empty());
    let n = depth_arrays[0].len();
    let max_level = depth_arrays.iter().map(|d| max_depth(d)).max().unwrap_or(0);
    let mut total_instance = 0u64;
    let mut total_unique = 0u64;
    for k in 0..=max_level {
        for v in 0..n {
            let sharers = depth_arrays.iter().filter(|d| d[v] == k).count() as u64;
            total_instance += sharers;
            if sharers > 0 {
                total_unique += 1;
            }
        }
    }
    if total_unique == 0 {
        0.0
    } else {
        total_instance as f64 / total_unique as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::reference_bfs;

    #[test]
    fn identical_instances_share_everything() {
        let g = figure1();
        let d = reference_bfs(&g, 0);
        let p = pair_sharing(&d, &d);
        assert!((p.top_down_pct - 100.0).abs() < 1e-9);
        assert!((p.bottom_up_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn different_sources_share_partially() {
        let g = figure1();
        let a = reference_bfs(&g, 0);
        let b = reference_bfs(&g, 8);
        let p = pair_sharing(&a, &b);
        assert!(p.top_down_pct > 0.0 && p.top_down_pct < 100.0);
        assert!(p.bottom_up_pct > 0.0);
        // The paper's Figure 2 observation: bottom-up sharing far exceeds
        // top-down sharing.
        assert!(p.bottom_up_pct > p.top_down_pct);
    }

    #[test]
    fn average_over_sources_is_finite() {
        let g = figure1();
        let p = average_pair_sharing(&g, &FIGURE1_SOURCES);
        assert!(p.top_down_pct >= 0.0 && p.top_down_pct <= 100.0);
        assert!(p.bottom_up_pct >= 0.0 && p.bottom_up_pct <= 100.0);
    }

    #[test]
    fn analytic_sd_bounds() {
        let g = figure1();
        let arrays: Vec<Vec<Depth>> = FIGURE1_SOURCES
            .iter()
            .map(|&s| reference_bfs(&g, s))
            .collect();
        let sd = analytic_sharing_degree(&arrays);
        assert!(sd >= 1.0);
        assert!(sd <= FIGURE1_SOURCES.len() as f64);
    }

    #[test]
    fn analytic_sd_of_identical_group_is_group_size() {
        let g = figure1();
        let d = reference_bfs(&g, 0);
        let arrays = vec![d.clone(), d.clone(), d];
        assert!((analytic_sharing_degree(&arrays) - 3.0).abs() < 1e-12);
    }
}
