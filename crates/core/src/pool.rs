//! A persistent worker pool for the CPU engines.
//!
//! The pre-pool CPU path spawned a fresh wave of scoped threads for every
//! phase of every BFS level — three to four `std::thread::scope` blocks per
//! level, each paying thread creation, stack allocation, and join latency.
//! [`WorkerPool`] spawns its OS threads exactly once, when the owning engine
//! is constructed, and reuses them for every phase of every level of every
//! group served afterwards. Phases are dispatched with a generation-counted
//! mutex/condvar handshake (workers block, they do not spin), and
//! [`WorkerPool::run`] does not return until every worker has finished the
//! phase — a barrier, which is what makes lending stack-borrowed closures to
//! the workers sound.
//!
//! The caller participates as worker 0, so a pool of `threads` executes
//! phases on `threads` lanes while owning only `threads - 1` OS threads; a
//! single-threaded pool never synchronizes at all.

use ibfs_obs::{EngineProfiler, ProfPhase};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Total OS threads ever spawned by any [`WorkerPool`] in this process.
///
/// Tests use this to prove the engines create workers once per engine
/// lifetime rather than once per level: the counter must not move across a
/// multi-level, multi-group run.
static POOL_THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total OS threads ever spawned by any pool (monotone, process-wide).
pub fn total_threads_spawned() -> u64 {
    POOL_THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// The job pointer lent to workers for the duration of one phase.
///
/// `run` erases the closure's lifetime: the barrier at the end of the phase
/// guarantees no worker holds the pointer after `run` returns, so the borrow
/// it was created from is still live whenever it is dereferenced.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from many threads) and the
// pool's barrier protocol bounds every dereference within the lifetime of
// the borrow captured in `run`.
unsafe impl Send for Job {}

struct State {
    /// Bumped once per phase; workers sleep until it moves.
    generation: u64,
    /// The phase body; `None` between phases.
    job: Option<Job>,
    /// Workers still executing the current phase.
    active: usize,
    /// Set by `Drop` to retire the workers.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The dispatching thread waits here for `active == 0`.
    done_cv: Condvar,
}

/// A fixed set of worker threads executing barrier-synced phases.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    /// Phases dispatched over the pool's lifetime.
    phases: AtomicU64,
}

impl WorkerPool {
    /// Creates a pool executing phases on `threads` lanes (the calling
    /// thread is lane 0; `threads - 1` OS threads are spawned, once).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for lane in 1..threads {
            let shared = Arc::clone(&shared);
            POOL_THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ibfs-cpu-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn pool worker"),
            );
        }
        WorkerPool {
            shared,
            handles,
            threads,
            phases: AtomicU64::new(0),
        }
    }

    /// Number of lanes (including the caller's lane 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// OS threads owned by the pool (`threads() - 1`).
    pub fn spawned_threads(&self) -> usize {
        self.handles.len()
    }

    /// Phases dispatched so far.
    pub fn phases_run(&self) -> u64 {
        self.phases.load(Ordering::Relaxed)
    }

    /// Runs `f(lane)` on every lane and returns once all lanes finish.
    ///
    /// `f` runs on the calling thread as lane 0 concurrently with the pool
    /// workers on lanes `1..threads`.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.phases.fetch_add(1, Ordering::Relaxed);
        if self.handles.is_empty() {
            f(0);
            return;
        }
        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY (lifetime erasure): the pointer is dereferenced only by
        // workers between the generation bump below and the `active == 0`
        // barrier we block on before returning, so it never outlives `f`.
        let job = Job(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                wide as *const _,
            )
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.active, 0);
            st.job = Some(job);
            st.active = self.handles.len();
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        f(0);
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
    }

    /// [`WorkerPool::run`] with optional phase profiling: when `prof` is
    /// set, each lane's body time (plus the counter pair `f` returns) is
    /// recorded as a [`PhaseRecord`](ibfs_obs::PhaseRecord) and the phase
    /// wall time synthesizes one `BarrierWait` record per lane. When
    /// `prof` is `None` the only cost over `run` is computing the ignored
    /// counters.
    pub fn run_profiled<F>(
        &self,
        prof: Option<&EngineProfiler>,
        track: u64,
        level: u64,
        phase: ProfPhase,
        f: F,
    ) where
        F: Fn(usize) -> (u64, u64) + Sync,
    {
        match prof {
            None => self.run(|lane| {
                f(lane);
            }),
            Some(p) => {
                let ph = p.begin();
                self.run(|lane| {
                    let (a, b) = f(lane);
                    p.lane(ph, track, lane, level, phase, a, b);
                });
                p.end_phase(ph, track, level, phase);
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("generation moved without a job");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // SAFETY: see `Job` — the dispatcher keeps the closure alive until
        // every worker has decremented `active`.
        (unsafe { &*job.0 })(lane);
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A shared claim cursor: lanes `fetch_add` to steal the next work chunk.
///
/// This is the work-stealing half of the CPU engine's load balancing: the
/// level's work is pre-split into degree-balanced chunks, and lanes claim
/// chunks until the cursor runs past the end — a lane stuck on a hub vertex
/// simply claims fewer chunks.
#[derive(Default)]
pub struct ChunkCursor(AtomicUsize);

impl ChunkCursor {
    /// Resets the cursor for a new phase.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Claims the next chunk index, or `None` when `limit` is exhausted.
    ///
    /// The claim is bounded: the cursor never advances past `limit`, so a
    /// lane that loses the race at a tiny frontier does not push the
    /// cursor into territory a *later* phase (or a later call with a
    /// larger `limit`) would have claimed. The old `fetch_add`-then-check
    /// implementation over-claimed here — with `threads` lanes spinning on
    /// an exhausted cursor it could run `limit` arbitrarily far ahead,
    /// silently swallowing the first chunks of the next claim window
    /// unless every caller remembered to `reset` first.
    pub fn claim(&self, limit: usize) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Relaxed);
        while cur < limit {
            match self
                .0
                .compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(cur),
                Err(seen) => cur = seen,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_lane_exactly_once_per_phase() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.spawned_threads(), 3);
        let hits: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..100 {
            pool.run(|lane| {
                hits[lane].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
        assert_eq!(pool.phases_run(), 100);
    }

    #[test]
    fn single_lane_pool_spawns_nothing() {
        let before = total_threads_spawned();
        let pool = WorkerPool::new(1);
        assert_eq!(pool.spawned_threads(), 0);
        let mut x = 0;
        let cell = std::sync::Mutex::new(&mut x);
        pool.run(|lane| {
            assert_eq!(lane, 0);
            **cell.lock().unwrap() += 1;
        });
        drop(cell);
        assert_eq!(x, 1);
        assert_eq!(total_threads_spawned(), before);
    }

    #[test]
    fn phases_observe_prior_phase_writes() {
        // The barrier between phases orders writes: phase 2 reads what
        // phase 1 wrote, across lanes.
        let pool = WorkerPool::new(3);
        let data: Vec<AtomicU32> = (0..300).map(|_| AtomicU32::new(0)).collect();
        pool.run(|lane| {
            for i in (lane..300).step_by(3) {
                data[i].store(i as u32 + 1, Ordering::Relaxed);
            }
        });
        pool.run(|lane| {
            // Read indices written by *other* lanes in phase 1.
            for i in ((lane + 1) % 3..300).step_by(3) {
                assert_eq!(data[i].load(Ordering::Relaxed), i as u32 + 1);
            }
        });
    }

    #[test]
    fn cursor_hands_out_each_chunk_once() {
        let pool = WorkerPool::new(4);
        let cursor = ChunkCursor::default();
        let claims: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        pool.run(|_lane| {
            while let Some(i) = cursor.claim(64) {
                claims[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for c in &claims {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
        cursor.reset();
        assert_eq!(cursor.claim(64), Some(0));
    }

    #[test]
    fn exhausted_cursor_does_not_over_claim() {
        // Regression: many lanes hammering an exhausted cursor at a tiny
        // frontier must leave it parked exactly at the limit, so a later
        // claim window (larger limit, no reset) still sees every chunk.
        let pool = WorkerPool::new(8);
        let cursor = ChunkCursor::default();
        pool.run(|_lane| {
            // Each lane keeps claiming long after the 2-chunk frontier is
            // gone — the failure mode of the old fetch_add cursor.
            let mut claimed = 0;
            for _ in 0..1000 {
                if cursor.claim(2).is_some() {
                    claimed += 1;
                }
            }
            assert!(claimed <= 2);
        });
        // The cursor stopped at the limit: chunks 2..6 of a wider window
        // are still claimable without a reset.
        assert_eq!(cursor.claim(6), Some(2));
        assert_eq!(cursor.claim(6), Some(3));
        assert_eq!(cursor.claim(6), Some(4));
        assert_eq!(cursor.claim(6), Some(5));
        assert_eq!(cursor.claim(6), None);
        assert_eq!(cursor.claim(6), None);
    }

    #[test]
    fn pool_spawn_counter_is_constant_across_phases() {
        let pool = WorkerPool::new(3);
        let after_new = total_threads_spawned();
        for _ in 0..50 {
            pool.run(|_| {});
        }
        assert_eq!(total_threads_spawned(), after_new);
    }
}
