//! The shared level driver: the per-level skeleton every engine used to
//! duplicate.
//!
//! Every traversal in this repo has the same outer shape: seed level 0, then
//! repeat *check for work → launch a kernel → run one level → record stats*
//! until no instance has a frontier left or the level cap is hit. The
//! engines differ only in what a "level" does against their own frontier and
//! status stores — so they implement the narrow [`LevelEngine`] trait and
//! the [`LevelDriver`] owns the loop, the kernel-launch charging, the
//! [`LevelStats`] collection, and the [`TraversalEvent`] emission.
//!
//! Timing is engine-pluggable through [`PhaseTimer`]: the single-kernel
//! engines (joint, bitwise) time with a roofline `SimTimer`, the private
//! per-instance engines with the Hyper-Q demand accumulator — the driver
//! does not care which.

use crate::direction::Direction;
use crate::engine::LevelStats;
use crate::trace::{TraceSink, TraversalEvent};
use ibfs_graph::VertexId;
use ibfs_gpu_sim::{PhaseTimer, Profiler};

/// The narrow per-level interface an engine implements to be driven.
///
/// Contract: [`LevelEngine::init`] seeds level 0 (marking the sources and
/// closing the seeding phase on the timer). Then, for each level the driver
/// runs, [`LevelEngine::run_level`] generates/expands/inspects against the
/// engine's own frontier and status stores, closing its kernel phases on the
/// timer, and returns the level's statistics. The kernel-launch overhead is
/// charged by the *driver*, once per level, before `run_level`.
pub trait LevelEngine {
    /// Inclusive upper bound on level numbers this traversal may run.
    fn level_cap(&self) -> u32;

    /// Whether any instance still has frontier work.
    fn has_work(&self) -> bool;

    /// Seeds level 0: mark sources, charge their stores, close the phase.
    fn init(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer);

    /// Executes one traversal level and returns its statistics.
    fn run_level(
        &mut self,
        level: u32,
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    ) -> LevelStats;
}

/// A frontier update crossing an engine boundary: the instances in `mask`
/// (one bit per instance of the running group) discovered global vertex
/// `vertex`. The depth is implied by the level at which the update is
/// applied — level-synchronous exchange keeps depths deterministic no
/// matter which engine produced the update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierUpdate {
    /// Global vertex id.
    pub vertex: VertexId,
    /// Discovering instances, one bit per instance (group size ≤ 64).
    pub mask: u64,
}

/// Aggregate next-frontier statistics an exchange coordinator reads to
/// agree on a global traversal direction (the α/β vote of
/// [`crate::direction::DirectionPolicy`] needs cluster-wide totals, not one
/// engine's local view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Distinct vertices in the engine's next frontier.
    pub frontier_vertices: u64,
    /// Out-edges of those vertices (global out-degrees).
    pub frontier_edges: u64,
    /// Out-edges of still-unvisited vertices, summed over instances.
    pub unexplored_edges: u64,
}

impl FrontierStats {
    /// Component-wise sum, for aggregating across engines.
    pub fn add(&self, other: &FrontierStats) -> FrontierStats {
        FrontierStats {
            frontier_vertices: self.frontier_vertices + other.frontier_vertices,
            frontier_edges: self.frontier_edges + other.frontier_edges,
            unexplored_edges: self.unexplored_edges + other.unexplored_edges,
        }
    }
}

/// A [`LevelEngine`] that can participate in a lockstep multi-engine
/// traversal by accepting externally-injected frontier updates between
/// levels — the generalization the sharded cluster layer drives.
///
/// Protocol, per level `k` run by a coordinator over `P` engines:
///
/// 1. The coordinator sums [`ExchangeEngine::frontier_stats`] and picks one
///    global [`Direction`], announced via [`ExchangeEngine::set_direction`].
/// 2. Bottom-up only: each engine's previous-level discoveries
///    ([`ExchangeEngine::frontier_snapshot`]) are delivered to every peer
///    via [`ExchangeEngine::inject_frontier`] (an allgather), so unvisited
///    vertices can find parents owned elsewhere.
/// 3. Every engine runs [`LevelEngine::run_level`]`(k)` — an engine with an
///    empty local frontier still participates (bottom-up scans owned
///    unvisited vertices regardless).
/// 4. Top-down only: discoveries of non-owned vertices are drained with
///    [`ExchangeEngine::take_outbound`] and applied at their owners via
///    [`ExchangeEngine::inject_candidates`], which assigns depth `k` to any
///    candidate not already visited.
///
/// How updates travel between engines (pattern, latency, bandwidth) is the
/// coordinator's business; the engine only produces and consumes them.
pub trait ExchangeEngine: LevelEngine {
    /// Announces the globally-agreed direction for the next level.
    fn set_direction(&mut self, dir: Direction);

    /// This engine's local contribution to the direction vote.
    fn frontier_stats(&self) -> FrontierStats;

    /// Drains updates destined to other engines, indexed by destination
    /// (length = number of participating engines; own slot empty).
    fn take_outbound(&mut self) -> Vec<Vec<FrontierUpdate>>;

    /// Applies peer discoveries of vertices this engine owns: unvisited
    /// candidates get the depth of the level just run and join the next
    /// frontier. Device-side cost is charged to `prof`/`timer`.
    fn inject_candidates(
        &mut self,
        updates: &[FrontierUpdate],
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    );

    /// The vertices this engine newly visited at the last level — what
    /// peers need in their global frontier view before a bottom-up level.
    fn frontier_snapshot(&self) -> Vec<FrontierUpdate>;

    /// Merges a peer's [`ExchangeEngine::frontier_snapshot`] into this
    /// engine's view of the global frontier (bottom-up parent checks).
    fn inject_frontier(
        &mut self,
        updates: &[FrontierUpdate],
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    );
}

/// Drives a [`LevelEngine`] to completion.
pub struct LevelDriver<'a> {
    /// The simulated device being charged.
    pub prof: &'a mut Profiler,
    /// Per-level timing (roofline or demand-accumulating).
    pub timer: &'a mut dyn PhaseTimer,
    /// Trace receiver (pass a [`crate::trace::NullSink`] to disable).
    pub sink: &'a mut dyn TraceSink,
}

impl LevelDriver<'_> {
    /// Runs `engine` from its seeded state until it reports no work or the
    /// level cap is reached, returning the per-level statistics.
    pub fn drive(&mut self, engine: &mut dyn LevelEngine) -> Vec<LevelStats> {
        engine.init(self.prof, self.timer);
        let mut levels = Vec::new();
        for level in 1..=engine.level_cap() {
            if !engine.has_work() {
                break;
            }
            let counters_before = self.prof.snapshot();
            let seconds_before = self.timer.seconds();
            self.timer.kernel_launch();
            let stats = engine.run_level(level, self.prof, self.timer);
            let delta = self.prof.snapshot().delta(&counters_before);
            self.sink.record(&TraversalEvent {
                group: 0,
                batch: 0,
                level,
                direction: stats.direction,
                unique_frontiers: stats.unique_frontiers,
                instance_frontiers: stats.instance_frontiers,
                edges_inspected: stats.edges_inspected,
                early_terminations: stats.early_terminations,
                load_transactions: delta.global_load_transactions,
                store_transactions: delta.global_store_transactions,
                atomic_transactions: delta.atomic_transactions,
                sim_seconds: self.timer.seconds() - seconds_before,
            });
            levels.push(stats);
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::Direction;
    use crate::trace::RecorderSink;
    use ibfs_gpu_sim::{CostModel, DeviceConfig, PhaseKind, SimTimer};

    /// A toy engine: marks one vertex per level for `work` levels.
    struct Countdown {
        work: u32,
        base: u64,
    }

    impl LevelEngine for Countdown {
        fn level_cap(&self) -> u32 {
            100
        }

        fn has_work(&self) -> bool {
            self.work > 0
        }

        fn init(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer) {
            prof.lane_store(self.base, 1);
            timer.phase(prof, PhaseKind::Other);
        }

        fn run_level(
            &mut self,
            level: u32,
            prof: &mut Profiler,
            timer: &mut dyn PhaseTimer,
        ) -> LevelStats {
            prof.load_contiguous(self.base, 0, 64, 4);
            timer.phase(prof, PhaseKind::Expansion);
            self.work -= 1;
            LevelStats {
                level,
                direction: Direction::TopDown,
                unique_frontiers: 1,
                instance_frontiers: 2,
                edges_inspected: 3,
                early_terminations: 0,
            }
        }
    }

    #[test]
    fn drives_until_out_of_work_and_traces_each_level() {
        let mut prof = Profiler::new(DeviceConfig::k40());
        let base = prof.alloc(1024);
        let model = CostModel::new(prof.config);
        let mut timer = SimTimer::start(model, &prof);
        let mut sink = RecorderSink::default();
        let mut engine = Countdown { work: 3, base };
        let levels = LevelDriver {
            prof: &mut prof,
            timer: &mut timer,
            sink: &mut sink,
        }
        .drive(&mut engine);

        assert_eq!(levels.len(), 3);
        assert_eq!(levels.iter().map(|l| l.level).collect::<Vec<_>>(), vec![1, 2, 3]);
        // One launch per level, none for seeding.
        assert_eq!(timer.launch_count(), 3);
        // Each traced level saw its loads and a positive time slice.
        assert_eq!(sink.events.len(), 3);
        for e in &sink.events {
            assert!(e.load_transactions > 0);
            assert!(e.sim_seconds > 0.0);
            assert_eq!(e.unique_frontiers, 1);
        }
        // The per-level slices sum to the timer's total.
        let total: f64 = sink.events.iter().map(|e| e.sim_seconds).sum();
        let init_cost = timer.seconds() - total;
        assert!(init_cost >= 0.0);
    }

    #[test]
    fn level_cap_stops_the_loop() {
        let mut prof = Profiler::new(DeviceConfig::k40());
        let base = prof.alloc(1024);
        let model = CostModel::new(prof.config);
        let mut timer = SimTimer::start(model, &prof);
        let mut sink = RecorderSink::default();

        struct Capped {
            base: u64,
        }
        impl LevelEngine for Capped {
            fn level_cap(&self) -> u32 {
                2
            }
            fn has_work(&self) -> bool {
                true
            }
            fn init(&mut self, _prof: &mut Profiler, _timer: &mut dyn PhaseTimer) {}
            fn run_level(
                &mut self,
                level: u32,
                prof: &mut Profiler,
                timer: &mut dyn PhaseTimer,
            ) -> LevelStats {
                prof.lane_load(self.base, 4);
                timer.phase(prof, PhaseKind::Inspection);
                LevelStats {
                    level,
                    direction: Direction::TopDown,
                    unique_frontiers: 1,
                    instance_frontiers: 1,
                    edges_inspected: 0,
                    early_terminations: 0,
                }
            }
        }

        let levels = LevelDriver {
            prof: &mut prof,
            timer: &mut timer,
            sink: &mut sink,
        }
        .drive(&mut Capped { base });
        assert_eq!(levels.len(), 2);
    }
}
