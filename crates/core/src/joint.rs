//! Joint traversal (§4): one kernel, joint frontier queue, joint status
//! array, shared-memory adjacency cache.
//!
//! All instances of a group traverse together. Each level:
//!
//! 1. **JFQ generation** (Figure 4): one warp scans each vertex's N
//!    contiguous statuses; a `__any()` vote decides whether any instance
//!    considers it a frontier (top-down: just visited; bottom-up:
//!    unvisited), `__ballot()` records which, and one thread enqueues the
//!    vertex once.
//! 2. **Expansion** (Figure 5): the frontier's adjacency list is loaded from
//!    global memory *once* into the CTA's shared-memory cache, feeding all
//!    instances.
//! 3. **Inspection**: N contiguous threads per neighbor touch the neighbor's
//!    contiguous JSA block, so the statuses of all instances move in
//!    coalesced transactions instead of N scattered ones. Instances that do
//!    not share the frontier do not inspect.
//!
//! Directions are decided per instance with the shared α/β policy; a vertex
//! can simultaneously be a top-down frontier for some instances and a
//! bottom-up frontier for others (the paper's vertex 7 in Figure 5).
//!
//! The per-level loop runs under [`crate::driver::LevelDriver`]; this module
//! implements the group-wide [`crate::driver::LevelEngine`].

use crate::direction::{Direction, DirectionPolicy};
use crate::driver::{LevelDriver, LevelEngine};
use crate::engine::{traversed_edges_for, Engine, GpuGraph, GroupRun, LevelStats};
use crate::frontier::JointFrontierQueue;
use crate::sequential::MAX_LEVELS;
use crate::status::JointStatusArray;
use crate::trace::TraceSink;
use ibfs_graph::{Depth, VertexId};
use ibfs_gpu_sim::{CostModel, PhaseKind, PhaseTimer, Profiler, SimTimer};

/// Maximum instances a joint group supports (the paper's default N).
pub const MAX_GROUP: usize = 128;

/// The joint-traversal engine.
#[derive(Clone, Copy, Debug)]
pub struct JointEngine {
    /// Direction-switch policy applied per instance.
    pub policy: DirectionPolicy,
    /// Use the CTA shared-memory adjacency cache (§4's "new cache ... to
    /// load the adjacent vertices of a frontier from GPU's global memory to
    /// its shared memory to feed all BFS instances"). Disabling it reloads
    /// a shared frontier's adjacency once per sharing instance — the
    /// ablation of DESIGN.md §5.
    pub shared_cache: bool,
}

impl Default for JointEngine {
    fn default() -> Self {
        JointEngine {
            policy: DirectionPolicy::default(),
            shared_cache: true,
        }
    }
}

impl JointEngine {
    /// The cache-ablated variant.
    pub fn without_shared_cache() -> Self {
        JointEngine {
            shared_cache: false,
            ..Default::default()
        }
    }
}

struct InstanceState {
    direction: Direction,
    frontier_edges: u64,
    frontier_count: u64,
    visited_edges: u64,
    done: bool,
}

/// A whole joint group as one [`LevelEngine`]: the JSA/JFQ plus the
/// per-instance direction and progress bookkeeping.
struct JointProcess<'e, 'g> {
    g: &'e GpuGraph<'g>,
    sources: &'e [VertexId],
    policy: DirectionPolicy,
    shared_cache: bool,
    jsa: JointStatusArray,
    jfq: JointFrontierQueue,
    inst: Vec<InstanceState>,
    td_masks: Vec<u128>,
    newly_marked_count: Vec<u64>,
    newly_marked_edges: Vec<u64>,
}

impl LevelEngine for JointProcess<'_, '_> {
    fn level_cap(&self) -> u32 {
        MAX_LEVELS
    }

    fn has_work(&self) -> bool {
        // `any()` over an empty group is false, so a zero-instance run ends
        // immediately.
        self.inst.iter().any(|i| !i.done)
    }

    fn init(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer) {
        // Level 0: sources. Seeding is part of upload, not a kernel launch.
        for (j, &s) in self.sources.iter().enumerate() {
            self.jsa.set(s, j, 0);
            prof.lane_store(self.jsa.addr(s, j), 1);
        }
        timer.phase(prof, PhaseKind::Other);
    }

    fn run_level(
        &mut self,
        level: u32,
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    ) -> LevelStats {
        let csr = self.g.csr;
        let rev = self.g.reverse;
        let n = csr.num_vertices();
        let ni = self.sources.len();
        let total_edges = csr.num_edges() as u64;
        let depth = level as Depth;
        let prev = depth - 1;

        // Per-instance direction decisions.
        for st in self.inst.iter_mut().filter(|i| !i.done) {
            st.direction = self.policy.next(
                st.direction,
                st.frontier_edges,
                st.frontier_count,
                total_edges - st.visited_edges,
                n as u64,
            );
        }

        // --- JFQ generation: one warp scans each vertex's statuses. ---
        self.jfq.clear();
        self.td_masks.clear();
        prof.load_contiguous(self.jsa.base, 0, (n * ni) as u64, 1);
        prof.lanes((n * ni) as u64);
        for v in 0..n as VertexId {
            let statuses = self.jsa.statuses(v);
            let mut td = 0u128;
            let mut bu = 0u128;
            for (j, st) in self.inst.iter().enumerate() {
                if st.done {
                    continue;
                }
                match st.direction {
                    Direction::TopDown => {
                        if statuses[j] == prev {
                            td |= 1 << j;
                        }
                    }
                    Direction::BottomUp => {
                        if statuses[j] == ibfs_graph::DEPTH_UNVISITED {
                            bu |= 1 << j;
                        }
                    }
                }
            }
            if td | bu != 0 {
                // `__any()` vote found a frontier; one thread enqueues.
                self.jfq.push(v, td | bu);
                self.td_masks.push(td);
            }
        }
        prof.store_contiguous(self.jfq.base, 0, self.jfq.len() as u64, 4);
        prof.store_contiguous(self.jfq.mask_base, 0, self.jfq.len() as u64, 16);
        timer.phase(prof, PhaseKind::FrontierGeneration);

        // --- Expansion + inspection. ---
        prof.load_contiguous(self.jfq.base, 0, self.jfq.len() as u64, 4);
        self.newly_marked_count.iter_mut().for_each(|c| *c = 0);
        self.newly_marked_edges.iter_mut().for_each(|c| *c = 0);
        let mut edges_inspected = 0u64;
        let mut early_terms = 0u64;

        for (idx, (v, mask)) in self.jfq.iter().enumerate() {
            let td = self.td_masks[idx];
            let bu = mask & !td;

            if td != 0 {
                // Top-down: expand v's out-neighbors once for all
                // sharing instances via the shared-memory cache (or,
                // ablated, once per sharing instance from global).
                let neighbors = csr.neighbors(v);
                let sharers = td.count_ones() as u64;
                if self.shared_cache {
                    prof.load_contiguous(
                        self.g.adj_base,
                        csr.adj_start(v),
                        neighbors.len() as u64,
                        4,
                    );
                    prof.shared_store(neighbors.len() as u64);
                    prof.shared_load(neighbors.len() as u64 * sharers);
                } else {
                    for _ in 0..sharers {
                        prof.load_contiguous(
                            self.g.adj_base,
                            csr.adj_start(v),
                            neighbors.len() as u64,
                            4,
                        );
                    }
                }
                edges_inspected += neighbors.len() as u64 * sharers;
                prof.lanes(neighbors.len() as u64 * sharers);
                for &w in neighbors {
                    // N contiguous threads inspect w's contiguous JSA
                    // block: coalesced load + (if updated) store.
                    prof.load_block(self.jsa.addr(w, 0), ni as u32);
                    let mut wrote = 0u64;
                    let mut m = td;
                    while m != 0 {
                        let j = m.trailing_zeros() as usize;
                        m &= m - 1;
                        if !self.jsa.visited(w, j) {
                            self.jsa.set(w, j, depth);
                            self.newly_marked_count[j] += 1;
                            self.newly_marked_edges[j] += csr.out_degree(w) as u64;
                            wrote += 1;
                        }
                    }
                    if wrote > 0 {
                        prof.store_block(self.jsa.addr(w, 0), ni as u32);
                    }
                }
            }

            if bu != 0 {
                // Bottom-up: v is unvisited for the instances in `bu`;
                // scan its in-neighbors until each finds a parent.
                let parents = rev.neighbors(v);
                let mut searching = bu;
                let mut scanned = 0u64;
                for &p in parents {
                    if searching == 0 {
                        break;
                    }
                    scanned += 1;
                    prof.load_block(self.jsa.addr(p, 0), ni as u32);
                    prof.lanes(searching.count_ones() as u64);
                    edges_inspected += searching.count_ones() as u64;
                    let mut m = searching;
                    while m != 0 {
                        let j = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let d = self.jsa.depth(p, j);
                        if d < depth {
                            // Found a parent: early termination for j.
                            self.jsa.set(v, j, depth);
                            self.newly_marked_count[j] += 1;
                            self.newly_marked_edges[j] += csr.out_degree(v) as u64;
                            searching &= !(1 << j);
                        }
                    }
                }
                // Adjacency was streamed once through the cache for the
                // whole sub-warp, up to the last scan position (or per
                // instance when the cache is ablated).
                let streams = if self.shared_cache { 1 } else { bu.count_ones() as u64 };
                for _ in 0..streams {
                    prof.load_contiguous(self.g.radj_base, rev.adj_start(v), scanned, 4);
                }
                if self.shared_cache {
                    prof.shared_store(scanned);
                }
                if scanned < parents.len() as u64 {
                    early_terms += (bu & !searching).count_ones() as u64;
                }
                let found = (bu & !searching).count_ones() as u64;
                if found > 0 {
                    prof.store_block(self.jsa.addr(v, 0), ni as u32);
                }
            }
        }
        timer.phase(prof, PhaseKind::Inspection);

        let stats = LevelStats {
            level,
            direction: if self
                .inst
                .iter()
                .any(|i| !i.done && i.direction == Direction::BottomUp)
            {
                Direction::BottomUp
            } else {
                Direction::TopDown
            },
            unique_frontiers: self.jfq.len() as u64,
            instance_frontiers: self.jfq.total_instance_frontiers(),
            edges_inspected,
            early_terminations: early_terms,
        };

        // Per-instance progress bookkeeping.
        for (j, st) in self.inst.iter_mut().enumerate() {
            if st.done {
                continue;
            }
            if self.newly_marked_count[j] == 0 {
                st.done = true;
            } else {
                st.frontier_count = self.newly_marked_count[j];
                st.frontier_edges = self.newly_marked_edges[j];
                st.visited_edges += self.newly_marked_edges[j];
            }
        }
        stats
    }
}

impl Engine for JointEngine {
    fn name(&self) -> &'static str {
        "joint"
    }

    fn run_group_traced(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
        sink: &mut dyn TraceSink,
    ) -> GroupRun {
        let ni = sources.len();
        assert!(ni <= MAX_GROUP, "joint group limited to {MAX_GROUP} instances");
        let csr = g.csr;
        let n = csr.num_vertices();
        let before = prof.snapshot();
        let model = CostModel::new(prof.config);

        let jsa = JointStatusArray::new(n, ni.max(1), prof);
        let jfq = JointFrontierQueue::new(n, prof);
        let mut timer = SimTimer::start(model, prof);

        let inst: Vec<InstanceState> = sources
            .iter()
            .map(|&s| InstanceState {
                direction: Direction::TopDown,
                frontier_edges: csr.out_degree(s) as u64,
                frontier_count: 1,
                visited_edges: csr.out_degree(s) as u64,
                done: false,
            })
            .collect();

        let mut process = JointProcess {
            g,
            sources,
            policy: self.policy,
            shared_cache: self.shared_cache,
            jsa,
            jfq,
            inst,
            td_masks: Vec::with_capacity(n),
            newly_marked_count: vec![0u64; ni],
            newly_marked_edges: vec![0u64; ni],
        };
        let levels = LevelDriver { prof, timer: &mut timer, sink }.drive(&mut process);

        let counters = prof.snapshot().delta(&before);
        let mut depths = Vec::with_capacity(ni * n);
        for j in 0..ni {
            depths.extend(process.jsa.instance_depths(j));
        }
        let traversed = traversed_edges_for(csr, &depths, ni);
        GroupRun {
            engine: self.name(),
            num_instances: ni,
            num_vertices: n,
            depths,
            levels,
            counters,
            sim_seconds: timer.seconds(),
            traversed_edges: traversed,
            kernel_launches: timer.launch_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialEngine;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::{check_depths, reference_bfs};
    use ibfs_gpu_sim::DeviceConfig;

    #[test]
    fn matches_reference_on_figure1() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = JointEngine::default().run_group(&gg, &FIGURE1_SOURCES, &mut prof);
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(
                run.instance_depths(j),
                &reference_bfs(&g, s)[..],
                "instance {j} from source {s}"
            );
            check_depths(&g, &r, s, run.instance_depths(j)).unwrap();
        }
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat(9, 8, RmatParams::graph500(), 11);
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let sources: Vec<VertexId> = (0..32).collect();
        let run = JointEngine::default().run_group(&gg, &sources, &mut prof);
        for (j, &s) in sources.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..]);
        }
    }

    #[test]
    fn sharing_degree_at_least_one() {
        let g = rmat(8, 8, RmatParams::graph500(), 5);
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let sources: Vec<VertexId> = (0..16).collect();
        let run = JointEngine::default().run_group(&gg, &sources, &mut prof);
        assert!(run.sharing_degree() >= 1.0);
        assert!(run.sharing_ratio() <= 1.0 + 1e-9);
    }

    #[test]
    fn fewer_adjacency_loads_than_naive() {
        // The core §4 claim: joint expansion loads shared frontiers'
        // adjacency once, so total load transactions drop vs private
        // traversal.
        let g = rmat(9, 16, RmatParams::graph500(), 7);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..64).collect();

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let g1 = GpuGraph::new(&g, &r, &mut p1);
        let seq = SequentialEngine::default().run_group(&g1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let g2 = GpuGraph::new(&g, &r, &mut p2);
        let joint = JointEngine::default().run_group(&g2, &sources, &mut p2);

        assert_eq!(seq.depths, joint.depths);
        assert!(
            joint.counters.global_load_transactions < seq.counters.global_load_transactions,
            "joint {} vs sequential {}",
            joint.counters.global_load_transactions,
            seq.counters.global_load_transactions
        );
        assert!(joint.sim_seconds < seq.sim_seconds);
    }

    #[test]
    fn shared_cache_reduces_adjacency_loads() {
        // DESIGN.md §5 ablation: without the CTA cache, a shared frontier's
        // adjacency is reloaded per sharing instance.
        let g = rmat(9, 16, RmatParams::graph500(), 7);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..64).collect();

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let g1 = GpuGraph::new(&g, &r, &mut p1);
        let cached = JointEngine::default().run_group(&g1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let g2 = GpuGraph::new(&g, &r, &mut p2);
        let ablated = JointEngine::without_shared_cache().run_group(&g2, &sources, &mut p2);

        assert_eq!(cached.depths, ablated.depths);
        assert!(
            cached.counters.global_load_transactions
                < ablated.counters.global_load_transactions,
            "cache must cut global loads: {} vs {}",
            cached.counters.global_load_transactions,
            ablated.counters.global_load_transactions
        );
        assert!(cached.sim_seconds < ablated.sim_seconds);
    }

    #[test]
    fn single_instance_group_works() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = JointEngine::default().run_group(&gg, &[6], &mut prof);
        assert_eq!(run.instance_depths(0), &reference_bfs(&g, 6)[..]);
    }

    #[test]
    #[should_panic(expected = "joint group limited")]
    fn rejects_oversized_groups() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let sources: Vec<VertexId> = (0..129).map(|i| i % 9).collect();
        JointEngine::default().run_group(&gg, &sources, &mut prof);
    }
}
