//! Metrics: TEPS, sharing degree/ratio, workload-balance statistics, and
//! run summaries.
//!
//! These are the single source of truth for the ratio conventions every
//! layer shares: a zero denominator (no simulated time, no frontiers, no
//! instances) yields `0.0`, never NaN or infinity.

use crate::direction::Direction;
use crate::engine::{GroupRun, LevelStats};
use crate::trace::TraversalEvent;
use ibfs_graph::{Csr, Depth, DEPTH_UNVISITED};
use ibfs_util::json_struct;

/// Traversed-edges-per-second from raw quantities.
pub fn teps(traversed_edges: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        traversed_edges as f64 / seconds
    }
}

/// Sharing degree `SD = Σ_k Σ_j |FQ_j(k)| / Σ_k |JFQ(k)|` (Equation 1) over
/// a set of per-level statistics. For private-queue engines every frontier
/// is its own queue entry, so SD is 1 by construction.
pub fn sharing_degree<'a>(levels: impl IntoIterator<Item = &'a LevelStats>) -> f64 {
    let mut unique = 0u64;
    let mut total = 0u64;
    for l in levels {
        unique += l.unique_frontiers;
        total += l.instance_frontiers;
    }
    if unique == 0 {
        0.0
    } else {
        total as f64 / unique as f64
    }
}

/// Sharing ratio: sharing degree over group size (§5.1).
pub fn sharing_ratio(sharing_degree: f64, instances: usize) -> f64 {
    if instances == 0 {
        0.0
    } else {
        sharing_degree / instances as f64
    }
}

/// [`sharing_degree`] over a stream of per-level trace events — the serve
/// layer derives each batch's sharing degree from the [`TraversalEvent`]s
/// its traced run emitted, without keeping the `GroupRun`s around.
pub fn event_sharing_degree<'a>(events: impl IntoIterator<Item = &'a TraversalEvent>) -> f64 {
    let mut unique = 0u64;
    let mut total = 0u64;
    for e in events {
        unique += e.unique_frontiers;
        total += e.instance_frontiers;
    }
    if unique == 0 {
        0.0
    } else {
        total as f64 / unique as f64
    }
}

/// Batch occupancy: how full a dispatched batch is relative to the §3
/// group-size clamp. Zero-clamp follows the zero-denominator convention.
pub fn batch_occupancy(requests: usize, max_batch: usize) -> f64 {
    if max_batch == 0 {
        0.0
    } else {
        requests as f64 / max_batch as f64
    }
}

/// Per-batch serve metrics, recorded by the serve layer's workers — one
/// record per batch dispatched to a device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchMetrics {
    /// Batch sequence number (dispatch order).
    pub batch: u64,
    /// Device (worker) that executed the batch.
    pub device: u64,
    /// Requests answered by the batch (distinct sources traversed).
    pub requests: u64,
    /// [`batch_occupancy`] against the configured max batch.
    pub occupancy: f64,
    /// Mean wall-clock seconds requests waited between admission and the
    /// start of the batch's traversal.
    pub queue_wait_s: f64,
    /// [`event_sharing_degree`] of the batch's traversal.
    pub sharing_degree: f64,
    /// Simulated seconds of the batch's traversal.
    pub sim_seconds: f64,
    /// Edges traversed across the batch's instances.
    pub traversed_edges: u64,
    /// Simulated TEPS of the batch.
    pub teps: f64,
}

json_struct!(BatchMetrics {
    batch,
    device,
    requests,
    occupancy,
    queue_wait_s,
    sharing_degree,
    sim_seconds,
    traversed_edges,
    teps,
});

/// Formats a TEPS value the way the paper quotes them ("640 billion TEPS").
pub fn format_teps(teps: f64) -> String {
    if teps >= 1e12 {
        format!("{:.1} trillion TEPS", teps / 1e12)
    } else if teps >= 1e9 {
        format!("{:.1} billion TEPS", teps / 1e9)
    } else if teps >= 1e6 {
        format!("{:.1} million TEPS", teps / 1e6)
    } else {
        format!("{teps:.0} TEPS")
    }
}

/// Population mean and standard deviation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanStd {
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

json_struct!(MeanStd { mean, stddev });

/// Computes mean and stddev of a sample.
pub fn mean_std(values: &[f64]) -> MeanStd {
    if values.is_empty() {
        return MeanStd::default();
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    MeanStd {
        mean,
        stddev: var.max(0.0).sqrt(),
    }
}

/// Number of bottom-up inspections instance with depth array `depths` would
/// perform, given the set of levels the group ran bottom-up. This is the
/// per-instance workload of Figure 11: an unvisited vertex scans parents
/// until it finds one at the previous depth (early termination), a vertex
/// that stays unvisited scans its whole parent list.
pub fn bottom_up_inspections(rev: &Csr, depths: &[Depth], bottom_up_levels: &[u32]) -> u64 {
    let mut total = 0u64;
    for v in rev.vertices() {
        let d = depths[v as usize];
        for &k in bottom_up_levels {
            let k = k as Depth;
            if d == k {
                // Scan until the first parent at depth k-1.
                let mut scanned = 0u64;
                for &p in rev.neighbors(v) {
                    scanned += 1;
                    if depths[p as usize] == k - 1 {
                        break;
                    }
                }
                total += scanned;
            } else if d > k {
                // Unvisited at this level (including never visited): full
                // scan finds no parent.
                total += rev.out_degree(v) as u64;
            }
        }
    }
    total
}

/// Per-instance bottom-up inspection counts for a group run, and their
/// spread — the Figure 11 statistic. Uses the run's recorded bottom-up
/// levels.
pub fn bottom_up_balance(rev: &Csr, run: &GroupRun) -> MeanStd {
    let bu_levels: Vec<u32> = run
        .levels
        .iter()
        .filter(|l| l.direction == Direction::BottomUp)
        .map(|l| l.level)
        .collect();
    let counts: Vec<f64> = (0..run.num_instances)
        .map(|j| bottom_up_inspections(rev, run.instance_depths(j), &bu_levels) as f64)
        .collect();
    mean_std(&counts)
}

/// Fraction of vertices each instance reached (sanity metric for APSP runs
/// on graphs with small disconnected fringes).
pub fn reach_fraction(run: &GroupRun) -> f64 {
    if run.num_instances == 0 || run.num_vertices == 0 {
        return 0.0;
    }
    let reached = run
        .depths
        .iter()
        .filter(|&&d| d != DEPTH_UNVISITED)
        .count();
    reached as f64 / (run.num_instances * run.num_vertices) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::figure1;
    use ibfs_graph::validate::reference_bfs;

    #[test]
    fn teps_and_formatting() {
        assert_eq!(teps(100, 2.0), 50.0);
        assert_eq!(teps(100, 0.0), 0.0);
        assert_eq!(format_teps(5.0e9), "5.0 billion TEPS");
        assert_eq!(format_teps(1.5e12), "1.5 trillion TEPS");
        assert_eq!(format_teps(2.0e6), "2.0 million TEPS");
        assert_eq!(format_teps(10.0), "10 TEPS");
    }

    #[test]
    fn sharing_degree_and_ratio_conventions() {
        let levels = [
            LevelStats {
                level: 1,
                direction: Direction::TopDown,
                unique_frontiers: 2,
                instance_frontiers: 4,
                edges_inspected: 0,
                early_terminations: 0,
            },
            LevelStats {
                level: 2,
                direction: Direction::TopDown,
                unique_frontiers: 1,
                instance_frontiers: 2,
                edges_inspected: 0,
                early_terminations: 0,
            },
        ];
        assert_eq!(sharing_degree(&levels), 2.0);
        assert_eq!(sharing_degree(&[]), 0.0);
        assert_eq!(sharing_ratio(2.0, 4), 0.5);
        assert_eq!(sharing_ratio(2.0, 0), 0.0);
    }

    #[test]
    fn event_sharing_degree_matches_level_stats() {
        use crate::trace::TraversalEvent;
        let event = |unique, inst| TraversalEvent {
            group: 0,
            batch: 0,
            level: 1,
            direction: Direction::TopDown,
            unique_frontiers: unique,
            instance_frontiers: inst,
            edges_inspected: 0,
            early_terminations: 0,
            load_transactions: 0,
            store_transactions: 0,
            atomic_transactions: 0,
            sim_seconds: 0.0,
        };
        let events = [event(2, 4), event(1, 2)];
        assert_eq!(event_sharing_degree(&events), 2.0);
        assert_eq!(event_sharing_degree(&[]), 0.0);
    }

    #[test]
    fn batch_occupancy_conventions() {
        assert_eq!(batch_occupancy(4, 8), 0.5);
        assert_eq!(batch_occupancy(8, 8), 1.0);
        assert_eq!(batch_occupancy(1, 0), 0.0);
    }

    #[test]
    fn mean_std_basics() {
        let s = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), MeanStd::default());
    }

    #[test]
    fn bottom_up_inspections_counts_early_termination() {
        let g = figure1();
        let d = reference_bfs(&g, 0);
        // Level 3 bottom-up: vertices 6, 7, 8 have depth 3 in BFS-0
        // (the paper's Figure 1(c) bottom-up level). Each scans its parent
        // list until a depth-2 parent.
        let total = bottom_up_inspections(&g, &d, &[3]);
        // Vertex 6: parents sorted [3, 7]; 3 has depth 2 → 1 inspection
        // (the paper's early-termination example for vertex 6!).
        // Vertex 7: [5, 6, 8]; 5 has depth 2 → 1. Vertex 8: [5, 7]; 5 → 1.
        assert_eq!(total, 3);
    }

    #[test]
    fn unvisited_vertices_scan_fully() {
        let mut b = ibfs_graph::CsrBuilder::new(4);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(2, 3);
        let g = b.build();
        let d = reference_bfs(&g, 0);
        // Level 1 bottom-up: 1 has depth 1 (parent 0 found, 1 inspection);
        // 2 and 3 are unreachable, each scans its single parent.
        assert_eq!(bottom_up_inspections(&g, &d, &[1]), 3);
    }

    #[test]
    fn no_bottom_up_levels_means_zero() {
        let g = figure1();
        let d = reference_bfs(&g, 0);
        assert_eq!(bottom_up_inspections(&g, &d, &[]), 0);
    }
}
