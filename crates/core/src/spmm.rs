//! SpMM-BC-like baseline: concurrent top-down-only BFS.
//!
//! The paper compares against SpMM-BC (Sarıyüce et al.), a GPU concurrent
//! BFS used for regularized centrality that "does not support bottom-up
//! BFS". We model it as joint traversal pinned to top-down: it enjoys the
//! joint frontier queue but pays full top-down inspection on the heavy
//! middle levels where direction-optimizing engines switch to bottom-up.

use crate::direction::DirectionPolicy;
use crate::engine::{Engine, GpuGraph, GroupRun};
use crate::joint::JointEngine;
use crate::trace::TraceSink;
use ibfs_graph::VertexId;
use ibfs_gpu_sim::Profiler;

/// The SpMM-BC-like top-down-only engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpmmEngine;

impl Engine for SpmmEngine {
    fn name(&self) -> &'static str {
        "spmm-bc"
    }

    fn run_group_traced(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
        sink: &mut dyn TraceSink,
    ) -> GroupRun {
        let inner = JointEngine {
            policy: DirectionPolicy::top_down_only(),
            ..Default::default()
        };
        let mut run = inner.run_group_traced(g, sources, prof, sink);
        run.engine = self.name();
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitwise::BitwiseEngine;
    use crate::direction::Direction;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::reference_bfs;
    use ibfs_gpu_sim::DeviceConfig;

    #[test]
    fn matches_reference_and_never_goes_bottom_up() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SpmmEngine.run_group(&gg, &FIGURE1_SOURCES, &mut prof);
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..]);
        }
        assert!(run
            .levels
            .iter()
            .all(|l| l.direction == Direction::TopDown));
        assert_eq!(run.engine, "spmm-bc");
    }

    #[test]
    fn slower_than_full_ibfs_on_powerlaw_graphs() {
        // Figure 22: GPU-iBFS traverses ~2× faster than SpMM-BC.
        let g = rmat(9, 16, RmatParams::graph500(), 13);
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..64).collect();

        let mut p1 = Profiler::new(DeviceConfig::k40());
        let g1 = GpuGraph::new(&g, &r, &mut p1);
        let spmm = SpmmEngine.run_group(&g1, &sources, &mut p1);

        let mut p2 = Profiler::new(DeviceConfig::k40());
        let g2 = GpuGraph::new(&g, &r, &mut p2);
        let ibfs = BitwiseEngine::default().run_group(&g2, &sources, &mut p2);

        assert_eq!(spmm.depths, ibfs.depths);
        assert!(ibfs.sim_seconds < spmm.sim_seconds);
    }
}
