//! GroupBy (§5): forming groups of BFS instances that maximize frontier
//! sharing.
//!
//! The out-degree-based rules of §5.2:
//!
//! * **Rule 1** — the out-degrees of grouped source vertices are less than
//!   `p` (selected ascending from 4, 16, 64, 128);
//! * **Rule 2** — grouped sources connect to at least one common vertex with
//!   out-degree greater than `q` (default 128).
//!
//! Small-degree sources hanging off a shared hub reach the hub's huge
//! neighborhood at the same level with little non-shared fringe, so their
//! frontiers overlap heavily (Figure 7). Groups are applied in order: full
//! rule-1+2 groups per hub, merged leftovers across hubs, then random
//! grouping for whatever remains. A uniform-degree fallback groups sources
//! by any shared neighbor (the paper's RD-graph rule).

use ibfs_graph::{degree, Csr, VertexId};

/// When to use the common-neighbor rule for uniform-degree graphs
/// ("For random graph that has a relatively uniform outdegree distribution,
/// iBFS can adopt a slightly different rule").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UniformFallback {
    /// Use the common-neighbor rule when no hubs exceed `q` *and* the
    /// degree distribution is actually uniform (coefficient of variation
    /// below ½). Power-law graphs with a too-large `q` fall through to
    /// random grouping, as the paper describes.
    #[default]
    Auto,
    /// Always use the common-neighbor rule when no hubs exceed `q`.
    Always,
    /// Never use it.
    Never,
}

/// Tuning for the out-degree rules.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupByConfig {
    /// Rule 2 threshold: hubs have out-degree > `q`.
    pub q: usize,
    /// Rule 1 thresholds, tried in ascending order.
    pub p_sequence: Vec<usize>,
    /// Maximum group size `N` (the paper defaults to 128).
    pub group_size: usize,
    /// Seed for the random fallback.
    pub seed: u64,
    /// Common-neighbor rule policy for uniform graphs.
    pub uniform_fallback: UniformFallback,
}

impl Default for GroupByConfig {
    fn default() -> Self {
        GroupByConfig {
            q: 128,
            p_sequence: vec![4, 16, 64, 128],
            group_size: 128,
            seed: 0x5EED,
            uniform_fallback: UniformFallback::Auto,
        }
    }
}

impl GroupByConfig {
    /// Same rules with a different hub threshold `q` (the Figure 8 sweep).
    pub fn with_q(mut self, q: usize) -> Self {
        self.q = q;
        self
    }

    /// Same rules with a different group size `N`.
    pub fn with_group_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.group_size = n;
        self
    }
}

/// How to partition sources into groups.
#[derive(Clone, Debug, PartialEq)]
pub enum GroupingStrategy {
    /// Deterministic pseudo-random grouping (the paper's baseline).
    Random {
        /// Shuffle seed.
        seed: u64,
        /// Group size `N`.
        group_size: usize,
    },
    /// The out-degree GroupBy rules.
    OutDegreeRules(GroupByConfig),
}

impl GroupingStrategy {
    /// Random grouping with the paper's default N = 128.
    pub fn random(seed: u64) -> Self {
        GroupingStrategy::Random { seed, group_size: 128 }
    }

    /// GroupBy with default configuration.
    pub fn group_by() -> Self {
        GroupingStrategy::OutDegreeRules(GroupByConfig::default())
    }

    /// The group size this strategy produces.
    pub fn group_size(&self) -> usize {
        match self {
            GroupingStrategy::Random { group_size, .. } => *group_size,
            GroupingStrategy::OutDegreeRules(c) => c.group_size,
        }
    }

    /// Partitions `sources` into groups.
    pub fn group(&self, g: &Csr, sources: &[VertexId]) -> Grouping {
        match self {
            GroupingStrategy::Random { seed, group_size } => {
                random_grouping(sources, *group_size, *seed)
            }
            GroupingStrategy::OutDegreeRules(cfg) => outdegree_grouping(g, sources, cfg),
        }
    }
}

/// A partition of the requested sources into traversal groups.
#[derive(Clone, Debug, PartialEq)]
pub struct Grouping {
    /// The groups, each at most `N` sources. Rule-formed groups come first.
    pub groups: Vec<Vec<VertexId>>,
    /// How many of the leading groups were formed by the GroupBy rules
    /// (the rest are the random remainder; 0 for random grouping).
    pub rule_groups: usize,
}

impl Grouping {
    /// Total sources across groups.
    pub fn total_sources(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Asserts the grouping is a partition of `sources` (every source
    /// exactly once) with groups within `max_size`. Used by tests and
    /// debug assertions.
    pub fn validate(&self, sources: &[VertexId], max_size: usize) {
        assert!(self.groups.iter().all(|g| !g.is_empty() && g.len() <= max_size));
        let mut seen: Vec<VertexId> = self.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        let mut want = sources.to_vec();
        want.sort_unstable();
        assert_eq!(seen, want, "grouping must be a permutation of the sources");
    }
}

/// Deterministic Fisher–Yates shuffle with an xorshift generator (no rand
/// dependency in the hot library path).
fn shuffle(items: &mut [VertexId], seed: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Random grouping: shuffle, then chunk into groups of `n`.
pub fn random_grouping(sources: &[VertexId], n: usize, seed: u64) -> Grouping {
    assert!(n > 0);
    let mut order = sources.to_vec();
    shuffle(&mut order, seed);
    Grouping {
        groups: order.chunks(n).map(|c| c.to_vec()).collect(),
        rule_groups: 0,
    }
}

/// The out-degree GroupBy rules.
pub fn outdegree_grouping(g: &Csr, sources: &[VertexId], cfg: &GroupByConfig) -> Grouping {
    assert!(cfg.group_size > 0);
    let n = cfg.group_size;
    let mut assigned = vec![false; g.num_vertices()];
    let mut in_request = vec![false; g.num_vertices()];
    for &s in sources {
        in_request[s as usize] = true;
    }
    let mut groups: Vec<Vec<VertexId>> = Vec::new();
    let mut leftovers: Vec<VertexId> = Vec::new();

    let hubs = degree::hubs(g, cfg.q);
    // Rule 1 escalates p; each (p, hub) pass collects that hub's unassigned
    // source neighbors with out-degree below p.
    for &p in &cfg.p_sequence {
        for &h in &hubs {
            let mut bucket: Vec<VertexId> = Vec::new();
            for &s in g.neighbors(h) {
                if in_request[s as usize]
                    && !assigned[s as usize]
                    && g.out_degree(s) < p
                    && g.has_edge(s, h)
                {
                    bucket.push(s);
                    assigned[s as usize] = true;
                }
            }
            // Full groups run directly; partial buckets are merged with
            // other hubs' leftovers below.
            let mut it = bucket.chunks_exact(n);
            for chunk in it.by_ref() {
                groups.push(chunk.to_vec());
            }
            leftovers.extend_from_slice(it.remainder());
        }
    }

    // Uniform-degree fallback (the RD rule): sources sharing any common
    // neighbor when there are no hubs at all.
    let use_fallback = hubs.is_empty()
        && match cfg.uniform_fallback {
            UniformFallback::Always => true,
            UniformFallback::Never => false,
            UniformFallback::Auto => {
                let stats = degree::DegreeStats::of(g);
                stats.avg > 0.0 && stats.stddev / stats.avg < 0.5
            }
        };
    if use_fallback {
        for v in g.vertices() {
            let mut bucket: Vec<VertexId> = Vec::new();
            for &s in g.neighbors(v) {
                if in_request[s as usize] && !assigned[s as usize] {
                    bucket.push(s);
                    assigned[s as usize] = true;
                }
            }
            let mut it = bucket.chunks_exact(n);
            for chunk in it.by_ref() {
                groups.push(chunk.to_vec());
            }
            leftovers.extend_from_slice(it.remainder());
        }
    }

    // Merge leftovers across hubs into full groups.
    let mut it = leftovers.chunks_exact(n);
    for chunk in it.by_ref() {
        groups.push(chunk.to_vec());
    }
    let mut remaining: Vec<VertexId> = it.remainder().to_vec();

    // Anything the rules never touched is grouped randomly (the paper:
    // "when no BFS satisfies both rules, iBFS will group the remaining
    // them in a random manner").
    let mut untouched: Vec<VertexId> = sources
        .iter()
        .copied()
        .filter(|&s| !assigned[s as usize])
        .collect();
    // `sources` may contain duplicates of an assigned vertex only if the
    // caller passed duplicates; the partition contract assumes distinct
    // sources.
    remaining.append(&mut untouched);
    let rule_groups = groups.len();
    shuffle(&mut remaining, cfg.seed);
    for chunk in remaining.chunks(n) {
        groups.push(chunk.to_vec());
    }

    Grouping { groups, rule_groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::analytic_sharing_degree;
    use ibfs_graph::generators::{chung_lu, powerlaw_weights, uniform_random};
    use ibfs_graph::validate::reference_bfs;

    fn powerlaw() -> Csr {
        let w = powerlaw_weights(2048, 16.0, 2.1);
        chung_lu(&w, 77)
    }

    #[test]
    fn random_grouping_is_partition() {
        let sources: Vec<VertexId> = (0..100).collect();
        let grouping = random_grouping(&sources, 16, 42);
        grouping.validate(&sources, 16);
        assert_eq!(grouping.groups.len(), 7);
        assert_eq!(grouping.total_sources(), 100);
    }

    #[test]
    fn random_grouping_deterministic_in_seed() {
        let sources: Vec<VertexId> = (0..64).collect();
        assert_eq!(random_grouping(&sources, 8, 1), random_grouping(&sources, 8, 1));
        assert_ne!(random_grouping(&sources, 8, 1), random_grouping(&sources, 8, 2));
    }

    #[test]
    fn outdegree_grouping_is_partition() {
        let g = powerlaw();
        let sources: Vec<VertexId> = g.vertices().collect();
        let cfg = GroupByConfig { group_size: 32, q: 64, ..Default::default() };
        let grouping = outdegree_grouping(&g, &sources, &cfg);
        grouping.validate(&sources, 32);
    }

    #[test]
    fn groupby_beats_random_on_sharing_degree() {
        // The point of §5: rule-formed groups share more frontiers. Compare
        // the analytic sharing degree of the first full group under each
        // strategy.
        let g = powerlaw();
        let sources: Vec<VertexId> = g.vertices().collect();
        let n = 32;
        let by = outdegree_grouping(&g, &sources, &GroupByConfig {
            group_size: n,
            q: 64,
            ..Default::default()
        });
        let rnd = random_grouping(&sources, n, 7);

        let sd_of = |group: &[VertexId]| {
            let arrays: Vec<_> = group.iter().map(|&s| reference_bfs(&g, s)).collect();
            analytic_sharing_degree(&arrays)
        };
        // Average the first few full groups of each.
        let avg = |grouping: &Grouping| {
            let full: Vec<_> = grouping.groups.iter().filter(|gr| gr.len() == n).take(4).collect();
            assert!(!full.is_empty());
            full.iter().map(|gr| sd_of(gr)).sum::<f64>() / full.len() as f64
        };
        let sd_by = avg(&by);
        let sd_rnd = avg(&rnd);
        assert!(
            sd_by > sd_rnd,
            "GroupBy SD {sd_by:.2} should beat random SD {sd_rnd:.2}"
        );
    }

    #[test]
    fn uniform_fallback_groups_by_common_neighbor() {
        let g = uniform_random(512, 4, 3);
        let sources: Vec<VertexId> = g.vertices().collect();
        // q larger than any degree: no hubs → fallback path.
        let cfg = GroupByConfig { q: 10_000, group_size: 16, ..Default::default() };
        let grouping = outdegree_grouping(&g, &sources, &cfg);
        grouping.validate(&sources, 16);
    }

    #[test]
    fn strategy_api_round_trip() {
        let g = powerlaw();
        let sources: Vec<VertexId> = (0..256).collect();
        for strat in [
            GroupingStrategy::random(9),
            GroupingStrategy::group_by(),
            GroupingStrategy::OutDegreeRules(GroupByConfig::default().with_q(64).with_group_size(64)),
        ] {
            let grouping = strat.group(&g, &sources);
            grouping.validate(&sources, strat.group_size());
        }
    }

    #[test]
    fn subset_of_sources_only_groups_requested() {
        let g = powerlaw();
        let sources: Vec<VertexId> = (0..100).map(|i| i * 7 % 2048).collect();
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let grouping = GroupingStrategy::group_by().group(&g, &dedup);
        grouping.validate(&dedup, 128);
    }
}
