//! Sequential baseline: per-instance direction-optimizing BFS.
//!
//! This is the paper's "sequential" comparison point — a state-of-the-art
//! single-source GPU BFS (Enterprise-style status-array traversal with
//! Beamer direction switching and bottom-up early termination) run once per
//! source, back to back. It is also the stand-in for B40C in the Figure 22
//! comparison: the paper notes B40C "has similar performance as the
//! sequential or naive implementation".
//!
//! The per-level loop itself lives in [`crate::driver::LevelDriver`]; this
//! module contributes the single-source [`LevelEngine`] and the
//! [`PhaseAccum`] timer that prices levels both solo (roofline) and as
//! Hyper-Q demand for the naive engine.

use crate::direction::{Direction, DirectionPolicy};
use crate::driver::{LevelDriver, LevelEngine};
use crate::engine::{traversed_edges_for, Engine, GpuGraph, GroupRun, LevelStats};
use crate::frontier::FQ_ID_BYTES;
use crate::status::StatusArray;
use crate::trace::TraceSink;
use ibfs_graph::{Depth, VertexId};
use ibfs_gpu_sim::hyperq::KernelDemand;
use ibfs_gpu_sim::{CostModel, Counters, PhaseKind, PhaseTimer, Profiler};

/// Maximum BFS depth the engines support (u8 with a sentinel).
pub const MAX_LEVELS: u32 = 254;

/// Accumulates per-phase roofline costs and total compute/memory demand.
///
/// `solo_cycles` prices each phase as `max(compute, memory) + launch`,
/// which is the kernel-per-level execution every engine uses when it owns
/// the whole device. `demand` keeps the unrooflined totals so Hyper-Q can
/// model instances *sharing* the device (the naive engine).
pub(crate) struct PhaseAccum {
    model: CostModel,
    last: Counters,
    /// Cycles if this instance runs alone.
    pub solo_cycles: f64,
    /// Aggregate compute/memory demand (no launch overhead, no roofline).
    pub demand: KernelDemand,
    /// Kernel phases executed.
    pub phases: u64,
    /// Kernel launches performed (one per level).
    pub launches: u64,
}

impl PhaseAccum {
    pub(crate) fn start(model: CostModel, prof: &Profiler) -> Self {
        PhaseAccum {
            model,
            last: prof.snapshot(),
            solo_cycles: 0.0,
            demand: KernelDemand::default(),
            phases: 0,
            launches: 0,
        }
    }
}

impl PhaseTimer for PhaseAccum {
    fn kernel_launch(&mut self) {
        self.solo_cycles += self.model.launch_overhead_cycles;
        self.launches += 1;
    }

    fn phase(&mut self, prof: &Profiler, _kind: PhaseKind) -> f64 {
        let now = prof.snapshot();
        let d = now.delta(&self.last);
        self.last = now;
        let compute = self.model.compute_cycles(&d);
        let memory = self.model.memory_cycles(&d);
        self.demand.compute_cycles += compute;
        self.demand.memory_cycles += memory;
        let cycles = compute.max(memory);
        self.solo_cycles += cycles;
        self.phases += 1;
        cycles
    }

    fn cycles(&self) -> f64 {
        self.solo_cycles
    }

    fn seconds(&self) -> f64 {
        self.model.seconds(self.solo_cycles)
    }

    fn launches(&self) -> u64 {
        self.launches
    }
}

/// Output of one single-source traversal.
pub(crate) struct SingleRun {
    pub depths: Vec<Depth>,
    pub levels: Vec<LevelStats>,
    pub demand: KernelDemand,
    pub solo_cycles: f64,
    pub launches: u64,
}

/// One direction-optimizing single-source BFS as a [`LevelEngine`]: a
/// private status array and frontier queue, driven level by level.
struct SingleSource<'e, 'g> {
    g: &'e GpuGraph<'g>,
    source: VertexId,
    policy: DirectionPolicy,
    level_cap: u32,
    sa: StatusArray,
    fq_base: u64,
    frontier: Vec<VertexId>,
    queue: Vec<VertexId>,
    newly_marked: Vec<VertexId>,
    frontier_edges: u64,
    visited_edges: u64,
    dir: Direction,
    done: bool,
    levels_total_edges: u64,
}

impl LevelEngine for SingleSource<'_, '_> {
    fn level_cap(&self) -> u32 {
        self.level_cap
    }

    fn has_work(&self) -> bool {
        !self.done && !self.frontier.is_empty()
    }

    fn init(&mut self, prof: &mut Profiler, timer: &mut dyn PhaseTimer) {
        // Level 0: the source. Seeding is itself a (trivial) kernel.
        timer.kernel_launch();
        self.sa.set(self.source, 0);
        prof.lane_store(self.sa.addr(self.source), 1);
        timer.phase(prof, PhaseKind::Other);
    }

    fn run_level(
        &mut self,
        level: u32,
        prof: &mut Profiler,
        timer: &mut dyn PhaseTimer,
    ) -> LevelStats {
        let csr = self.g.csr;
        let rev = self.g.reverse;
        let n = csr.num_vertices();
        let depth = level as Depth;
        self.dir = self.policy.next(
            self.dir,
            self.frontier_edges,
            self.frontier.len() as u64,
            self.levels_total_edges - self.visited_edges,
            n as u64,
        );

        // --- Frontier-queue generation: scan the status array. ---
        self.queue.clear();
        prof.load_contiguous(self.sa.base, 0, n as u64, 1);
        prof.lanes(n as u64);
        match self.dir {
            Direction::TopDown => {
                // Enqueue the vertices discovered at the previous level.
                self.queue.extend_from_slice(&self.frontier);
            }
            Direction::BottomUp => {
                // Bottom-up treats unvisited vertices as frontiers.
                let sa = &self.sa;
                self.queue
                    .extend((0..n as VertexId).filter(|&v| !sa.visited(v)));
            }
        }
        prof.store_contiguous(self.fq_base, 0, self.queue.len() as u64, 4);
        timer.phase(prof, PhaseKind::FrontierGeneration);

        // --- Expansion + inspection. ---
        prof.load_contiguous(self.fq_base, 0, self.queue.len() as u64, 4);
        self.newly_marked.clear();
        let mut edges_inspected = 0u64;
        let mut early_terms = 0u64;
        match self.dir {
            Direction::TopDown => {
                for &f in &self.queue {
                    let neighbors = csr.neighbors(f);
                    prof.load_contiguous(
                        self.g.adj_base,
                        csr.adj_start(f),
                        neighbors.len() as u64,
                        4,
                    );
                    prof.lanes(neighbors.len() as u64);
                    edges_inspected += neighbors.len() as u64;
                    for chunk in neighbors.chunks(32) {
                        prof.warp_gather(chunk.iter().map(|&w| self.sa.addr(w)), 1);
                        let mut marked_addrs: Vec<u64> = Vec::new();
                        for &w in chunk {
                            if !self.sa.visited(w) {
                                self.sa.set(w, depth);
                                self.newly_marked.push(w);
                                marked_addrs.push(self.sa.addr(w));
                            }
                        }
                        if !marked_addrs.is_empty() {
                            prof.warp_scatter(marked_addrs.iter().copied(), 1);
                        }
                    }
                }
            }
            Direction::BottomUp => {
                for chunk in self.queue.chunks(32) {
                    let mut marked_addrs: Vec<u64> = Vec::new();
                    for &f in chunk {
                        let parents = rev.neighbors(f);
                        let mut inspected = 0u64;
                        let mut found = false;
                        for &p in parents {
                            inspected += 1;
                            if self.sa.visited(p) && self.sa.depth(p) < depth {
                                found = true;
                                break;
                            }
                        }
                        prof.load_contiguous(self.g.radj_base, rev.adj_start(f), inspected, 4);
                        // Each status check loads the parent's status byte;
                        // scans longer than a warp issue multiple requests.
                        for pch in parents[..inspected as usize].chunks(32) {
                            prof.warp_gather(pch.iter().map(|&p| self.sa.addr(p)), 1);
                        }
                        prof.lanes(inspected);
                        edges_inspected += inspected;
                        if found {
                            if inspected < parents.len() as u64 {
                                early_terms += 1;
                            }
                            self.sa.set(f, depth);
                            self.newly_marked.push(f);
                            marked_addrs.push(self.sa.addr(f));
                        }
                    }
                    if !marked_addrs.is_empty() {
                        prof.warp_scatter(marked_addrs.iter().copied(), 1);
                    }
                }
            }
        }
        timer.phase(prof, PhaseKind::Inspection);

        let stats = LevelStats {
            level,
            direction: self.dir,
            unique_frontiers: self.queue.len() as u64,
            instance_frontiers: self.queue.len() as u64,
            edges_inspected,
            early_terminations: early_terms,
        };

        if self.newly_marked.is_empty() {
            self.done = true;
        } else {
            self.frontier_edges = self
                .newly_marked
                .iter()
                .map(|&v| csr.out_degree(v) as u64)
                .sum();
            self.visited_edges += self.frontier_edges;
            std::mem::swap(&mut self.frontier, &mut self.newly_marked);
            self.newly_marked.clear();
        }
        stats
    }
}

/// Runs one direction-optimizing BFS from `source`, charging the profiler
/// for every access per the conventions in [`crate::engine`].
pub(crate) fn run_single(
    g: &GpuGraph<'_>,
    source: VertexId,
    policy: DirectionPolicy,
    prof: &mut Profiler,
    sink: &mut dyn TraceSink,
) -> SingleRun {
    run_single_capped(g, source, policy, 0, prof, sink)
}

/// [`run_single`] with a level cap (0 = unlimited).
pub(crate) fn run_single_capped(
    g: &GpuGraph<'_>,
    source: VertexId,
    policy: DirectionPolicy,
    max_levels: u32,
    prof: &mut Profiler,
    sink: &mut dyn TraceSink,
) -> SingleRun {
    let csr = g.csr;
    let n = csr.num_vertices();

    let sa = StatusArray::new(n, prof);
    let fq_base = prof.alloc(n as u64 * FQ_ID_BYTES);
    let model = CostModel::new(prof.config);
    let mut acc = PhaseAccum::start(model, prof);

    let level_cap = if max_levels == 0 { MAX_LEVELS } else { max_levels.min(MAX_LEVELS) };
    let mut engine = SingleSource {
        g,
        source,
        policy,
        level_cap,
        sa,
        fq_base,
        frontier: vec![source],
        queue: Vec::new(),
        newly_marked: Vec::new(),
        frontier_edges: csr.out_degree(source) as u64,
        visited_edges: csr.out_degree(source) as u64,
        dir: Direction::TopDown,
        done: false,
        levels_total_edges: csr.num_edges() as u64,
    };
    let levels = LevelDriver { prof, timer: &mut acc, sink }.drive(&mut engine);

    SingleRun {
        depths: engine.sa.into_depths(),
        levels,
        demand: acc.demand,
        solo_cycles: acc.solo_cycles,
        launches: acc.launches,
    }
}

/// Merges per-instance level stats into group-level stats by level index.
/// With private queues nothing is shared, so unique and per-instance
/// frontier counts both sum.
pub(crate) fn merge_level_stats(per_instance: &[Vec<LevelStats>]) -> Vec<LevelStats> {
    let max_levels = per_instance.iter().map(|l| l.len()).max().unwrap_or(0);
    (0..max_levels)
        .map(|k| {
            let mut out = LevelStats {
                level: k as u32 + 1,
                direction: Direction::TopDown,
                unique_frontiers: 0,
                instance_frontiers: 0,
                edges_inspected: 0,
                early_terminations: 0,
            };
            for levels in per_instance {
                if let Some(l) = levels.get(k) {
                    out.direction = l.direction;
                    out.unique_frontiers += l.unique_frontiers;
                    out.instance_frontiers += l.instance_frontiers;
                    out.edges_inspected += l.edges_inspected;
                    out.early_terminations += l.early_terminations;
                }
            }
            out
        })
        .collect()
}

/// The sequential engine: instances run back to back, each owning the whole
/// device.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine {
    /// Direction-switch policy.
    pub policy: DirectionPolicy,
    /// Cap on traversal levels; 0 means unlimited.
    pub max_levels: u32,
}

impl Engine for SequentialEngine {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run_group_traced(
        &self,
        g: &GpuGraph<'_>,
        sources: &[VertexId],
        prof: &mut Profiler,
        sink: &mut dyn TraceSink,
    ) -> GroupRun {
        let before = prof.snapshot();
        let model = CostModel::new(prof.config);
        let n = g.num_vertices();
        let mut depths = Vec::with_capacity(sources.len() * n);
        let mut all_levels = Vec::with_capacity(sources.len());
        let mut cycles = 0.0;
        let mut launches = 0u64;
        for &s in sources {
            let run = run_single_capped(g, s, self.policy, self.max_levels, prof, sink);
            depths.extend_from_slice(&run.depths);
            all_levels.push(run.levels);
            cycles += run.solo_cycles;
            launches += run.launches;
        }
        let counters = prof.snapshot().delta(&before);
        let traversed = traversed_edges_for(g.csr, &depths, sources.len());
        GroupRun {
            engine: self.name(),
            num_instances: sources.len(),
            num_vertices: n,
            depths,
            levels: merge_level_stats(&all_levels),
            counters,
            sim_seconds: model.seconds(cycles),
            traversed_edges: traversed,
            kernel_launches: launches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::{check_depths, reference_bfs};
    use ibfs_graph::DEPTH_UNVISITED;
    use ibfs_gpu_sim::DeviceConfig;

    #[test]
    fn matches_reference_on_figure1() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &FIGURE1_SOURCES, &mut prof);
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..], "source {s}");
            check_depths(&g, &r, s, run.instance_depths(j)).unwrap();
        }
        assert!(run.sim_seconds > 0.0);
        assert!(run.teps() > 0.0);
        assert_eq!(run.traversed_edges, 4 * g.num_edges() as u64);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = ibfs_graph::CsrBuilder::new(6);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(4, 5);
        let g = b.build();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert_eq!(run.depth_of(0, 2), 2);
        assert_eq!(run.depth_of(0, 4), DEPTH_UNVISITED);
        assert_eq!(run.depth_of(0, 3), DEPTH_UNVISITED);
    }

    #[test]
    fn single_vertex_graph() {
        let g = ibfs_graph::CsrBuilder::new(1).build();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert_eq!(run.depth_of(0, 0), 0);
        assert_eq!(run.traversed_edges, 0);
    }

    #[test]
    fn counters_accumulate_traffic() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert!(run.counters.global_load_transactions > 0);
        assert!(run.counters.global_store_transactions > 0);
        assert!(run.counters.lane_instructions > 0);
    }

    #[test]
    fn uses_bottom_up_on_dense_graphs() {
        // A clique forces a frontier explosion and a bottom-up level.
        let n = 64;
        let mut b = ibfs_graph::CsrBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_undirected_edge(u, v);
            }
        }
        let g = b.build();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert!(run
            .levels
            .iter()
            .any(|l| l.direction == Direction::BottomUp));
        assert_eq!(run.instance_depths(0), &reference_bfs(&g, 0)[..]);
    }

    #[test]
    fn early_termination_happens_bottom_up() {
        use ibfs_graph::generators::{rmat, RmatParams};
        let g = rmat(9, 16, RmatParams::graph500(), 8);
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0, 1, 2, 3], &mut prof);
        assert!(run
            .levels
            .iter()
            .any(|l| l.direction == Direction::BottomUp));
        let et: u64 = run.levels.iter().map(|l| l.early_terminations).sum();
        assert!(et > 0, "power-law bottom-up should terminate early");
    }

    #[test]
    fn per_instance_levels_are_traced() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let mut sink = crate::trace::RecorderSink::default();
        let run = SequentialEngine::default().run_group_traced(
            &gg,
            &FIGURE1_SOURCES,
            &mut prof,
            &mut sink,
        );
        // One event stream per instance, each restarting at level 1.
        let restarts = sink.events.iter().filter(|e| e.level == 1).count();
        assert_eq!(restarts, FIGURE1_SOURCES.len());
        assert_eq!(run.kernel_launches, sink.events.len() as u64 + FIGURE1_SOURCES.len() as u64);
    }
}
