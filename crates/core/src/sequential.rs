//! Sequential baseline: per-instance direction-optimizing BFS.
//!
//! This is the paper's "sequential" comparison point — a state-of-the-art
//! single-source GPU BFS (Enterprise-style status-array traversal with
//! Beamer direction switching and bottom-up early termination) run once per
//! source, back to back. It is also the stand-in for B40C in the Figure 22
//! comparison: the paper notes B40C "has similar performance as the
//! sequential or naive implementation".

use crate::direction::{Direction, DirectionPolicy};
use crate::engine::{traversed_edges_for, Engine, GpuGraph, GroupRun, LevelStats};
use crate::status::StatusArray;
use ibfs_graph::{Depth, VertexId};
use ibfs_gpu_sim::hyperq::KernelDemand;
use ibfs_gpu_sim::{CostModel, Counters, Profiler};

/// Maximum BFS depth the engines support (u8 with a sentinel).
pub const MAX_LEVELS: u32 = 254;

/// Accumulates per-phase roofline costs and total compute/memory demand.
///
/// `solo_cycles` prices each phase as `max(compute, memory) + launch`,
/// which is the kernel-per-level execution every engine uses when it owns
/// the whole device. `demand` keeps the unrooflined totals so Hyper-Q can
/// model instances *sharing* the device (the naive engine).
pub(crate) struct PhaseAccum {
    model: CostModel,
    last: Counters,
    /// Cycles if this instance runs alone.
    pub solo_cycles: f64,
    /// Aggregate compute/memory demand (no launch overhead, no roofline).
    pub demand: KernelDemand,
    /// Kernel phases executed.
    pub phases: u64,
    /// Kernel launches performed (one per level).
    pub launches: u64,
}

impl PhaseAccum {
    pub(crate) fn start(model: CostModel, prof: &Profiler) -> Self {
        PhaseAccum {
            model,
            last: prof.snapshot(),
            solo_cycles: 0.0,
            demand: KernelDemand::default(),
            phases: 0,
            launches: 0,
        }
    }

    pub(crate) fn phase(&mut self, prof: &Profiler) {
        let now = prof.snapshot();
        let d = now.delta(&self.last);
        self.last = now;
        let compute = self.model.compute_cycles(&d);
        let memory = self.model.memory_cycles(&d);
        self.demand.compute_cycles += compute;
        self.demand.memory_cycles += memory;
        self.solo_cycles += compute.max(memory);
        self.phases += 1;
    }

    /// Charges one kernel launch (one per BFS level).
    pub(crate) fn launch(&mut self) {
        self.solo_cycles += self.model.launch_overhead_cycles;
        self.launches += 1;
    }
}

/// Output of one single-source traversal.
pub(crate) struct SingleRun {
    pub depths: Vec<Depth>,
    pub levels: Vec<LevelStats>,
    pub demand: KernelDemand,
    pub solo_cycles: f64,
    pub launches: u64,
}

/// Runs one direction-optimizing BFS from `source`, charging the profiler
/// for every access per the conventions in [`crate::engine`].
pub(crate) fn run_single(
    g: &GpuGraph<'_>,
    source: VertexId,
    policy: DirectionPolicy,
    prof: &mut Profiler,
) -> SingleRun {
    run_single_capped(g, source, policy, 0, prof)
}

/// [`run_single`] with a level cap (0 = unlimited).
pub(crate) fn run_single_capped(
    g: &GpuGraph<'_>,
    source: VertexId,
    policy: DirectionPolicy,
    max_levels: u32,
    prof: &mut Profiler,
) -> SingleRun {
    let csr = g.csr;
    let rev = g.reverse;
    let n = csr.num_vertices();
    let total_edges = csr.num_edges() as u64;

    let mut sa = StatusArray::new(n, prof);
    let fq_base = prof.alloc(n as u64 * 4);
    let model = CostModel::new(prof.config);
    let mut acc = PhaseAccum::start(model, prof);

    // Level 0: the source.
    acc.launch();
    sa.set(source, 0);
    prof.lane_store(sa.addr(source), 1);
    acc.phase(prof);

    let mut frontier: Vec<VertexId> = vec![source];
    let mut frontier_edges = csr.out_degree(source) as u64;
    let mut visited_edges = frontier_edges;
    let mut dir = Direction::TopDown;
    let mut levels = Vec::new();
    let mut queue: Vec<VertexId> = Vec::new();
    let mut newly_marked: Vec<VertexId> = Vec::new();
    let level_cap = if max_levels == 0 { MAX_LEVELS } else { max_levels.min(MAX_LEVELS) };

    for level in 1..=level_cap {
        if frontier.is_empty() {
            break;
        }
        let depth = level as Depth;
        acc.launch();
        dir = policy.next(
            dir,
            frontier_edges,
            frontier.len() as u64,
            total_edges - visited_edges,
            n as u64,
        );

        // --- Frontier-queue generation: scan the status array. ---
        queue.clear();
        prof.load_contiguous(sa.base, 0, n as u64, 1);
        prof.lanes(n as u64);
        match dir {
            Direction::TopDown => {
                // Enqueue the vertices discovered at the previous level.
                queue.extend_from_slice(&frontier);
            }
            Direction::BottomUp => {
                // Bottom-up treats unvisited vertices as frontiers.
                queue.extend((0..n as VertexId).filter(|&v| !sa.visited(v)));
            }
        }
        prof.store_contiguous(fq_base, 0, queue.len() as u64, 4);
        acc.phase(prof);

        // --- Expansion + inspection. ---
        prof.load_contiguous(fq_base, 0, queue.len() as u64, 4);
        newly_marked.clear();
        let mut edges_inspected = 0u64;
        let mut early_terms = 0u64;
        match dir {
            Direction::TopDown => {
                for &f in &queue {
                    let neighbors = csr.neighbors(f);
                    prof.load_contiguous(
                        g.adj_base,
                        csr.adj_start(f),
                        neighbors.len() as u64,
                        4,
                    );
                    prof.lanes(neighbors.len() as u64);
                    edges_inspected += neighbors.len() as u64;
                    for chunk in neighbors.chunks(32) {
                        prof.warp_gather(chunk.iter().map(|&w| sa.addr(w)), 1);
                        let mut marked_addrs: Vec<u64> = Vec::new();
                        for &w in chunk {
                            if !sa.visited(w) {
                                sa.set(w, depth);
                                newly_marked.push(w);
                                marked_addrs.push(sa.addr(w));
                            }
                        }
                        if !marked_addrs.is_empty() {
                            prof.warp_scatter(marked_addrs.iter().copied(), 1);
                        }
                    }
                }
            }
            Direction::BottomUp => {
                for chunk in queue.chunks(32) {
                    let mut marked_addrs: Vec<u64> = Vec::new();
                    for &f in chunk {
                        let parents = rev.neighbors(f);
                        let mut inspected = 0u64;
                        let mut found = false;
                        for &p in parents {
                            inspected += 1;
                            if sa.visited(p) && sa.depth(p) < depth {
                                found = true;
                                break;
                            }
                        }
                        prof.load_contiguous(g.radj_base, rev.adj_start(f), inspected, 4);
                        // Each status check loads the parent's status byte;
                        // scans longer than a warp issue multiple requests.
                        for pch in parents[..inspected as usize].chunks(32) {
                            prof.warp_gather(pch.iter().map(|&p| sa.addr(p)), 1);
                        }
                        prof.lanes(inspected);
                        edges_inspected += inspected;
                        if found {
                            if inspected < parents.len() as u64 {
                                early_terms += 1;
                            }
                            sa.set(f, depth);
                            newly_marked.push(f);
                            marked_addrs.push(sa.addr(f));
                        }
                    }
                    if !marked_addrs.is_empty() {
                        prof.warp_scatter(marked_addrs.iter().copied(), 1);
                    }
                }
            }
        }
        acc.phase(prof);

        levels.push(LevelStats {
            level,
            direction: dir,
            unique_frontiers: queue.len() as u64,
            instance_frontiers: queue.len() as u64,
            edges_inspected,
            early_terminations: early_terms,
        });

        if newly_marked.is_empty() {
            break;
        }
        frontier_edges = newly_marked
            .iter()
            .map(|&v| csr.out_degree(v) as u64)
            .sum();
        visited_edges += frontier_edges;
        std::mem::swap(&mut frontier, &mut newly_marked);
        newly_marked.clear();
    }

    SingleRun {
        depths: sa.into_depths(),
        levels,
        demand: acc.demand,
        solo_cycles: acc.solo_cycles,
        launches: acc.launches,
    }
}

/// Merges per-instance level stats into group-level stats by level index.
/// With private queues nothing is shared, so unique and per-instance
/// frontier counts both sum.
pub(crate) fn merge_level_stats(per_instance: &[Vec<LevelStats>]) -> Vec<LevelStats> {
    let max_levels = per_instance.iter().map(|l| l.len()).max().unwrap_or(0);
    (0..max_levels)
        .map(|k| {
            let mut out = LevelStats {
                level: k as u32 + 1,
                direction: Direction::TopDown,
                unique_frontiers: 0,
                instance_frontiers: 0,
                edges_inspected: 0,
                early_terminations: 0,
            };
            for levels in per_instance {
                if let Some(l) = levels.get(k) {
                    out.direction = l.direction;
                    out.unique_frontiers += l.unique_frontiers;
                    out.instance_frontiers += l.instance_frontiers;
                    out.edges_inspected += l.edges_inspected;
                    out.early_terminations += l.early_terminations;
                }
            }
            out
        })
        .collect()
}

/// The sequential engine: instances run back to back, each owning the whole
/// device.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine {
    /// Direction-switch policy.
    pub policy: DirectionPolicy,
    /// Cap on traversal levels; 0 means unlimited.
    pub max_levels: u32,
}

impl Engine for SequentialEngine {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run_group(&self, g: &GpuGraph<'_>, sources: &[VertexId], prof: &mut Profiler) -> GroupRun {
        let before = prof.snapshot();
        let model = CostModel::new(prof.config);
        let n = g.num_vertices();
        let mut depths = Vec::with_capacity(sources.len() * n);
        let mut all_levels = Vec::with_capacity(sources.len());
        let mut cycles = 0.0;
        for &s in sources {
            let run = run_single_capped(g, s, self.policy, self.max_levels, prof);
            depths.extend_from_slice(&run.depths);
            all_levels.push(run.levels);
            cycles += run.solo_cycles;
        }
        let counters = prof.snapshot().delta(&before);
        let traversed = traversed_edges_for(g.csr, &depths, sources.len());
        GroupRun {
            engine: self.name(),
            num_instances: sources.len(),
            num_vertices: n,
            depths,
            levels: merge_level_stats(&all_levels),
            counters,
            sim_seconds: model.seconds(cycles),
            traversed_edges: traversed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_graph::suite::{figure1, FIGURE1_SOURCES};
    use ibfs_graph::validate::{check_depths, reference_bfs};
    use ibfs_graph::DEPTH_UNVISITED;
    use ibfs_gpu_sim::DeviceConfig;

    #[test]
    fn matches_reference_on_figure1() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &FIGURE1_SOURCES, &mut prof);
        for (j, &s) in FIGURE1_SOURCES.iter().enumerate() {
            assert_eq!(run.instance_depths(j), &reference_bfs(&g, s)[..], "source {s}");
            check_depths(&g, &r, s, run.instance_depths(j)).unwrap();
        }
        assert!(run.sim_seconds > 0.0);
        assert!(run.teps() > 0.0);
        assert_eq!(run.traversed_edges, 4 * g.num_edges() as u64);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = ibfs_graph::CsrBuilder::new(6);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(4, 5);
        let g = b.build();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert_eq!(run.depth_of(0, 2), 2);
        assert_eq!(run.depth_of(0, 4), DEPTH_UNVISITED);
        assert_eq!(run.depth_of(0, 3), DEPTH_UNVISITED);
    }

    #[test]
    fn single_vertex_graph() {
        let g = ibfs_graph::CsrBuilder::new(1).build();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert_eq!(run.depth_of(0, 0), 0);
        assert_eq!(run.traversed_edges, 0);
    }

    #[test]
    fn counters_accumulate_traffic() {
        let g = figure1();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert!(run.counters.global_load_transactions > 0);
        assert!(run.counters.global_store_transactions > 0);
        assert!(run.counters.lane_instructions > 0);
    }

    #[test]
    fn uses_bottom_up_on_dense_graphs() {
        // A clique forces a frontier explosion and a bottom-up level.
        let n = 64;
        let mut b = ibfs_graph::CsrBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_undirected_edge(u, v);
            }
        }
        let g = b.build();
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0], &mut prof);
        assert!(run
            .levels
            .iter()
            .any(|l| l.direction == Direction::BottomUp));
        assert_eq!(run.instance_depths(0), &reference_bfs(&g, 0)[..]);
    }

    #[test]
    fn early_termination_happens_bottom_up() {
        use ibfs_graph::generators::{rmat, RmatParams};
        let g = rmat(9, 16, RmatParams::graph500(), 8);
        let r = g.reverse();
        let mut prof = Profiler::new(DeviceConfig::k40());
        let gg = GpuGraph::new(&g, &r, &mut prof);
        let run = SequentialEngine::default().run_group(&gg, &[0, 1, 2, 3], &mut prof);
        assert!(run
            .levels
            .iter()
            .any(|l| l.direction == Direction::BottomUp));
        let et: u64 = run.levels.iter().map(|l| l.early_terminations).sum();
        assert!(et > 0, "power-law bottom-up should terminate early");
    }
}
