//! The traversal service: a resident uploaded graph serving many iBFS
//! requests, with pluggable device scheduling.
//!
//! [`crate::runner::run_ibfs`] uploads the graph, runs one batch of sources,
//! and throws the device state away. A BFS *server* (the paper's motivating
//! workloads: all-pairs analytics, centrality, reachability indexing) keeps
//! the graph resident and answers request after request. [`IbfsService`]
//! models that:
//!
//! * **Upload once** — the CSR arrays are allocated on construction; every
//!   request reuses them. Scratch state (status arrays, frontier queues) is
//!   released back to the upload watermark between requests, so the
//!   simulated footprint does not grow with request count.
//! * **Clamp once** — the §3 device-memory bound on group size is computed
//!   at construction and applied to the configured grouping strategy.
//! * **Schedule pluggably** — how a request's groups share the device is a
//!   [`DeviceScheduler`]: [`BackToBack`] (the paper's evaluation setup, and
//!   the default) or [`HyperQOverlap`] (concurrent group kernels through
//!   Hyper-Q). The cluster harness reuses the same schedulers per device.
//!
//! Releasing scratch between requests cannot change any counter: every
//! allocation is 128-byte aligned and the coalescer's 32-byte sectors and
//! 128-byte segments divide that alignment, so transaction counts are
//! invariant under translation of the scratch base address.

use crate::engine::{Engine, GpuGraph, GroupRun};
use crate::groupby::GroupingStrategy;
use crate::runner::{device_group_bound, IbfsRun, RunConfig};
use crate::trace::{GroupStamp, NullSink, TraceSink};
use ibfs_graph::{Csr, VertexId};
use ibfs_gpu_sim::hyperq::{concurrent_cycles, KernelDemand};
use ibfs_gpu_sim::{CostModel, Profiler};

/// Why a request was rejected at admission, before any device work.
///
/// The service validates every request up front so that malformed input
/// (an empty source list, a source id past the vertex range) is a typed
/// error at the boundary rather than a silent empty run or an index panic
/// deep inside an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestError {
    /// The request named no sources at all.
    EmptySources,
    /// A source id is not a vertex of the resident graph.
    SourceOutOfRange {
        /// The offending source id.
        source: VertexId,
        /// Vertex count of the resident graph.
        num_vertices: usize,
    },
    /// The group holds more instances than the engine's status words can.
    GroupTooLarge {
        /// Instances requested.
        size: usize,
        /// Instances the engine's word width can hold.
        capacity: usize,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::EmptySources => write!(f, "request names no sources"),
            RequestError::SourceOutOfRange { source, num_vertices } => {
                write!(f, "source {source} out of range (graph has {num_vertices} vertices)")
            }
            RequestError::GroupTooLarge { size, capacity } => {
                write!(f, "group of {size} instances exceeds engine capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// How one request's groups share the simulated device.
pub trait DeviceScheduler {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Combined simulated seconds for `groups` executed on one device.
    fn schedule(&self, groups: &[GroupRun], model: &CostModel) -> f64;
}

/// Groups run back to back, each owning the whole device — the paper's
/// evaluation setup and the default.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackToBack;

impl DeviceScheduler for BackToBack {
    fn name(&self) -> &'static str {
        "back-to-back"
    }

    fn schedule(&self, groups: &[GroupRun], _model: &CostModel) -> f64 {
        // In-order fold: identical f64 rounding to the historical
        // `sim_seconds += run.sim_seconds` accumulation.
        groups.iter().fold(0.0, |acc, g| acc + g.sim_seconds)
    }
}

/// Group kernels overlap through Hyper-Q: compute hides behind memory
/// across groups, launches still serialize on the host. BFS being
/// memory-bound, the win over [`BackToBack`] is modest by design.
#[derive(Clone, Copy, Debug, Default)]
pub struct HyperQOverlap;

impl DeviceScheduler for HyperQOverlap {
    fn name(&self) -> &'static str {
        "hyperq-overlap"
    }

    fn schedule(&self, groups: &[GroupRun], model: &CostModel) -> f64 {
        let demands: Vec<KernelDemand> = groups
            .iter()
            .map(|g| KernelDemand {
                compute_cycles: model.compute_cycles(&g.counters),
                memory_cycles: model.memory_cycles(&g.counters),
            })
            .collect();
        let launches: u64 = groups.iter().map(|g| g.kernel_launches).sum();
        let cycles = concurrent_cycles(&demands, model.config.hyperq_streams)
            + launches as f64 * model.launch_overhead_cycles;
        model.seconds(cycles)
    }
}

/// A resident traversal service: uploaded graph + profiler surviving across
/// requests.
pub struct IbfsService<'g> {
    graph: &'g Csr,
    reverse: &'g Csr,
    config: RunConfig,
    /// The configured grouping with its group size clamped to the §3 bound.
    grouping: GroupingStrategy,
    engine: Box<dyn Engine>,
    scheduler: Box<dyn DeviceScheduler>,
    prof: Profiler,
    adj_base: u64,
    radj_base: u64,
    offsets_base: u64,
    /// Allocation watermark right after upload; scratch above it is
    /// released between requests.
    scratch_mark: u64,
}

impl<'g> IbfsService<'g> {
    /// Uploads `graph`/`reverse` to a fresh simulated device and prepares to
    /// serve requests under `config`. `reverse` must be `graph.reverse()`
    /// (pass the same graph when symmetric).
    ///
    /// # Panics
    /// Panics if the graph does not fit device memory alongside a single
    /// instance's status array (the §3 bound admits no group at all).
    pub fn new(graph: &'g Csr, reverse: &'g Csr, config: RunConfig) -> Self {
        let bound = device_group_bound(graph, &config.device, 1 << 20);
        assert!(
            bound >= 1,
            "graph does not fit device memory alongside one status array"
        );
        let mut grouping = config.grouping.clone();
        if grouping.group_size() > bound as usize {
            grouping = match grouping {
                GroupingStrategy::Random { seed, .. } => {
                    GroupingStrategy::Random { seed, group_size: bound as usize }
                }
                GroupingStrategy::OutDegreeRules(cfg) => {
                    GroupingStrategy::OutDegreeRules(cfg.with_group_size(bound as usize))
                }
            };
        }
        let engine = config.engine.build();
        let mut prof = Profiler::new(config.device);
        let g = GpuGraph::new(graph, reverse, &mut prof);
        let (adj_base, radj_base, offsets_base) = (g.adj_base, g.radj_base, g.offsets_base);
        let scratch_mark = prof.mem_mark();
        IbfsService {
            graph,
            reverse,
            config,
            grouping,
            engine,
            scheduler: Box::new(BackToBack),
            prof,
            adj_base,
            radj_base,
            offsets_base,
            scratch_mark,
        }
    }

    /// Replaces the device scheduler (builder style).
    pub fn with_scheduler(mut self, scheduler: Box<dyn DeviceScheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The run configuration the service was built with.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The grouping in effect (after the §3 clamp).
    pub fn grouping(&self) -> &GroupingStrategy {
        &self.grouping
    }

    /// The active scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Bytes currently allocated on the simulated device.
    pub fn allocated_bytes(&self) -> u64 {
        self.prof.allocated_bytes()
    }

    /// Validates a request against the resident graph without running it —
    /// the admission check shared by [`IbfsService::try_run`] and the serve
    /// layer's front door.
    pub fn admit(&self, sources: &[VertexId]) -> Result<(), RequestError> {
        admit_sources(sources, self.graph.num_vertices())
    }

    /// Serves one request: iBFS from every source in `sources`.
    ///
    /// # Panics
    /// Panics on an invalid request (empty source list or out-of-range
    /// source); use [`IbfsService::try_run`] for a typed error instead.
    pub fn run(&mut self, sources: &[VertexId]) -> IbfsRun {
        self.run_traced(sources, &mut NullSink)
    }

    /// [`IbfsService::run`] with per-level [`crate::trace::TraversalEvent`]s
    /// delivered to `sink`, stamped with each group's index.
    ///
    /// # Panics
    /// Panics on an invalid request; see [`IbfsService::try_run_traced`].
    pub fn run_traced(&mut self, sources: &[VertexId], sink: &mut dyn TraceSink) -> IbfsRun {
        self.try_run_traced(sources, sink)
            .unwrap_or_else(|e| panic!("invalid request: {e}"))
    }

    /// [`IbfsService::run`] with admission errors surfaced as values
    /// instead of panics.
    pub fn try_run(&mut self, sources: &[VertexId]) -> Result<IbfsRun, RequestError> {
        self.try_run_traced(sources, &mut NullSink)
    }

    /// [`IbfsService::run_traced`] with admission errors surfaced as values
    /// instead of panics. A zero-source request never reaches the driver:
    /// it is rejected here with [`RequestError::EmptySources`].
    pub fn try_run_traced(
        &mut self,
        sources: &[VertexId],
        sink: &mut dyn TraceSink,
    ) -> Result<IbfsRun, RequestError> {
        self.admit(sources)?;
        // Drop the previous request's scratch; the upload stays resident.
        self.prof.release_to(self.scratch_mark);
        let grouping = self.grouping.group(self.graph, sources);
        let g = GpuGraph {
            csr: self.graph,
            reverse: self.reverse,
            adj_base: self.adj_base,
            radj_base: self.radj_base,
            offsets_base: self.offsets_base,
        };
        let before = self.prof.snapshot();
        let mut groups = Vec::with_capacity(grouping.groups.len());
        let mut traversed = 0u64;
        for (gi, group) in grouping.groups.iter().enumerate() {
            let mut stamped = GroupStamp { group: gi as u64, inner: sink };
            let run = self
                .engine
                .run_group_traced(&g, group, &mut self.prof, &mut stamped);
            traversed += run.traversed_edges;
            groups.push(run);
        }
        let model = CostModel::new(self.prof.config);
        let sim_seconds = self.scheduler.schedule(&groups, &model);
        let counters = self.prof.snapshot().delta(&before);
        Ok(IbfsRun {
            groups,
            sim_seconds,
            traversed_edges: traversed,
            counters,
        })
    }

    /// Serves a batch of requests in order, reusing the uploaded graph.
    ///
    /// # Panics
    /// Panics if any request is invalid (see [`IbfsService::try_run`]).
    pub fn run_batch(&mut self, requests: &[Vec<VertexId>]) -> Vec<IbfsRun> {
        requests.iter().map(|sources| self.run(sources)).collect()
    }
}

/// The admission predicate behind [`IbfsService::admit`], usable without a
/// constructed service (the serve front-end validates before enqueueing).
pub fn admit_sources(sources: &[VertexId], num_vertices: usize) -> Result<(), RequestError> {
    if sources.is_empty() {
        return Err(RequestError::EmptySources);
    }
    for &s in sources {
        if s as usize >= num_vertices {
            return Err(RequestError::SourceOutOfRange { source: s, num_vertices });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::trace::RecorderSink;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::validate::reference_bfs;

    fn small_graph() -> Csr {
        rmat(8, 8, RmatParams::graph500(), 31)
    }

    #[test]
    fn repeated_requests_are_identical_and_do_not_grow_memory() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..48).collect();
        let mut svc = IbfsService::new(&g, &r, RunConfig::default());

        let first = svc.run(&sources);
        let after_first = svc.allocated_bytes();
        let second = svc.run(&sources);
        let after_second = svc.allocated_bytes();

        // Upload amortized: serving the same request again allocates
        // nothing beyond the first request's scratch watermark.
        assert_eq!(after_first, after_second);
        // And the results are bit-identical.
        assert_eq!(first.groups.len(), second.groups.len());
        for (a, b) in first.groups.iter().zip(&second.groups) {
            assert_eq!(a.depths, b.depths);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        }
        assert_eq!(first.counters, second.counters);
        assert_eq!(first.sim_seconds.to_bits(), second.sim_seconds.to_bits());
    }

    #[test]
    fn matches_one_shot_runner() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..32).collect();
        let config = RunConfig::default();
        let one_shot = crate::runner::run_ibfs(&g, &r, &sources, &config);
        let mut svc = IbfsService::new(&g, &r, config);
        let served = svc.run(&sources);
        assert_eq!(one_shot.groups.len(), served.groups.len());
        for (a, b) in one_shot.groups.iter().zip(&served.groups) {
            assert_eq!(a.depths, b.depths);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        }
        assert_eq!(one_shot.sim_seconds.to_bits(), served.sim_seconds.to_bits());
    }

    #[test]
    fn batch_serves_distinct_requests_correctly() {
        let g = small_graph();
        let r = g.reverse();
        let mut svc = IbfsService::new(&g, &r, RunConfig::default());
        let requests = vec![vec![0, 1, 2], vec![7, 9], vec![40]];
        let runs = svc.run_batch(&requests);
        assert_eq!(runs.len(), 3);
        for (req, run) in requests.iter().zip(&runs) {
            assert_eq!(run.num_instances(), req.len());
            // Depths stay correct across requests (state fully reset).
            let grouping = svc.grouping().group(&g, req);
            for (gi, group) in grouping.groups.iter().enumerate() {
                for (j, &s) in group.iter().enumerate() {
                    assert_eq!(run.groups[gi].instance_depths(j), &reference_bfs(&g, s)[..]);
                }
            }
        }
    }

    #[test]
    fn hyperq_scheduler_overlaps_but_is_no_free_lunch() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..64).collect();
        let config = RunConfig {
            grouping: GroupingStrategy::Random { seed: 3, group_size: 16 },
            ..Default::default()
        };

        let mut b2b = IbfsService::new(&g, &r, config.clone());
        let serial = b2b.run(&sources);
        let mut hq = IbfsService::new(&g, &r, config).with_scheduler(Box::new(HyperQOverlap));
        assert_eq!(hq.scheduler_name(), "hyperq-overlap");
        let overlapped = hq.run(&sources);

        // Same traversals, same traffic — scheduling changes only time.
        assert_eq!(serial.counters, overlapped.counters);
        assert!(overlapped.sim_seconds > 0.0);
        assert!(
            overlapped.sim_seconds <= serial.sim_seconds,
            "overlap must not be slower: {} vs {}",
            overlapped.sim_seconds,
            serial.sim_seconds
        );
        // Memory-bound workload: the overlap win is bounded by the memory
        // floor, not proportional to group count.
        let memory_floor: f64 = {
            let model = CostModel::new(ibfs_gpu_sim::DeviceConfig::k40());
            model.seconds(model.memory_cycles(&serial.counters))
        };
        assert!(overlapped.sim_seconds >= memory_floor);
    }

    #[test]
    fn traced_requests_stamp_group_indices() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..48).collect();
        let config = RunConfig {
            grouping: GroupingStrategy::Random { seed: 9, group_size: 16 },
            ..Default::default()
        };
        let mut svc = IbfsService::new(&g, &r, config);
        let mut sink = RecorderSink::default();
        let run = svc.run_traced(&sources, &mut sink);

        assert!(!sink.events.is_empty());
        let n_groups = run.groups.len() as u64;
        assert!(n_groups > 1);
        assert!(sink.events.iter().all(|e| e.group < n_groups));
        // Every group produced events, one per level it ran.
        for (gi, gr) in run.groups.iter().enumerate() {
            let events = sink.events.iter().filter(|e| e.group == gi as u64).count();
            assert_eq!(events, gr.levels.len());
        }
        // Tracing is observational: counters match an untraced service run.
        let mut svc2 = IbfsService::new(
            &g,
            &r,
            RunConfig {
                grouping: GroupingStrategy::Random { seed: 9, group_size: 16 },
                ..Default::default()
            },
        );
        let untraced = svc2.run(&sources);
        assert_eq!(untraced.counters, run.counters);
        assert_eq!(untraced.sim_seconds.to_bits(), run.sim_seconds.to_bits());
    }

    #[test]
    fn zero_source_request_is_rejected_at_admission() {
        // Regression: an empty request used to fall through grouping and
        // return a silent empty run instead of being rejected up front.
        let g = small_graph();
        let r = g.reverse();
        let mut svc = IbfsService::new(&g, &r, RunConfig::default());
        assert_eq!(svc.try_run(&[]).unwrap_err(), RequestError::EmptySources);
        assert_eq!(svc.admit(&[]), Err(RequestError::EmptySources));
        // The service still works after a rejected request.
        let run = svc.try_run(&[0]).unwrap();
        assert_eq!(run.num_instances(), 1);
    }

    #[test]
    fn out_of_range_source_is_rejected_at_admission() {
        let g = small_graph();
        let r = g.reverse();
        let n = g.num_vertices();
        let mut svc = IbfsService::new(&g, &r, RunConfig::default());
        let bad = n as VertexId;
        assert_eq!(
            svc.try_run(&[0, bad]).unwrap_err(),
            RequestError::SourceOutOfRange { source: bad, num_vertices: n }
        );
        assert!(svc.admit(&[0, 1]).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid request")]
    fn run_panics_on_zero_source_request() {
        let g = small_graph();
        let r = g.reverse();
        IbfsService::new(&g, &r, RunConfig::default()).run(&[]);
    }

    #[test]
    fn try_run_matches_run_on_valid_requests() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..16).collect();
        let mut a = IbfsService::new(&g, &r, RunConfig::default());
        let mut b = IbfsService::new(&g, &r, RunConfig::default());
        let x = a.run(&sources);
        let y = b.try_run(&sources).unwrap();
        assert_eq!(x.counters, y.counters);
        assert_eq!(x.sim_seconds.to_bits(), y.sim_seconds.to_bits());
    }

    #[test]
    fn clamps_group_size_once_at_construction() {
        let g = small_graph();
        let r = g.reverse();
        let mut device = ibfs_gpu_sim::DeviceConfig::k40();
        device.global_mem_bytes =
            g.storage_bytes() * 2 + g.num_vertices() as u64 * 20 + g.num_vertices() as u64 * 10;
        let bound = device_group_bound(&g, &device, 128);
        let svc = IbfsService::new(
            &g,
            &r,
            RunConfig {
                engine: EngineKind::Bitwise,
                grouping: GroupingStrategy::Random { seed: 1, group_size: 128 },
                device,
            },
        );
        assert_eq!(svc.grouping().group_size(), bound as usize);
    }
}
