//! The traversal service: a resident uploaded graph serving many iBFS
//! requests, with pluggable device scheduling.
//!
//! [`crate::runner::run_ibfs`] uploads the graph, runs one batch of sources,
//! and throws the device state away. A BFS *server* (the paper's motivating
//! workloads: all-pairs analytics, centrality, reachability indexing) keeps
//! the graph resident and answers request after request. [`IbfsService`]
//! models that:
//!
//! * **Upload once** — the CSR arrays are allocated on construction; every
//!   request reuses them. Scratch state (status arrays, frontier queues) is
//!   released back to the upload watermark between requests, so the
//!   simulated footprint does not grow with request count.
//! * **Clamp once** — the §3 device-memory bound on group size is computed
//!   at construction and applied to the configured grouping strategy.
//! * **Schedule pluggably** — how a request's groups share the device is a
//!   [`DeviceScheduler`]: [`BackToBack`] (the paper's evaluation setup, and
//!   the default) or [`HyperQOverlap`] (concurrent group kernels through
//!   Hyper-Q). The cluster harness reuses the same schedulers per device.
//!
//! Releasing scratch between requests cannot change any counter: every
//! allocation is 128-byte aligned and the coalescer's 32-byte sectors and
//! 128-byte segments divide that alignment, so transaction counts are
//! invariant under translation of the scratch base address.

use crate::engine::{Engine, GpuGraph, GroupRun};
use crate::groupby::GroupingStrategy;
use crate::runner::{device_group_bound, IbfsRun, RunConfig};
use crate::trace::{GroupStamp, NullSink, TraceSink};
use ibfs_graph::{Csr, VertexId};
use ibfs_gpu_sim::hyperq::{concurrent_cycles, KernelDemand};
use ibfs_gpu_sim::{CostModel, Profiler};

/// How one request's groups share the simulated device.
pub trait DeviceScheduler {
    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Combined simulated seconds for `groups` executed on one device.
    fn schedule(&self, groups: &[GroupRun], model: &CostModel) -> f64;
}

/// Groups run back to back, each owning the whole device — the paper's
/// evaluation setup and the default.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackToBack;

impl DeviceScheduler for BackToBack {
    fn name(&self) -> &'static str {
        "back-to-back"
    }

    fn schedule(&self, groups: &[GroupRun], _model: &CostModel) -> f64 {
        // In-order fold: identical f64 rounding to the historical
        // `sim_seconds += run.sim_seconds` accumulation.
        groups.iter().fold(0.0, |acc, g| acc + g.sim_seconds)
    }
}

/// Group kernels overlap through Hyper-Q: compute hides behind memory
/// across groups, launches still serialize on the host. BFS being
/// memory-bound, the win over [`BackToBack`] is modest by design.
#[derive(Clone, Copy, Debug, Default)]
pub struct HyperQOverlap;

impl DeviceScheduler for HyperQOverlap {
    fn name(&self) -> &'static str {
        "hyperq-overlap"
    }

    fn schedule(&self, groups: &[GroupRun], model: &CostModel) -> f64 {
        let demands: Vec<KernelDemand> = groups
            .iter()
            .map(|g| KernelDemand {
                compute_cycles: model.compute_cycles(&g.counters),
                memory_cycles: model.memory_cycles(&g.counters),
            })
            .collect();
        let launches: u64 = groups.iter().map(|g| g.kernel_launches).sum();
        let cycles = concurrent_cycles(&demands, model.config.hyperq_streams)
            + launches as f64 * model.launch_overhead_cycles;
        model.seconds(cycles)
    }
}

/// A resident traversal service: uploaded graph + profiler surviving across
/// requests.
pub struct IbfsService<'g> {
    graph: &'g Csr,
    reverse: &'g Csr,
    config: RunConfig,
    /// The configured grouping with its group size clamped to the §3 bound.
    grouping: GroupingStrategy,
    engine: Box<dyn Engine>,
    scheduler: Box<dyn DeviceScheduler>,
    prof: Profiler,
    adj_base: u64,
    radj_base: u64,
    offsets_base: u64,
    /// Allocation watermark right after upload; scratch above it is
    /// released between requests.
    scratch_mark: u64,
}

impl<'g> IbfsService<'g> {
    /// Uploads `graph`/`reverse` to a fresh simulated device and prepares to
    /// serve requests under `config`. `reverse` must be `graph.reverse()`
    /// (pass the same graph when symmetric).
    ///
    /// # Panics
    /// Panics if the graph does not fit device memory alongside a single
    /// instance's status array (the §3 bound admits no group at all).
    pub fn new(graph: &'g Csr, reverse: &'g Csr, config: RunConfig) -> Self {
        let bound = device_group_bound(graph, &config.device, 1 << 20);
        assert!(
            bound >= 1,
            "graph does not fit device memory alongside one status array"
        );
        let mut grouping = config.grouping.clone();
        if grouping.group_size() > bound as usize {
            grouping = match grouping {
                GroupingStrategy::Random { seed, .. } => {
                    GroupingStrategy::Random { seed, group_size: bound as usize }
                }
                GroupingStrategy::OutDegreeRules(cfg) => {
                    GroupingStrategy::OutDegreeRules(cfg.with_group_size(bound as usize))
                }
            };
        }
        let engine = config.engine.build();
        let mut prof = Profiler::new(config.device);
        let g = GpuGraph::new(graph, reverse, &mut prof);
        let (adj_base, radj_base, offsets_base) = (g.adj_base, g.radj_base, g.offsets_base);
        let scratch_mark = prof.mem_mark();
        IbfsService {
            graph,
            reverse,
            config,
            grouping,
            engine,
            scheduler: Box::new(BackToBack),
            prof,
            adj_base,
            radj_base,
            offsets_base,
            scratch_mark,
        }
    }

    /// Replaces the device scheduler (builder style).
    pub fn with_scheduler(mut self, scheduler: Box<dyn DeviceScheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The run configuration the service was built with.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The grouping in effect (after the §3 clamp).
    pub fn grouping(&self) -> &GroupingStrategy {
        &self.grouping
    }

    /// The active scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Bytes currently allocated on the simulated device.
    pub fn allocated_bytes(&self) -> u64 {
        self.prof.allocated_bytes()
    }

    /// Serves one request: iBFS from every source in `sources`.
    pub fn run(&mut self, sources: &[VertexId]) -> IbfsRun {
        self.run_traced(sources, &mut NullSink)
    }

    /// [`IbfsService::run`] with per-level [`crate::trace::TraversalEvent`]s
    /// delivered to `sink`, stamped with each group's index.
    pub fn run_traced(&mut self, sources: &[VertexId], sink: &mut dyn TraceSink) -> IbfsRun {
        // Drop the previous request's scratch; the upload stays resident.
        self.prof.release_to(self.scratch_mark);
        let grouping = self.grouping.group(self.graph, sources);
        let g = GpuGraph {
            csr: self.graph,
            reverse: self.reverse,
            adj_base: self.adj_base,
            radj_base: self.radj_base,
            offsets_base: self.offsets_base,
        };
        let before = self.prof.snapshot();
        let mut groups = Vec::with_capacity(grouping.groups.len());
        let mut traversed = 0u64;
        for (gi, group) in grouping.groups.iter().enumerate() {
            let mut stamped = GroupStamp { group: gi as u64, inner: sink };
            let run = self
                .engine
                .run_group_traced(&g, group, &mut self.prof, &mut stamped);
            traversed += run.traversed_edges;
            groups.push(run);
        }
        let model = CostModel::new(self.prof.config);
        let sim_seconds = self.scheduler.schedule(&groups, &model);
        let counters = self.prof.snapshot().delta(&before);
        IbfsRun {
            groups,
            sim_seconds,
            traversed_edges: traversed,
            counters,
        }
    }

    /// Serves a batch of requests in order, reusing the uploaded graph.
    pub fn run_batch(&mut self, requests: &[Vec<VertexId>]) -> Vec<IbfsRun> {
        requests.iter().map(|sources| self.run(sources)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::trace::RecorderSink;
    use ibfs_graph::generators::{rmat, RmatParams};
    use ibfs_graph::validate::reference_bfs;

    fn small_graph() -> Csr {
        rmat(8, 8, RmatParams::graph500(), 31)
    }

    #[test]
    fn repeated_requests_are_identical_and_do_not_grow_memory() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..48).collect();
        let mut svc = IbfsService::new(&g, &r, RunConfig::default());

        let first = svc.run(&sources);
        let after_first = svc.allocated_bytes();
        let second = svc.run(&sources);
        let after_second = svc.allocated_bytes();

        // Upload amortized: serving the same request again allocates
        // nothing beyond the first request's scratch watermark.
        assert_eq!(after_first, after_second);
        // And the results are bit-identical.
        assert_eq!(first.groups.len(), second.groups.len());
        for (a, b) in first.groups.iter().zip(&second.groups) {
            assert_eq!(a.depths, b.depths);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        }
        assert_eq!(first.counters, second.counters);
        assert_eq!(first.sim_seconds.to_bits(), second.sim_seconds.to_bits());
    }

    #[test]
    fn matches_one_shot_runner() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..32).collect();
        let config = RunConfig::default();
        let one_shot = crate::runner::run_ibfs(&g, &r, &sources, &config);
        let mut svc = IbfsService::new(&g, &r, config);
        let served = svc.run(&sources);
        assert_eq!(one_shot.groups.len(), served.groups.len());
        for (a, b) in one_shot.groups.iter().zip(&served.groups) {
            assert_eq!(a.depths, b.depths);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        }
        assert_eq!(one_shot.sim_seconds.to_bits(), served.sim_seconds.to_bits());
    }

    #[test]
    fn batch_serves_distinct_requests_correctly() {
        let g = small_graph();
        let r = g.reverse();
        let mut svc = IbfsService::new(&g, &r, RunConfig::default());
        let requests = vec![vec![0, 1, 2], vec![7, 9], vec![40]];
        let runs = svc.run_batch(&requests);
        assert_eq!(runs.len(), 3);
        for (req, run) in requests.iter().zip(&runs) {
            assert_eq!(run.num_instances(), req.len());
            // Depths stay correct across requests (state fully reset).
            let grouping = svc.grouping().group(&g, req);
            for (gi, group) in grouping.groups.iter().enumerate() {
                for (j, &s) in group.iter().enumerate() {
                    assert_eq!(run.groups[gi].instance_depths(j), &reference_bfs(&g, s)[..]);
                }
            }
        }
    }

    #[test]
    fn hyperq_scheduler_overlaps_but_is_no_free_lunch() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..64).collect();
        let config = RunConfig {
            grouping: GroupingStrategy::Random { seed: 3, group_size: 16 },
            ..Default::default()
        };

        let mut b2b = IbfsService::new(&g, &r, config.clone());
        let serial = b2b.run(&sources);
        let mut hq = IbfsService::new(&g, &r, config).with_scheduler(Box::new(HyperQOverlap));
        assert_eq!(hq.scheduler_name(), "hyperq-overlap");
        let overlapped = hq.run(&sources);

        // Same traversals, same traffic — scheduling changes only time.
        assert_eq!(serial.counters, overlapped.counters);
        assert!(overlapped.sim_seconds > 0.0);
        assert!(
            overlapped.sim_seconds <= serial.sim_seconds,
            "overlap must not be slower: {} vs {}",
            overlapped.sim_seconds,
            serial.sim_seconds
        );
        // Memory-bound workload: the overlap win is bounded by the memory
        // floor, not proportional to group count.
        let memory_floor: f64 = {
            let model = CostModel::new(ibfs_gpu_sim::DeviceConfig::k40());
            model.seconds(model.memory_cycles(&serial.counters))
        };
        assert!(overlapped.sim_seconds >= memory_floor);
    }

    #[test]
    fn traced_requests_stamp_group_indices() {
        let g = small_graph();
        let r = g.reverse();
        let sources: Vec<VertexId> = (0..48).collect();
        let config = RunConfig {
            grouping: GroupingStrategy::Random { seed: 9, group_size: 16 },
            ..Default::default()
        };
        let mut svc = IbfsService::new(&g, &r, config);
        let mut sink = RecorderSink::default();
        let run = svc.run_traced(&sources, &mut sink);

        assert!(!sink.events.is_empty());
        let n_groups = run.groups.len() as u64;
        assert!(n_groups > 1);
        assert!(sink.events.iter().all(|e| e.group < n_groups));
        // Every group produced events, one per level it ran.
        for (gi, gr) in run.groups.iter().enumerate() {
            let events = sink.events.iter().filter(|e| e.group == gi as u64).count();
            assert_eq!(events, gr.levels.len());
        }
        // Tracing is observational: counters match an untraced service run.
        let mut svc2 = IbfsService::new(
            &g,
            &r,
            RunConfig {
                grouping: GroupingStrategy::Random { seed: 9, group_size: 16 },
                ..Default::default()
            },
        );
        let untraced = svc2.run(&sources);
        assert_eq!(untraced.counters, run.counters);
        assert_eq!(untraced.sim_seconds.to_bits(), run.sim_seconds.to_bits());
    }

    #[test]
    fn clamps_group_size_once_at_construction() {
        let g = small_graph();
        let r = g.reverse();
        let mut device = ibfs_gpu_sim::DeviceConfig::k40();
        device.global_mem_bytes =
            g.storage_bytes() * 2 + g.num_vertices() as u64 * 20 + g.num_vertices() as u64 * 10;
        let bound = device_group_bound(&g, &device, 128);
        let svc = IbfsService::new(
            &g,
            &r,
            RunConfig {
                engine: EngineKind::Bitwise,
                grouping: GroupingStrategy::Random { seed: 1, group_size: 128 },
                device,
            },
        );
        assert_eq!(svc.grouping().group_size(), bound as usize);
    }
}
