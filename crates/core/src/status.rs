//! Status arrays: private (SA), joint (JSA) and bitwise (BSA).
//!
//! The paper's three data layouts for "has instance j visited vertex v, and
//! at what depth":
//!
//! * **SA** — one byte per vertex for a single instance (the baseline
//!   engines' private arrays).
//! * **JSA** (§4) — for each vertex, the statuses of all N instances stored
//!   *contiguously* (`[vertex][instance]` layout) so that N contiguous
//!   threads inspecting one vertex coalesce their accesses into
//!   `N / 128`-segment transactions.
//! * **BSA** (§6) — one *bit* per (vertex, instance) packed into a
//!   [`StatusWord`], with the crucial property that bits are never reset:
//!   a set bit means "visited at some level", which enables XOR frontier
//!   identification and bottom-up early termination.

use crate::word::StatusWord;
use ibfs_graph::{Depth, VertexId, DEPTH_UNVISITED};
use ibfs_gpu_sim::Profiler;

/// Bytes per (vertex, instance) status in the SA/JSA: one depth byte. The
/// §3 memory bound prices per-instance state with this.
pub const SA_BYTES_PER_VERTEX: u64 = 1;

/// Private per-instance status array (one byte per vertex).
#[derive(Clone, Debug)]
pub struct StatusArray {
    depths: Vec<Depth>,
    /// Simulated device base address.
    pub base: u64,
}

impl StatusArray {
    /// Allocates an SA for `n` vertices on the simulated device.
    pub fn new(n: usize, prof: &mut Profiler) -> Self {
        StatusArray {
            depths: vec![DEPTH_UNVISITED; n],
            base: prof.alloc(n as u64 * SA_BYTES_PER_VERTEX),
        }
    }

    /// Depth of `v` (`DEPTH_UNVISITED` if not reached).
    #[inline]
    pub fn depth(&self, v: VertexId) -> Depth {
        self.depths[v as usize]
    }

    /// Marks `v` visited at `d`.
    #[inline]
    pub fn set(&mut self, v: VertexId, d: Depth) {
        self.depths[v as usize] = d;
    }

    /// Whether `v` has been visited.
    #[inline]
    pub fn visited(&self, v: VertexId) -> bool {
        self.depths[v as usize] != DEPTH_UNVISITED
    }

    /// Device byte address of `v`'s status.
    #[inline]
    pub fn addr(&self, v: VertexId) -> u64 {
        self.base + v as u64
    }

    /// The underlying depth vector.
    pub fn into_depths(self) -> Vec<Depth> {
        self.depths
    }

    /// The underlying depth slice.
    pub fn depths(&self) -> &[Depth] {
        &self.depths
    }
}

/// Joint status array: `[vertex][instance]` bytes for N instances.
#[derive(Clone, Debug)]
pub struct JointStatusArray {
    depths: Vec<Depth>,
    n_instances: usize,
    /// Simulated device base address.
    pub base: u64,
}

impl JointStatusArray {
    /// Allocates a JSA for `n_vertices` × `n_instances` on the device.
    pub fn new(n_vertices: usize, n_instances: usize, prof: &mut Profiler) -> Self {
        assert!(n_instances > 0);
        JointStatusArray {
            depths: vec![DEPTH_UNVISITED; n_vertices * n_instances],
            n_instances,
            base: prof.alloc((n_vertices * n_instances) as u64 * SA_BYTES_PER_VERTEX),
        }
    }

    /// Number of instances per vertex.
    #[inline]
    pub fn instances(&self) -> usize {
        self.n_instances
    }

    /// Depth of vertex `v` in instance `j`.
    #[inline]
    pub fn depth(&self, v: VertexId, j: usize) -> Depth {
        self.depths[v as usize * self.n_instances + j]
    }

    /// Sets the depth of `v` in instance `j`.
    #[inline]
    pub fn set(&mut self, v: VertexId, j: usize, d: Depth) {
        self.depths[v as usize * self.n_instances + j] = d;
    }

    /// Whether instance `j` has visited `v`.
    #[inline]
    pub fn visited(&self, v: VertexId, j: usize) -> bool {
        self.depth(v, j) != DEPTH_UNVISITED
    }

    /// The contiguous status block of vertex `v` (all instances).
    #[inline]
    pub fn statuses(&self, v: VertexId) -> &[Depth] {
        let lo = v as usize * self.n_instances;
        &self.depths[lo..lo + self.n_instances]
    }

    /// Device byte address of `(v, j)` — statuses of one vertex are
    /// sequential, which is what makes contiguous-thread access coalesce.
    #[inline]
    pub fn addr(&self, v: VertexId, j: usize) -> u64 {
        self.base + (v as usize * self.n_instances + j) as u64
    }

    /// Extracts instance `j`'s full depth array (for validation).
    pub fn instance_depths(&self, j: usize) -> Vec<Depth> {
        (0..self.depths.len() / self.n_instances)
            .map(|v| self.depths[v * self.n_instances + j])
            .collect()
    }
}

/// Bitwise status array: one [`StatusWord`] per vertex, bit `j` = "instance
/// `j` has visited this vertex (at any level)".
#[derive(Clone, Debug)]
pub struct BitwiseStatusArray<W: StatusWord> {
    words: Vec<W>,
    /// Simulated device base address.
    pub base: u64,
}

impl<W: StatusWord> BitwiseStatusArray<W> {
    /// Allocates a BSA for `n` vertices.
    pub fn new(n: usize, prof: &mut Profiler) -> Self {
        BitwiseStatusArray {
            words: vec![W::zero(); n],
            base: prof.alloc(n as u64 * W::bytes() as u64),
        }
    }

    /// The status word of `v`.
    #[inline]
    pub fn word(&self, v: VertexId) -> W {
        self.words[v as usize]
    }

    /// Replaces the status word of `v`.
    #[inline]
    pub fn set_word(&mut self, v: VertexId, w: W) {
        self.words[v as usize] = w;
    }

    /// ORs `w` into `v`'s word (the `atomicOr` of Algorithm 1), returning
    /// the previous value.
    #[inline]
    pub fn or_word(&mut self, v: VertexId, w: W) -> W {
        let old = self.words[v as usize];
        self.words[v as usize] = old.or(w);
        old
    }

    /// Device byte address of `v`'s word.
    #[inline]
    pub fn addr(&self, v: VertexId) -> u64 {
        self.base + v as u64 * W::bytes() as u64
    }

    /// All words (for scanning).
    pub fn words(&self) -> &[W] {
        &self.words
    }

    /// Copies the word values from `other` (the per-level
    /// `BSA_{k+1} <- BSA_k` of Algorithm 1, without reallocating).
    pub fn copy_from(&mut self, other: &BitwiseStatusArray<W>) {
        self.words.copy_from_slice(&other.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_gpu_sim::DeviceConfig;

    fn prof() -> Profiler {
        Profiler::new(DeviceConfig::k40())
    }

    #[test]
    fn sa_set_and_get() {
        let mut p = prof();
        let mut sa = StatusArray::new(4, &mut p);
        assert!(!sa.visited(2));
        sa.set(2, 5);
        assert_eq!(sa.depth(2), 5);
        assert!(sa.visited(2));
        assert_eq!(sa.addr(3), sa.base + 3);
    }

    #[test]
    fn jsa_layout_is_vertex_major() {
        let mut p = prof();
        let mut jsa = JointStatusArray::new(3, 4, &mut p);
        jsa.set(1, 2, 7);
        assert_eq!(jsa.depth(1, 2), 7);
        assert_eq!(jsa.statuses(1), &[DEPTH_UNVISITED, DEPTH_UNVISITED, 7, DEPTH_UNVISITED]);
        // Adjacent instances of one vertex are adjacent in memory.
        assert_eq!(jsa.addr(1, 3) - jsa.addr(1, 2), 1);
        // Different vertices are N bytes apart.
        assert_eq!(jsa.addr(2, 0) - jsa.addr(1, 0), 4);
    }

    #[test]
    fn jsa_instance_extraction() {
        let mut p = prof();
        let mut jsa = JointStatusArray::new(3, 2, &mut p);
        jsa.set(0, 0, 0);
        jsa.set(1, 0, 1);
        jsa.set(2, 1, 9);
        assert_eq!(jsa.instance_depths(0), vec![0, 1, DEPTH_UNVISITED]);
        assert_eq!(jsa.instance_depths(1), vec![DEPTH_UNVISITED, DEPTH_UNVISITED, 9]);
    }

    #[test]
    fn bsa_or_accumulates_and_reports_old() {
        let mut p = prof();
        let mut bsa: BitwiseStatusArray<u32> = BitwiseStatusArray::new(2, &mut p);
        let old = bsa.or_word(0, u32::bit(3));
        assert!(old.is_zero());
        let old = bsa.or_word(0, u32::bit(5));
        assert_eq!(old, u32::bit(3));
        assert_eq!(bsa.word(0), u32::bit(3).or(u32::bit(5)));
        // Bits never clear: OR with zero is identity.
        bsa.or_word(0, u32::zero());
        assert_eq!(bsa.word(0).count_ones(), 2);
    }

    #[test]
    fn bsa_addresses_stride_by_word_bytes() {
        let mut p = prof();
        let bsa: BitwiseStatusArray<u128> = BitwiseStatusArray::new(4, &mut p);
        assert_eq!(bsa.addr(1) - bsa.addr(0), 16);
    }

    #[test]
    fn bsa_copy_from_mirrors_words() {
        let mut p = prof();
        let mut a: BitwiseStatusArray<u64> = BitwiseStatusArray::new(3, &mut p);
        let mut b: BitwiseStatusArray<u64> = BitwiseStatusArray::new(3, &mut p);
        a.or_word(1, u64::bit(9));
        b.copy_from(&a);
        assert_eq!(b.word(1), u64::bit(9));
        assert_ne!(a.base, b.base);
    }
}
