//! Status words: the bit-per-instance packing of the bitwise status array.
//!
//! §6 of the paper packs the status of one vertex for all concurrent BFS
//! instances into a single variable, and notes that CUDA vector types
//! (`int4`, `long4`, ...) widen it further: "the number of bits in each
//! variable affects the number of concurrent BFS, e.g., if BSA is
//! implemented with `int` type, one variable can represent the statuses for
//! 32 BFS instances". [`StatusWord`] abstracts that choice: `u32` ≈ `int`,
//! `u64` ≈ `long`, `u128` ≈ `int4`, [`W256`] ≈ `long4`.

/// A fixed-width bit vector holding one status bit per BFS instance.
pub trait StatusWord: Copy + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Number of instances the word can hold.
    const BITS: u32;

    /// The all-zeros word (no instance has visited the vertex).
    fn zero() -> Self;

    /// The word with exactly bit `i` set.
    fn bit(i: u32) -> Self;

    /// The word with the low `n` bits set — "all visited" for a group of
    /// `n` instances. `n == 0` gives zero.
    fn low_mask(n: u32) -> Self;

    /// Bitwise OR.
    fn or(self, other: Self) -> Self;

    /// Bitwise AND.
    fn and(self, other: Self) -> Self;

    /// Bitwise XOR — the paper's top-down frontier identification
    /// (`BSA_{k+1}[v] XOR BSA_k[v]`).
    fn xor(self, other: Self) -> Self;

    /// Bitwise NOT.
    fn not(self) -> Self;

    /// Whether bit `i` is set.
    fn has_bit(self, i: u32) -> bool {
        self.and(Self::bit(i)) != Self::zero()
    }

    /// Whether the word is all zeros.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }

    /// Number of set bits.
    fn count_ones(self) -> u32;

    /// Index of the lowest set bit, or `BITS` when zero.
    fn trailing_zeros(self) -> u32;

    /// Indices of the set bits, ascending.
    fn iter_ones(self) -> OnesIter<Self> {
        OnesIter { word: self }
    }

    /// Bytes occupied in the (simulated) device memory.
    fn bytes() -> u32 {
        Self::BITS / 8
    }
}

/// Iterator over set-bit indices of a [`StatusWord`], skipping zero runs
/// with [`StatusWord::trailing_zeros`] so cost is O(popcount), not O(BITS).
pub struct OnesIter<W: StatusWord> {
    word: W,
}

impl<W: StatusWord> Iterator for OnesIter<W> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word.is_zero() {
            return None;
        }
        let i = self.word.trailing_zeros();
        self.word = self.word.and(W::bit(i).not());
        Some(i)
    }
}

macro_rules! impl_word_for_uint {
    ($t:ty, $bits:expr) => {
        impl StatusWord for $t {
            const BITS: u32 = $bits;

            #[inline]
            fn zero() -> Self {
                0
            }

            #[inline]
            fn bit(i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                1 << i
            }

            #[inline]
            fn low_mask(n: u32) -> Self {
                debug_assert!(n <= Self::BITS);
                if n == 0 {
                    0
                } else if n == Self::BITS {
                    <$t>::MAX
                } else {
                    (1 << n) - 1
                }
            }

            #[inline]
            fn or(self, other: Self) -> Self {
                self | other
            }

            #[inline]
            fn and(self, other: Self) -> Self {
                self & other
            }

            #[inline]
            fn xor(self, other: Self) -> Self {
                self ^ other
            }

            #[inline]
            fn not(self) -> Self {
                !self
            }

            #[inline]
            fn count_ones(self) -> u32 {
                <$t>::count_ones(self)
            }

            #[inline]
            fn trailing_zeros(self) -> u32 {
                <$t>::trailing_zeros(self)
            }
        }
    };
}

impl_word_for_uint!(u32, 32);
impl_word_for_uint!(u64, 64);
impl_word_for_uint!(u128, 128);

/// A 256-bit status word — the `long4` vector type of the paper, packing
/// four 64-bit lanes fetched in one vectorized access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct W256(pub [u64; 4]);

impl StatusWord for W256 {
    const BITS: u32 = 256;

    #[inline]
    fn zero() -> Self {
        W256([0; 4])
    }

    #[inline]
    fn bit(i: u32) -> Self {
        debug_assert!(i < 256);
        let mut w = [0u64; 4];
        w[(i / 64) as usize] = 1u64 << (i % 64);
        W256(w)
    }

    #[inline]
    fn low_mask(n: u32) -> Self {
        debug_assert!(n <= 256);
        let mut w = [0u64; 4];
        for (lane, slot) in w.iter_mut().enumerate() {
            let lo = lane as u32 * 64;
            if n > lo {
                let bits = (n - lo).min(64);
                *slot = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            }
        }
        W256(w)
    }

    #[inline]
    fn or(self, o: Self) -> Self {
        W256([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }

    #[inline]
    fn and(self, o: Self) -> Self {
        W256([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }

    #[inline]
    fn xor(self, o: Self) -> Self {
        W256([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }

    #[inline]
    fn not(self) -> Self {
        W256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }

    #[inline]
    fn count_ones(self) -> u32 {
        self.0.iter().map(|x| x.count_ones()).sum()
    }

    #[inline]
    fn trailing_zeros(self) -> u32 {
        for (lane, &x) in self.0.iter().enumerate() {
            if x != 0 {
                return lane as u32 * 64 + x.trailing_zeros();
            }
        }
        256
    }
}

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// A [`StatusWord`] width selectable at run time (CLI `--width`, bench
/// configs). Each variant names the register type §6 maps it to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WordWidth {
    /// 32-bit word (`int`).
    W32,
    /// 64-bit word (`long`) — the MS-BFS register width and the default.
    #[default]
    W64,
    /// 128-bit word (`int4`).
    W128,
    /// 256-bit word (`long4`).
    W256,
}

impl WordWidth {
    /// Instances one status word of this width can hold.
    pub fn bits(self) -> u32 {
        match self {
            WordWidth::W32 => 32,
            WordWidth::W64 => 64,
            WordWidth::W128 => 128,
            WordWidth::W256 => 256,
        }
    }

    /// Parses `32`/`64`/`128`/`256`.
    pub fn parse(s: &str) -> Option<WordWidth> {
        match s {
            "32" => Some(WordWidth::W32),
            "64" => Some(WordWidth::W64),
            "128" => Some(WordWidth::W128),
            "256" => Some(WordWidth::W256),
            _ => None,
        }
    }

    /// All widths, narrowest first.
    pub fn all() -> [WordWidth; 4] {
        [WordWidth::W32, WordWidth::W64, WordWidth::W128, WordWidth::W256]
    }
}

impl std::fmt::Display for WordWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A shared-memory cell holding one [`StatusWord`], updatable concurrently.
///
/// `u32`/`u64` map to native atomics; `u128`/[`W256`] are stored as 2/4
/// `AtomicU64` lanes updated lane-by-lane. A multi-lane [`AtomicStatus::load`]
/// may observe lanes from different moments ("torn" across lanes), and a
/// multi-lane [`AtomicStatus::fetch_or`] is atomic per lane only. Both are
/// sound for the BFS status arrays because status bits are *monotone* — they
/// are only ever set, never cleared, within a level — so any torn view is a
/// valid earlier state, exactly like the GPU engines' non-atomic wide-word
/// reads. Cross-lane snapshots are only taken between barrier-synced phases,
/// where no writer is live.
pub trait AtomicStatus: Send + Sync + 'static {
    /// The word value this cell holds.
    type Word: StatusWord;

    /// A zeroed cell.
    fn zeroed() -> Self;

    /// Loads the word (per-lane atomic; see the trait docs on tearing).
    fn load(&self) -> Self::Word;

    /// Stores the word (per-lane atomic).
    fn store(&self, w: Self::Word);

    /// ORs `w` in and returns the *previous* word (per-lane atomic; for a
    /// multi-lane word, each lane's previous value is from the instant that
    /// lane's RMW committed).
    fn fetch_or(&self, w: Self::Word) -> Self::Word;
}

/// One `AtomicU32` — the native cell for `u32` status words.
pub struct AtomicW32(AtomicU32);

impl AtomicStatus for AtomicW32 {
    type Word = u32;

    fn zeroed() -> Self {
        AtomicW32(AtomicU32::new(0))
    }

    #[inline]
    fn load(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    fn store(&self, w: u32) {
        self.0.store(w, Ordering::Relaxed);
    }

    #[inline]
    fn fetch_or(&self, w: u32) -> u32 {
        self.0.fetch_or(w, Ordering::Relaxed)
    }
}

/// One `AtomicU64` — the native cell for `u64` status words.
pub struct AtomicW64(AtomicU64);

impl AtomicStatus for AtomicW64 {
    type Word = u64;

    fn zeroed() -> Self {
        AtomicW64(AtomicU64::new(0))
    }

    #[inline]
    fn load(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    #[inline]
    fn store(&self, w: u64) {
        self.0.store(w, Ordering::Relaxed);
    }

    #[inline]
    fn fetch_or(&self, w: u64) -> u64 {
        self.0.fetch_or(w, Ordering::Relaxed)
    }
}

/// Two `AtomicU64` lanes backing a `u128` status word.
pub struct AtomicW128([AtomicU64; 2]);

impl AtomicStatus for AtomicW128 {
    type Word = u128;

    fn zeroed() -> Self {
        AtomicW128([AtomicU64::new(0), AtomicU64::new(0)])
    }

    #[inline]
    fn load(&self) -> u128 {
        let lo = self.0[0].load(Ordering::Relaxed) as u128;
        let hi = self.0[1].load(Ordering::Relaxed) as u128;
        lo | (hi << 64)
    }

    #[inline]
    fn store(&self, w: u128) {
        self.0[0].store(w as u64, Ordering::Relaxed);
        self.0[1].store((w >> 64) as u64, Ordering::Relaxed);
    }

    #[inline]
    fn fetch_or(&self, w: u128) -> u128 {
        let lo = if w as u64 != 0 {
            self.0[0].fetch_or(w as u64, Ordering::Relaxed)
        } else {
            self.0[0].load(Ordering::Relaxed)
        };
        let hi = if (w >> 64) as u64 != 0 {
            self.0[1].fetch_or((w >> 64) as u64, Ordering::Relaxed)
        } else {
            self.0[1].load(Ordering::Relaxed)
        };
        lo as u128 | ((hi as u128) << 64)
    }
}

/// Four `AtomicU64` lanes backing a [`W256`] status word.
pub struct AtomicW256([AtomicU64; 4]);

impl AtomicStatus for AtomicW256 {
    type Word = W256;

    fn zeroed() -> Self {
        AtomicW256(std::array::from_fn(|_| AtomicU64::new(0)))
    }

    #[inline]
    fn load(&self) -> W256 {
        W256(std::array::from_fn(|i| self.0[i].load(Ordering::Relaxed)))
    }

    #[inline]
    fn store(&self, w: W256) {
        for (lane, &v) in self.0.iter().zip(&w.0) {
            lane.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    fn fetch_or(&self, w: W256) -> W256 {
        W256(std::array::from_fn(|i| {
            if w.0[i] != 0 {
                self.0[i].fetch_or(w.0[i], Ordering::Relaxed)
            } else {
                self.0[i].load(Ordering::Relaxed)
            }
        }))
    }
}

/// One `AtomicU8` depth cell for the asynchronous label-correcting engine.
///
/// The status lanes above are monotone-*set* (bits only ever turn on); the
/// async engine's per-`(instance, vertex)` depth words are monotone
/// *decreasing* instead — a cell starts at the unvisited sentinel and is
/// only ever lowered, through [`AtomicDepth::relax_to`]'s CAS-min (the
/// parlay `multi_BFS` compare-exchange idiom). That monotonicity is what
/// makes relaxed ordering sound here: any stale read over-estimates the
/// depth, and an over-estimate only ever causes a retry, never a wrong
/// final value.
pub struct AtomicDepth(AtomicU8);

impl AtomicDepth {
    /// A cell holding the unvisited sentinel (`u8::MAX`).
    pub fn unvisited() -> Self {
        AtomicDepth(AtomicU8::new(u8::MAX))
    }

    /// Loads the current depth.
    #[inline]
    pub fn load(&self) -> u8 {
        self.0.load(Ordering::Relaxed)
    }

    /// Stores `d` unconditionally (initialization only — concurrent
    /// writers must go through [`AtomicDepth::relax_to`]).
    #[inline]
    pub fn store(&self, d: u8) {
        self.0.store(d, Ordering::Relaxed);
    }

    /// CAS-min: lowers the cell to `d` if `d` is strictly smaller than the
    /// current value. Returns `true` when this call won the lowering —
    /// the caller then owns re-enqueueing the vertex.
    #[inline]
    pub fn relax_to(&self, d: u8) -> bool {
        let mut cur = self.0.load(Ordering::Relaxed);
        while d < cur {
            match self
                .0
                .compare_exchange_weak(cur, d, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<W: StatusWord>() {
        assert!(W::zero().is_zero());
        assert_eq!(W::low_mask(0), W::zero());
        let full = W::low_mask(W::BITS);
        assert_eq!(full.count_ones(), W::BITS);
        for i in [0, 1, W::BITS / 2, W::BITS - 1] {
            let b = W::bit(i);
            assert_eq!(b.count_ones(), 1);
            assert!(b.has_bit(i));
            assert!(!b.has_bit((i + 1) % W::BITS) || W::BITS == 1);
            assert_eq!(b.or(b), b);
            assert_eq!(b.and(b), b);
            assert_eq!(b.xor(b), W::zero());
            assert!(full.has_bit(i));
            assert_eq!(b.not().and(b), W::zero());
            assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![i]);
        }
        // low_mask(n) has exactly bits 0..n.
        let n = W::BITS / 2 + 1;
        let m = W::low_mask(n);
        assert_eq!(m.count_ones(), n);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        assert_eq!(W::bytes(), W::BITS / 8);
    }

    #[test]
    fn u32_word() {
        exercise::<u32>();
    }

    #[test]
    fn u64_word() {
        exercise::<u64>();
    }

    #[test]
    fn u128_word() {
        exercise::<u128>();
    }

    #[test]
    fn w256_word() {
        exercise::<W256>();
    }

    #[test]
    fn w256_crosses_lane_boundaries() {
        let b = W256::bit(64);
        assert_eq!(b.0, [0, 1, 0, 0]);
        let m = W256::low_mask(130);
        assert_eq!(m.0, [u64::MAX, u64::MAX, 0b11, 0]);
        assert_eq!(m.count_ones(), 130);
    }

    fn exercise_atomic<A: AtomicStatus>() {
        let cell = A::zeroed();
        assert!(cell.load().is_zero());
        let b0 = A::Word::bit(0);
        let bl = A::Word::bit(A::Word::BITS - 1);
        assert!(cell.fetch_or(b0).is_zero());
        assert_eq!(cell.fetch_or(bl), b0);
        assert_eq!(cell.load(), b0.or(bl));
        let m = A::Word::low_mask(A::Word::BITS / 2 + 1);
        cell.store(m);
        assert_eq!(cell.load(), m);
        // OR of an already-set mask is a no-op on the value.
        assert_eq!(cell.fetch_or(b0), m);
        assert_eq!(cell.load(), m);
    }

    #[test]
    fn atomic_cells_match_word_semantics() {
        exercise_atomic::<AtomicW32>();
        exercise_atomic::<AtomicW64>();
        exercise_atomic::<AtomicW128>();
        exercise_atomic::<AtomicW256>();
    }

    #[test]
    fn atomic_wide_words_cross_lane_boundaries() {
        let c = AtomicW128::zeroed();
        c.fetch_or(1u128 << 100);
        c.fetch_or(1u128);
        assert_eq!(c.load(), (1u128 << 100) | 1);

        let c = AtomicW256::zeroed();
        c.fetch_or(W256::bit(200));
        c.fetch_or(W256::bit(3));
        assert_eq!(c.load(), W256::bit(200).or(W256::bit(3)));
    }

    #[test]
    fn word_width_parses_and_reports_bits() {
        for w in WordWidth::all() {
            assert_eq!(WordWidth::parse(&w.to_string()), Some(w));
        }
        assert_eq!(WordWidth::parse("48"), None);
        assert_eq!(WordWidth::default().bits(), 64);
    }

    #[test]
    fn atomic_depth_only_ever_decreases() {
        let c = AtomicDepth::unvisited();
        assert_eq!(c.load(), u8::MAX);
        assert!(c.relax_to(9));
        assert_eq!(c.load(), 9);
        // Raising is refused, equal is refused, lowering wins.
        assert!(!c.relax_to(10));
        assert!(!c.relax_to(9));
        assert_eq!(c.load(), 9);
        assert!(c.relax_to(2));
        assert_eq!(c.load(), 2);
    }

    #[test]
    fn atomic_depth_concurrent_relax_settles_at_min() {
        let cells: Vec<AtomicDepth> = (0..64).map(|_| AtomicDepth::unvisited()).collect();
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let cells = &cells;
                s.spawn(move || {
                    for (i, c) in cells.iter().enumerate() {
                        c.relax_to((i as u8).wrapping_add(t) % 32 + t);
                    }
                });
            }
        });
        for (i, c) in cells.iter().enumerate() {
            let want = (0..4u8).map(|t| (i as u8).wrapping_add(t) % 32 + t).min().unwrap();
            assert_eq!(c.load(), want);
        }
    }

    #[test]
    fn xor_identifies_new_bits() {
        // The top-down frontier identification: bits in BSA_{k+1} but not
        // BSA_k.
        let before = u32::bit(3).or(u32::bit(7));
        let after = before.or(u32::bit(12));
        assert_eq!(after.xor(before), u32::bit(12));
    }
}
