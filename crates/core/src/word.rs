//! Status words: the bit-per-instance packing of the bitwise status array.
//!
//! §6 of the paper packs the status of one vertex for all concurrent BFS
//! instances into a single variable, and notes that CUDA vector types
//! (`int4`, `long4`, ...) widen it further: "the number of bits in each
//! variable affects the number of concurrent BFS, e.g., if BSA is
//! implemented with `int` type, one variable can represent the statuses for
//! 32 BFS instances". [`StatusWord`] abstracts that choice: `u32` ≈ `int`,
//! `u64` ≈ `long`, `u128` ≈ `int4`, [`W256`] ≈ `long4`.

/// A fixed-width bit vector holding one status bit per BFS instance.
pub trait StatusWord: Copy + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Number of instances the word can hold.
    const BITS: u32;

    /// The all-zeros word (no instance has visited the vertex).
    fn zero() -> Self;

    /// The word with exactly bit `i` set.
    fn bit(i: u32) -> Self;

    /// The word with the low `n` bits set — "all visited" for a group of
    /// `n` instances. `n == 0` gives zero.
    fn low_mask(n: u32) -> Self;

    /// Bitwise OR.
    fn or(self, other: Self) -> Self;

    /// Bitwise AND.
    fn and(self, other: Self) -> Self;

    /// Bitwise XOR — the paper's top-down frontier identification
    /// (`BSA_{k+1}[v] XOR BSA_k[v]`).
    fn xor(self, other: Self) -> Self;

    /// Bitwise NOT.
    fn not(self) -> Self;

    /// Whether bit `i` is set.
    fn has_bit(self, i: u32) -> bool {
        self.and(Self::bit(i)) != Self::zero()
    }

    /// Whether the word is all zeros.
    fn is_zero(self) -> bool {
        self == Self::zero()
    }

    /// Number of set bits.
    fn count_ones(self) -> u32;

    /// Indices of the set bits, ascending.
    fn iter_ones(self) -> OnesIter<Self> {
        OnesIter { word: self, next: 0 }
    }

    /// Bytes occupied in the (simulated) device memory.
    fn bytes() -> u32 {
        Self::BITS / 8
    }
}

/// Iterator over set-bit indices of a [`StatusWord`].
pub struct OnesIter<W: StatusWord> {
    word: W,
    next: u32,
}

impl<W: StatusWord> Iterator for OnesIter<W> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.next < W::BITS {
            let i = self.next;
            self.next += 1;
            if self.word.has_bit(i) {
                return Some(i);
            }
        }
        None
    }
}

macro_rules! impl_word_for_uint {
    ($t:ty, $bits:expr) => {
        impl StatusWord for $t {
            const BITS: u32 = $bits;

            #[inline]
            fn zero() -> Self {
                0
            }

            #[inline]
            fn bit(i: u32) -> Self {
                debug_assert!(i < Self::BITS);
                1 << i
            }

            #[inline]
            fn low_mask(n: u32) -> Self {
                debug_assert!(n <= Self::BITS);
                if n == 0 {
                    0
                } else if n == Self::BITS {
                    <$t>::MAX
                } else {
                    (1 << n) - 1
                }
            }

            #[inline]
            fn or(self, other: Self) -> Self {
                self | other
            }

            #[inline]
            fn and(self, other: Self) -> Self {
                self & other
            }

            #[inline]
            fn xor(self, other: Self) -> Self {
                self ^ other
            }

            #[inline]
            fn not(self) -> Self {
                !self
            }

            #[inline]
            fn count_ones(self) -> u32 {
                <$t>::count_ones(self)
            }
        }
    };
}

impl_word_for_uint!(u32, 32);
impl_word_for_uint!(u64, 64);
impl_word_for_uint!(u128, 128);

/// A 256-bit status word — the `long4` vector type of the paper, packing
/// four 64-bit lanes fetched in one vectorized access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct W256(pub [u64; 4]);

impl StatusWord for W256 {
    const BITS: u32 = 256;

    #[inline]
    fn zero() -> Self {
        W256([0; 4])
    }

    #[inline]
    fn bit(i: u32) -> Self {
        debug_assert!(i < 256);
        let mut w = [0u64; 4];
        w[(i / 64) as usize] = 1u64 << (i % 64);
        W256(w)
    }

    #[inline]
    fn low_mask(n: u32) -> Self {
        debug_assert!(n <= 256);
        let mut w = [0u64; 4];
        for (lane, slot) in w.iter_mut().enumerate() {
            let lo = lane as u32 * 64;
            if n > lo {
                let bits = (n - lo).min(64);
                *slot = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            }
        }
        W256(w)
    }

    #[inline]
    fn or(self, o: Self) -> Self {
        W256([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }

    #[inline]
    fn and(self, o: Self) -> Self {
        W256([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }

    #[inline]
    fn xor(self, o: Self) -> Self {
        W256([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }

    #[inline]
    fn not(self) -> Self {
        W256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }

    #[inline]
    fn count_ones(self) -> u32 {
        self.0.iter().map(|x| x.count_ones()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<W: StatusWord>() {
        assert!(W::zero().is_zero());
        assert_eq!(W::low_mask(0), W::zero());
        let full = W::low_mask(W::BITS);
        assert_eq!(full.count_ones(), W::BITS);
        for i in [0, 1, W::BITS / 2, W::BITS - 1] {
            let b = W::bit(i);
            assert_eq!(b.count_ones(), 1);
            assert!(b.has_bit(i));
            assert!(!b.has_bit((i + 1) % W::BITS) || W::BITS == 1);
            assert_eq!(b.or(b), b);
            assert_eq!(b.and(b), b);
            assert_eq!(b.xor(b), W::zero());
            assert!(full.has_bit(i));
            assert_eq!(b.not().and(b), W::zero());
            assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![i]);
        }
        // low_mask(n) has exactly bits 0..n.
        let n = W::BITS / 2 + 1;
        let m = W::low_mask(n);
        assert_eq!(m.count_ones(), n);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        assert_eq!(W::bytes(), W::BITS / 8);
    }

    #[test]
    fn u32_word() {
        exercise::<u32>();
    }

    #[test]
    fn u64_word() {
        exercise::<u64>();
    }

    #[test]
    fn u128_word() {
        exercise::<u128>();
    }

    #[test]
    fn w256_word() {
        exercise::<W256>();
    }

    #[test]
    fn w256_crosses_lane_boundaries() {
        let b = W256::bit(64);
        assert_eq!(b.0, [0, 1, 0, 0]);
        let m = W256::low_mask(130);
        assert_eq!(m.0, [u64::MAX, u64::MAX, 0b11, 0]);
        assert_eq!(m.count_ones(), 130);
    }

    #[test]
    fn xor_identifies_new_bits() {
        // The top-down frontier identification: bits in BSA_{k+1} but not
        // BSA_k.
        let before = u32::bit(3).or(u32::bit(7));
        let after = before.or(u32::bit(12));
        assert_eq!(after.xor(before), u32::bit(12));
    }
}
