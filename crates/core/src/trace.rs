//! Structured per-level trace stream.
//!
//! The [`crate::driver::LevelDriver`] emits one [`TraversalEvent`] per BFS
//! level it executes: the level's direction, frontier counts, counter deltas
//! and simulated time. The serve layer interleaves [`SpanEvent`]s (request
//! lifecycle stages) into the same stream, correlated through the event's
//! `batch` field. Consumers plug in a [`TraceSink`]:
//!
//! * [`NullSink`] — discard (the default; tracing costs nothing when off).
//! * [`RecorderSink`] — collect in memory (figure modules, tests).
//! * [`JsonlSink`] — one JSON object per line via `ibfs_util::json`
//!   (`bfs --trace`). Both event kinds carry `schema_version`
//!   ([`TRACE_SCHEMA_VERSION`]) and a `kind` tag (`"level"` / `"span"`).
//! * [`GroupStamp`] — adapter that stamps the group index before forwarding
//!   (used by the service layer, which runs many groups per request).
//! * [`BatchStamp`] — adapter that stamps the serve batch sequence number,
//!   linking per-level events to the span stream.
//! * [`MetricsSink`] — adapter that records per-level counters and
//!   histograms into an [`ibfs_obs::Registry`] before forwarding.
//! * [`TraceLog`] + [`TraceLogSink`] — a shared, thread-safe event log the
//!   serve stack uses to merge spans and levels from many threads into one
//!   ordered stream.
//!
//! Sinks observe the traversal; they never influence it. The engines charge
//! the profiler identically whether a sink is attached or not, which is what
//! keeps traced and untraced runs bit-identical.

use crate::direction::Direction;
use ibfs_obs::span::SpanEvent;
use ibfs_obs::Registry;
use ibfs_util::json::{field, FromJson, Json, JsonError, ToJson};
use std::sync::{Arc, Mutex};

pub use ibfs_obs::span::TRACE_SCHEMA_VERSION;

/// One BFS level as observed by the level driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraversalEvent {
    /// Group index within the request (stamped by [`GroupStamp`]; 0 when the
    /// traversal runs outside the service layer).
    pub group: u64,
    /// Serve batch sequence number (stamped by [`BatchStamp`]; batch numbers
    /// are 1-based, so 0 means the traversal ran outside the serve stack).
    pub batch: u64,
    /// Level number (depth assigned at this level).
    pub level: u32,
    /// Direction executed.
    pub direction: Direction,
    /// Unique frontiers in the (joint) queue this level.
    pub unique_frontiers: u64,
    /// Sum over instances of per-instance frontier counts.
    pub instance_frontiers: u64,
    /// Edges inspected across all instances this level.
    pub edges_inspected: u64,
    /// Bottom-up inspections cut short by early termination.
    pub early_terminations: u64,
    /// Global-memory load transactions charged during this level.
    pub load_transactions: u64,
    /// Global-memory store transactions charged during this level.
    pub store_transactions: u64,
    /// Atomic transactions charged during this level.
    pub atomic_transactions: u64,
    /// Simulated seconds this level cost (including its launch overhead).
    pub sim_seconds: f64,
}

// The JSON codec is hand-written (not `json_struct!`) because the schema is
// versioned: every encoded line carries `schema_version` and a `kind` tag,
// and the decoder accepts v1 lines (no version, no `batch`) for old traces.
impl ToJson for TraversalEvent {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".to_string(), Json::UInt(TRACE_SCHEMA_VERSION)),
            ("kind".to_string(), Json::Str("level".to_string())),
            ("group".to_string(), Json::UInt(self.group)),
            ("batch".to_string(), Json::UInt(self.batch)),
            ("level".to_string(), self.level.to_json()),
            ("direction".to_string(), self.direction.to_json()),
            ("unique_frontiers".to_string(), Json::UInt(self.unique_frontiers)),
            ("instance_frontiers".to_string(), Json::UInt(self.instance_frontiers)),
            ("edges_inspected".to_string(), Json::UInt(self.edges_inspected)),
            ("early_terminations".to_string(), Json::UInt(self.early_terminations)),
            ("load_transactions".to_string(), Json::UInt(self.load_transactions)),
            ("store_transactions".to_string(), Json::UInt(self.store_transactions)),
            ("atomic_transactions".to_string(), Json::UInt(self.atomic_transactions)),
            ("sim_seconds".to_string(), self.sim_seconds.to_json()),
        ])
    }
}

impl FromJson for TraversalEvent {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let version = field::<u64>(j, "schema_version").unwrap_or(1);
        if version > TRACE_SCHEMA_VERSION {
            return Err(JsonError {
                msg: format!(
                    "trace version {version} is newer than supported {TRACE_SCHEMA_VERSION}"
                ),
                at: 0,
            });
        }
        Ok(TraversalEvent {
            group: field(j, "group")?,
            batch: field(j, "batch").unwrap_or(0),
            level: field(j, "level")?,
            direction: field(j, "direction")?,
            unique_frontiers: field(j, "unique_frontiers")?,
            instance_frontiers: field(j, "instance_frontiers")?,
            edges_inspected: field(j, "edges_inspected")?,
            early_terminations: field(j, "early_terminations")?,
            load_transactions: field(j, "load_transactions")?,
            store_transactions: field(j, "store_transactions")?,
            atomic_transactions: field(j, "atomic_transactions")?,
            sim_seconds: field(j, "sim_seconds")?,
        })
    }
}

/// Either kind of trace line, tagged as the JSONL stream tags them.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// A per-level traversal event.
    Level(TraversalEvent),
    /// A request lifecycle event.
    Span(SpanEvent),
}

impl ToJson for TraceRecord {
    fn to_json(&self) -> Json {
        match self {
            TraceRecord::Level(e) => e.to_json(),
            TraceRecord::Span(e) => e.to_json(),
        }
    }
}

impl FromJson for TraceRecord {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.get("kind").and_then(Json::as_str) {
            Some("span") => Ok(TraceRecord::Span(SpanEvent::from_json(j)?)),
            // v1 lines carry no `kind`; everything untagged is a level event.
            Some("level") | None => Ok(TraceRecord::Level(TraversalEvent::from_json(j)?)),
            Some(other) => {
                Err(JsonError { msg: format!("unknown trace record kind `{other}`"), at: 0 })
            }
        }
    }
}

/// Receiver of trace events.
pub trait TraceSink {
    /// Observes one level.
    fn record(&mut self, event: &TraversalEvent);

    /// Observes one request lifecycle stage. Default: ignored, so per-level
    /// sinks (and all pre-span implementations) need no changes.
    fn span(&mut self, _event: &SpanEvent) {}
}

/// Discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraversalEvent) {}
}

/// Collects events in memory.
#[derive(Clone, Debug, Default)]
pub struct RecorderSink {
    /// Recorded level events, in emission order.
    pub events: Vec<TraversalEvent>,
    /// Recorded span events, in emission order.
    pub spans: Vec<SpanEvent>,
}

impl TraceSink for RecorderSink {
    fn record(&mut self, event: &TraversalEvent) {
        self.events.push(*event);
    }

    fn span(&mut self, event: &SpanEvent) {
        self.spans.push(event.clone());
    }
}

/// Writes one compact JSON object per line.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    writer: W,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// A sink writing JSONL to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// The underlying writer (flushes what the sink buffered).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraversalEvent) {
        // Trace output is best-effort: a closed pipe must not abort the
        // traversal itself.
        let _ = writeln!(self.writer, "{}", event.to_json().to_string());
    }

    fn span(&mut self, event: &SpanEvent) {
        let _ = writeln!(self.writer, "{}", event.to_json().to_string());
    }
}

/// Adapter stamping a group index onto every forwarded event.
pub struct GroupStamp<'a> {
    /// Group index to stamp.
    pub group: u64,
    /// Downstream sink.
    pub inner: &'a mut dyn TraceSink,
}

impl TraceSink for GroupStamp<'_> {
    fn record(&mut self, event: &TraversalEvent) {
        let mut stamped = *event;
        stamped.group = self.group;
        self.inner.record(&stamped);
    }

    fn span(&mut self, event: &SpanEvent) {
        self.inner.span(event);
    }
}

/// Adapter stamping a serve batch sequence number onto every forwarded
/// level event, correlating it with the span stream.
pub struct BatchStamp<'a> {
    /// Batch sequence number to stamp (1-based).
    pub batch: u64,
    /// Downstream sink.
    pub inner: &'a mut dyn TraceSink,
}

impl TraceSink for BatchStamp<'_> {
    fn record(&mut self, event: &TraversalEvent) {
        let mut stamped = *event;
        stamped.batch = self.batch;
        self.inner.record(&stamped);
    }

    fn span(&mut self, event: &SpanEvent) {
        self.inner.span(event);
    }
}

/// Adapter recording per-level counters and histograms into a metrics
/// registry before forwarding. Counter names follow the workspace
/// convention: `ibfs_core_levels_total`, `ibfs_core_edges_inspected_total`,
/// `ibfs_core_early_terminations_total`, and the histograms
/// `ibfs_core_frontier_size` / `ibfs_core_level_sim_seconds`.
pub struct MetricsSink<'a> {
    levels: Arc<ibfs_obs::Counter>,
    edges: Arc<ibfs_obs::Counter>,
    early: Arc<ibfs_obs::Counter>,
    frontier: Arc<ibfs_obs::Histogram>,
    sim_seconds: Arc<ibfs_obs::Histogram>,
    /// Downstream sink.
    pub inner: &'a mut dyn TraceSink,
}

impl<'a> MetricsSink<'a> {
    /// A sink recording into `registry` and forwarding to `inner`.
    pub fn new(registry: &Registry, inner: &'a mut dyn TraceSink) -> Self {
        MetricsSink {
            levels: registry.counter("ibfs_core_levels_total"),
            edges: registry.counter("ibfs_core_edges_inspected_total"),
            early: registry.counter("ibfs_core_early_terminations_total"),
            frontier: registry.histogram("ibfs_core_frontier_size"),
            sim_seconds: registry.histogram("ibfs_core_level_sim_seconds"),
            inner,
        }
    }
}

impl TraceSink for MetricsSink<'_> {
    fn record(&mut self, event: &TraversalEvent) {
        self.levels.inc();
        self.edges.add(event.edges_inspected);
        self.early.add(event.early_terminations);
        self.frontier.record(event.unique_frontiers as f64);
        self.sim_seconds.record(event.sim_seconds);
        self.inner.record(event);
    }

    fn span(&mut self, event: &SpanEvent) {
        self.inner.span(event);
    }
}

/// A shared, thread-safe trace log. The serve stack hands a clone to every
/// layer that emits (admission spans from the serve thread, level events
/// from the device workers); the merged stream comes back out in arrival
/// order via [`TraceLog::drain`] or [`TraceLog::render_jsonl`].
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends one record.
    pub fn push(&self, record: TraceRecord) {
        self.records.lock().unwrap().push(record);
    }

    /// Number of records logged so far.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the records logged so far, in arrival order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Removes and returns everything logged so far.
    pub fn drain(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }

    /// A [`TraceSink`] that appends to this log.
    pub fn sink(&self) -> TraceLogSink {
        TraceLogSink { log: self.clone() }
    }

    /// The whole log as JSONL text (one object per line, `kind`-tagged).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.records.lock().unwrap().iter() {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// [`TraceSink`] writing into a [`TraceLog`].
#[derive(Clone, Debug)]
pub struct TraceLogSink {
    log: TraceLog,
}

impl TraceSink for TraceLogSink {
    fn record(&mut self, event: &TraversalEvent) {
        self.log.push(TraceRecord::Level(*event));
    }

    fn span(&mut self, event: &SpanEvent) {
        self.log.push(TraceRecord::Span(event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_obs::span::SpanStage;

    fn event(level: u32) -> TraversalEvent {
        TraversalEvent {
            group: 0,
            batch: 0,
            level,
            direction: Direction::TopDown,
            unique_frontiers: 3,
            instance_frontiers: 7,
            edges_inspected: 21,
            early_terminations: 1,
            load_transactions: 10,
            store_transactions: 4,
            atomic_transactions: 2,
            sim_seconds: 1.5e-6,
        }
    }

    fn span(request: u64) -> SpanEvent {
        SpanEvent::admission(request, SpanStage::Admitted, 9, 0.25)
    }

    #[test]
    fn recorder_collects_in_order() {
        let mut sink = RecorderSink::default();
        sink.record(&event(1));
        sink.span(&span(7));
        sink.record(&event(2));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[1].level, 2);
        assert_eq!(sink.spans.len(), 1);
        assert_eq!(sink.spans[0].request, 7);
    }

    #[test]
    fn group_stamp_overrides_group() {
        let mut rec = RecorderSink::default();
        let mut stamp = GroupStamp { group: 5, inner: &mut rec };
        stamp.record(&event(1));
        stamp.span(&span(3));
        assert_eq!(rec.events[0].group, 5);
        assert_eq!(rec.events[0].level, 1);
        // Spans pass through unchanged.
        assert_eq!(rec.spans[0].request, 3);
    }

    #[test]
    fn group_stamp_restamps_prestamped_events() {
        // The service layer nests stamps; the innermost wins because each
        // stamp overwrites before forwarding.
        let mut rec = RecorderSink::default();
        {
            let mut outer = GroupStamp { group: 1, inner: &mut rec };
            let mut inner = GroupStamp { group: 2, inner: &mut outer };
            let mut pre = event(1);
            pre.group = 9;
            inner.record(&pre);
        }
        assert_eq!(rec.events[0].group, 1, "outermost stamp is authoritative");
    }

    #[test]
    fn batch_stamp_sets_batch_and_keeps_group() {
        let mut rec = RecorderSink::default();
        {
            let mut batch = BatchStamp { batch: 42, inner: &mut rec };
            let mut group = GroupStamp { group: 3, inner: &mut batch };
            group.record(&event(1));
        }
        assert_eq!(rec.events[0].batch, 42);
        assert_eq!(rec.events[0].group, 3);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(3));
        let bytes = sink.into_inner();
        let line = String::from_utf8(bytes).unwrap();
        assert!(line.ends_with('\n'));
        let parsed = Json::parse(line.trim()).unwrap();
        let back = TraversalEvent::from_json(&parsed).unwrap();
        assert_eq!(back, event(3));
    }

    #[test]
    fn jsonl_frames_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(1));
        sink.span(&span(4));
        sink.record(&event(2));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Every line is a self-contained, kind-tagged JSON object.
        let kinds: Vec<String> = lines
            .iter()
            .map(|l| {
                let j = Json::parse(l).unwrap();
                j.get("kind").and_then(Json::as_str).unwrap().to_string()
            })
            .collect();
        assert_eq!(kinds, ["level", "span", "level"]);
    }

    #[test]
    fn level_events_carry_schema_version() {
        let j = event(1).to_json();
        assert_eq!(j.get("schema_version"), Some(&Json::UInt(TRACE_SCHEMA_VERSION)));
    }

    #[test]
    fn v1_lines_without_version_or_batch_still_decode() {
        let mut j = event(5).to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "schema_version" && k != "kind" && k != "batch");
        }
        let back = TraversalEvent::from_json(&j).unwrap();
        assert_eq!(back, event(5));
    }

    #[test]
    fn trace_record_decodes_by_kind_tag() {
        let level = TraceRecord::Level(event(2));
        let span = TraceRecord::Span(span(8));
        for r in [&level, &span] {
            let j = Json::parse(&r.to_json().to_string()).unwrap();
            assert_eq!(&TraceRecord::from_json(&j).unwrap(), r);
        }
        let bad = Json::parse("{\"kind\":\"mystery\"}").unwrap();
        assert!(TraceRecord::from_json(&bad).is_err());
    }

    #[test]
    fn metrics_sink_records_and_forwards() {
        let registry = Registry::new();
        let mut rec = RecorderSink::default();
        {
            let mut metrics = MetricsSink::new(&registry, &mut rec);
            metrics.record(&event(1));
            metrics.record(&event(2));
        }
        assert_eq!(rec.events.len(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ibfs_core_levels_total"), Some(2));
        assert_eq!(snap.counter("ibfs_core_edges_inspected_total"), Some(42));
        assert_eq!(snap.counter("ibfs_core_early_terminations_total"), Some(2));
        assert_eq!(snap.histogram("ibfs_core_level_sim_seconds").unwrap().count, 2);
    }

    #[test]
    fn trace_log_merges_across_threads() {
        let log = TraceLog::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let mut sink = log.sink();
                s.spawn(move || {
                    for i in 0..10 {
                        sink.record(&event(i));
                        sink.span(&span(t * 100 + i as u64));
                    }
                });
            }
        });
        assert_eq!(log.len(), 80);
        let jsonl = log.render_jsonl();
        assert_eq!(jsonl.lines().count(), 80);
        for line in jsonl.lines() {
            TraceRecord::from_json(&Json::parse(line).unwrap()).unwrap();
        }
        let drained = log.drain();
        assert_eq!(drained.len(), 80);
        assert!(log.is_empty());
    }
}
