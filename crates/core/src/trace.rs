//! Structured per-level trace stream.
//!
//! The [`crate::driver::LevelDriver`] emits one [`TraversalEvent`] per BFS
//! level it executes: the level's direction, frontier counts, counter deltas
//! and simulated time. Consumers plug in a [`TraceSink`]:
//!
//! * [`NullSink`] — discard (the default; tracing costs nothing when off).
//! * [`RecorderSink`] — collect in memory (figure modules, tests).
//! * [`JsonlSink`] — one JSON object per line via `ibfs_util::json`
//!   (`bfs --trace`).
//! * [`GroupStamp`] — adapter that stamps the group index before forwarding
//!   (used by the service layer, which runs many groups per request).
//!
//! Sinks observe the traversal; they never influence it. The engines charge
//! the profiler identically whether a sink is attached or not, which is what
//! keeps traced and untraced runs bit-identical.

use crate::direction::Direction;
use ibfs_util::json_struct;
use ibfs_util::json::ToJson;

/// One BFS level as observed by the level driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraversalEvent {
    /// Group index within the request (stamped by [`GroupStamp`]; 0 when the
    /// traversal runs outside the service layer).
    pub group: u64,
    /// Level number (depth assigned at this level).
    pub level: u32,
    /// Direction executed.
    pub direction: Direction,
    /// Unique frontiers in the (joint) queue this level.
    pub unique_frontiers: u64,
    /// Sum over instances of per-instance frontier counts.
    pub instance_frontiers: u64,
    /// Edges inspected across all instances this level.
    pub edges_inspected: u64,
    /// Bottom-up inspections cut short by early termination.
    pub early_terminations: u64,
    /// Global-memory load transactions charged during this level.
    pub load_transactions: u64,
    /// Global-memory store transactions charged during this level.
    pub store_transactions: u64,
    /// Atomic transactions charged during this level.
    pub atomic_transactions: u64,
    /// Simulated seconds this level cost (including its launch overhead).
    pub sim_seconds: f64,
}

json_struct!(TraversalEvent {
    group,
    level,
    direction,
    unique_frontiers,
    instance_frontiers,
    edges_inspected,
    early_terminations,
    load_transactions,
    store_transactions,
    atomic_transactions,
    sim_seconds,
});

/// Receiver of [`TraversalEvent`]s.
pub trait TraceSink {
    /// Observes one level.
    fn record(&mut self, event: &TraversalEvent);
}

/// Discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraversalEvent) {}
}

/// Collects events in memory.
#[derive(Clone, Debug, Default)]
pub struct RecorderSink {
    /// Recorded events, in emission order.
    pub events: Vec<TraversalEvent>,
}

impl TraceSink for RecorderSink {
    fn record(&mut self, event: &TraversalEvent) {
        self.events.push(*event);
    }
}

/// Writes one compact JSON object per line.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    writer: W,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// A sink writing JSONL to `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// The underlying writer (flushes what the sink buffered).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraversalEvent) {
        // Trace output is best-effort: a closed pipe must not abort the
        // traversal itself.
        let _ = writeln!(self.writer, "{}", event.to_json().to_string());
    }
}

/// Adapter stamping a group index onto every forwarded event.
pub struct GroupStamp<'a> {
    /// Group index to stamp.
    pub group: u64,
    /// Downstream sink.
    pub inner: &'a mut dyn TraceSink,
}

impl TraceSink for GroupStamp<'_> {
    fn record(&mut self, event: &TraversalEvent) {
        let mut stamped = *event;
        stamped.group = self.group;
        self.inner.record(&stamped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfs_util::json::{FromJson, Json};

    fn event(level: u32) -> TraversalEvent {
        TraversalEvent {
            group: 0,
            level,
            direction: Direction::TopDown,
            unique_frontiers: 3,
            instance_frontiers: 7,
            edges_inspected: 21,
            early_terminations: 1,
            load_transactions: 10,
            store_transactions: 4,
            atomic_transactions: 2,
            sim_seconds: 1.5e-6,
        }
    }

    #[test]
    fn recorder_collects_in_order() {
        let mut sink = RecorderSink::default();
        sink.record(&event(1));
        sink.record(&event(2));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[1].level, 2);
    }

    #[test]
    fn group_stamp_overrides_group() {
        let mut rec = RecorderSink::default();
        let mut stamp = GroupStamp { group: 5, inner: &mut rec };
        stamp.record(&event(1));
        assert_eq!(rec.events[0].group, 5);
        assert_eq!(rec.events[0].level, 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&event(3));
        let bytes = sink.into_inner();
        let line = String::from_utf8(bytes).unwrap();
        assert!(line.ends_with('\n'));
        let parsed = Json::parse(line.trim()).unwrap();
        let back = TraversalEvent::from_json(&parsed).unwrap();
        assert_eq!(back, event(3));
    }
}
